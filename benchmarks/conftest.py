"""Benchmark-session observability hooks.

When ``MEDEA_TRACE`` is set, the whole benchmark session records the
structured event trace to ``MEDEA_TRACE_OUT`` (default
``medea_trace.jsonl``); at session end the trace file is flushed and the
ambient metrics registry is dumped next to it as
``<trace stem>.metrics.json`` — the pair CI uploads as build artifacts.

Independently of tracing, every :func:`benchmarks.harness
.run_placement_experiment` call collects per-batch series (utilisation,
queue depth, queuing delay, solver latency) into
``harness.BENCH_TIMELINES``; when any ran, the session dumps them as
``BENCH_timeline.json`` (``BENCH_TIMELINE_OUT`` overrides the path).

The live plane rides the same hooks: ``MEDEA_SERVE=port`` starts the
in-process telemetry endpoint for the session (CI curls ``/metrics`` and
``/healthz`` mid-run), ``MEDEA_LOG=file`` writes the structured run
log (closed at session end), and ``MEDEA_ROLLUP=file`` streams bounded
``ROLLUP_*.json`` aggregates for the whole session.

Self-telemetry: before the metrics snapshot is dumped, the tracer's own
cost accounting (events seen/emitted/dropped, sampling overhead seconds)
is folded into the ambient registry as ``obs_events_*_total`` counters
and the ``obs_overhead_seconds`` gauge, so the observability layer's
cost shows up in the same artifact that CI uploads.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.obs.log import configure_log_from_env, get_run_logger
from repro.obs.metrics import get_metrics
from repro.obs.rollup import rollup_from_env, shutdown_rollup
from repro.obs.serve import serve_from_env, shutdown_server
from repro.obs.trace import ENV_TRACE, ENV_TRACE_OUT, configure_from_env, get_tracer


def fold_tracer_self_stats() -> None:
    """Mirror the tracer's self-accounting into the metrics registry."""
    tracer = get_tracer()
    stats = tracer.self_stats()
    metrics = get_metrics()
    metrics.counter(
        "obs_events_seen_total", "events offered to the tracer"
    ).inc(stats["events_seen"])
    metrics.counter(
        "obs_events_emitted_total", "events written to trace sinks"
    ).inc(stats["events_emitted"])
    metrics.counter(
        "obs_events_dropped_total", "events sampled out before any sink"
    ).inc(stats["events_dropped"])
    metrics.gauge(
        "obs_overhead_seconds", "wall time spent inside the tracer itself"
    ).set(stats["overhead_s"])


@pytest.fixture(scope="session", autouse=True)
def _medea_trace_session():
    configure_from_env()
    configure_log_from_env()
    serve_from_env()
    rollup_from_env()
    yield
    from .harness import BENCH_TIMELINES, write_bench_timeline

    if BENCH_TIMELINES:
        write_bench_timeline()
    tracer = get_tracer()
    if tracer.enabled:
        fold_tracer_self_stats()
    shutdown_rollup()
    shutdown_server()
    get_run_logger().close()
    if not tracer.enabled:
        return
    tracer.close()
    if os.environ.get(ENV_TRACE):
        trace_path = Path(os.environ.get(ENV_TRACE_OUT, "medea_trace.jsonl"))
        snapshot_path = trace_path.with_suffix(".metrics.json")
        snapshot_path.write_text(
            json.dumps(get_metrics().snapshot(), indent=2, sort_keys=True) + "\n"
        )
