"""Shared experiment driver for the benchmark suite.

Every Fig. 9/10-style experiment has the same skeleton: build a cluster,
optionally add background task load, feed an LRA population to a scheduler
in fixed-size batches (the paper's scheduling-interval batching), apply the
resulting placements, and measure violations / fragmentation / load balance
on the final state.  :func:`run_placement_experiment` is that skeleton.

Scale note: the paper simulates 500 machines; the benchmarks default to a
100–200 machine cluster so the full suite stays in CI-friendly time.  The
shapes being reproduced (orderings, trends) are scale-invariant here; bump
``BENCH_SCALE`` via the environment to run closer to paper scale.

Solver telemetry: when the scheduler under test is the ILP, every cycle's
:class:`~repro.obs.SolverStats` (nodes, LP solves, presolve reductions,
per-phase wall time) is aggregated into ``ExperimentResult.solver_stats``;
set ``SOLVER_STATS=1`` in the environment to also print the totals and the
ambient metrics-registry snapshot after each experiment.  ``MEDEA_TRACE=1``
(honoured by ``benchmarks/conftest.py``) additionally records the
structured event trace to ``MEDEA_TRACE_OUT`` — with per-batch
``lra.place`` / ``sim.state_hash`` checkpoints emitted here so the trace
replays and cross-checks like a simulation trace does.

Per-batch telemetry: every experiment also collects utilisation, queue
depth, queuing delay, and solver latency series into the module-level
``BENCH_TIMELINES`` map; ``benchmarks/conftest.py`` dumps it at session end
as ``BENCH_timeline.json`` (override via ``BENCH_TIMELINE_OUT``) — the
per-benchmark signal file CI uploads as a build artifact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Sequence

from repro import (
    ClusterState,
    ConstraintManager,
    ConstraintUnawareScheduler,
    IlpScheduler,
    JKubeScheduler,
    LRAScheduler,
    NodeCandidatesScheduler,
    SerialScheduler,
    TagPopularityScheduler,
    build_cluster,
)
from repro.core.requests import LRARequest
from repro.obs.violations import evaluate_violations
from repro.obs import SolverStats
from repro.workloads import fill_cluster

#: Global scale multiplier for benchmark cluster sizes (1.0 = default).
BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "1.0"))

#: Per-experiment timeline summaries, keyed by experiment label; filled by
#: :func:`run_placement_experiment`, dumped by :func:`write_bench_timeline`.
BENCH_TIMELINES: dict[str, dict] = {}

ENV_TIMELINE_OUT = "BENCH_TIMELINE_OUT"
DEFAULT_TIMELINE_OUT = "BENCH_timeline.json"


def scaled(n: int) -> int:
    return max(4, int(n * BENCH_SCALE))


def write_bench_timeline(path: str | None = None) -> str:
    """Dump :data:`BENCH_TIMELINES` as JSON; returns the path written.

    Schema 2: each benchmark carries a ``stats`` block (count/median/p95
    per series, via :func:`repro.obs.bench.attach_stats`) — the summary
    statistics ``repro bench-compare`` gates CI on.
    """
    from repro.obs.bench import attach_stats

    if path is None:
        path = os.environ.get(ENV_TIMELINE_OUT, DEFAULT_TIMELINE_OUT)
    document = attach_stats({
        "benchmarks": {label: BENCH_TIMELINES[label]
                       for label in sorted(BENCH_TIMELINES)},
    })
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def record_benchmark(
    label: str,
    *,
    scheduler: str,
    nodes: int,
    apps: int,
    series: dict[str, dict],
) -> str:
    """Register one benchmark entry in :data:`BENCH_TIMELINES`.

    ``series`` maps series name → ``{"t": [...], "v": [...]}``.  Labels
    already present are deduplicated with a ``#N`` suffix (re-runs within
    one session).  Returns the label actually used.
    """
    if label in BENCH_TIMELINES:
        suffix = 2
        while f"{label} #{suffix}" in BENCH_TIMELINES:
            suffix += 1
        label = f"{label} #{suffix}"
    BENCH_TIMELINES[label] = {
        "scheduler": scheduler,
        "nodes": nodes,
        "apps": apps,
        "series": series,
    }
    return label


def make_schedulers(max_candidate_nodes: int = 60) -> dict[str, LRAScheduler]:
    """The five algorithms compared throughout §7.4 (Fig. 9/10 legends).

    The ILP runs with candidate pruning, a 2% optimality gap and a short
    time limit: sweep benchmarks need hundreds of cycles, and proving exact
    optimality on each adds nothing to placement quality.
    """
    return {
        "MEDEA-ILP": IlpScheduler(
            max_candidate_nodes=max_candidate_nodes,
            time_limit_s=5.0,
            mip_rel_gap=0.02,
        ),
        "MEDEA-NC": NodeCandidatesScheduler(),
        "MEDEA-TP": TagPopularityScheduler(),
        "J-KUBE": JKubeScheduler(),
        "Serial": SerialScheduler(),
    }


@dataclass
class ExperimentResult:
    violation_fraction: float
    fragmentation_fraction: float
    utilization_cv: float
    placed_apps: int
    rejected_apps: int
    mean_cycle_s: float
    cycles: int = 0
    #: Aggregated MILP effort across all cycles (``None`` when the
    #: scheduler never reported solver stats, i.e. for the heuristics).
    solver_stats: SolverStats | None = None


def run_placement_experiment(
    scheduler: LRAScheduler,
    population: Sequence[LRARequest],
    *,
    num_nodes: int = 100,
    racks: int = 10,
    memory_mb: int = 16 * 1024,
    vcores: int = 8,
    batch_size: int = 2,
    task_memory_fraction: float = 0.0,
    seed: int = 0,
    experiment: str | None = None,
) -> ExperimentResult:
    """Feed ``population`` to ``scheduler`` in batches and audit the result.

    ``experiment`` labels this run's entry in :data:`BENCH_TIMELINES`
    (default: the scheduler's name, deduplicated across calls).
    """
    from repro.obs import EventKind, get_tracer

    topology = build_cluster(num_nodes, racks=racks, memory_mb=memory_mb, vcores=vcores)
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    if task_memory_fraction > 0:
        from repro.workloads import GridMixConfig

        fill_cluster(state, task_memory_fraction, config=GridMixConfig(seed=seed))

    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit(
            EventKind.BENCH_EXPERIMENT,
            time=0.0,
            data={
                "experiment": experiment or scheduler.name,
                "scheduler": scheduler.name,
                "nodes": num_nodes,
                "apps": len(population),
            },
        )
    placed = rejected = 0
    cycle_times: list[float] = []
    solver_totals: SolverStats | None = None
    ticks: list[float] = []
    utilization: list[float] = []
    queue_depth: list[int] = []
    latency: list[float] = []
    for start in range(0, len(population), batch_size):
        batch = list(population[start:start + batch_size])
        for request in batch:
            manager.register_application(request)
        result = scheduler.timed_place(batch, state, manager, now=float(start))
        cycle_times.append(result.solve_time_s)
        if result.solver_stats is not None:
            if solver_totals is None:
                solver_totals = SolverStats(solves=0)
            solver_totals.merge(result.solver_stats)
        for placement in result.placements:
            state.allocate(
                placement.container_id,
                placement.node_id,
                placement.resource,
                placement.tags,
                placement.app_id,
            )
        placed += len(result.placed_apps())
        rejected += len(result.rejected_apps)
        for app_id in result.rejected_apps:
            manager.unregister_application(app_id)
        ticks.append(float(start))
        utilization.append(round(state.cluster_memory_utilization(), 6))
        queue_depth.append(max(0, len(population) - (start + len(batch))))
        latency.append(round(result.solve_time_s, 6))
        if tracer.enabled:
            # Mirror the simulation's replayable event shape: the applied
            # placements, then a state-hash checkpoint over the new state.
            tracer.emit(
                EventKind.LRA_PLACE,
                time=float(start),
                data={
                    "scheduler": scheduler.name,
                    "containers": len(result.placements),
                    "placements": sorted(
                        [p.container_id, p.node_id] for p in result.placements
                    ),
                },
            )
            tracer.emit(
                EventKind.SIM_STATE_HASH,
                time=float(start),
                data={
                    "hash": state.fingerprint(),
                    "containers": len(state.containers),
                    "utilization": round(state.cluster_memory_utilization(), 6),
                },
            )

    record_benchmark(
        experiment or scheduler.name,
        scheduler=scheduler.name,
        nodes=num_nodes,
        apps=len(population),
        series={
            "utilization": {"t": ticks, "v": utilization},
            "queue_depth": {"t": ticks, "v": [float(q) for q in queue_depth]},
            "queue_delay_s": {"t": ticks, "v": latency},
            "solver_latency_s": {"t": ticks, "v": latency},
        },
    )

    report = evaluate_violations(state, manager=manager)
    if solver_totals is not None and os.environ.get("SOLVER_STATS"):
        from repro.obs.metrics import get_metrics
        from repro.obs.report import render_metrics, render_timers

        print(f"[{scheduler.name}] {solver_totals.summary()}")
        snapshot = get_metrics().snapshot()
        print(render_metrics(snapshot))
        if snapshot["timers"]:
            print(render_timers(snapshot))
    return ExperimentResult(
        violation_fraction=report.violation_fraction,
        fragmentation_fraction=state.fragmented_node_fraction(),
        utilization_cv=state.memory_utilization_cv(),
        placed_apps=placed,
        rejected_apps=rejected,
        mean_cycle_s=sum(cycle_times) / max(1, len(cycle_times)),
        cycles=len(cycle_times),
        solver_stats=solver_totals,
    )
