"""Shared experiment driver for the benchmark suite.

Every Fig. 9/10-style experiment has the same skeleton: build a cluster,
optionally add background task load, feed an LRA population to a scheduler
in fixed-size batches (the paper's scheduling-interval batching), apply the
resulting placements, and measure violations / fragmentation / load balance
on the final state.  :func:`run_placement_experiment` is that skeleton.

Scale note: the paper simulates 500 machines; the benchmarks default to a
100–200 machine cluster so the full suite stays in CI-friendly time.  The
shapes being reproduced (orderings, trends) are scale-invariant here; bump
``BENCH_SCALE`` via the environment to run closer to paper scale.

Solver telemetry: when the scheduler under test is the ILP, every cycle's
:class:`~repro.obs.SolverStats` (nodes, LP solves, presolve reductions,
per-phase wall time) is aggregated into ``ExperimentResult.solver_stats``;
set ``SOLVER_STATS=1`` in the environment to also print the totals and the
ambient metrics-registry snapshot after each experiment.  ``MEDEA_TRACE=1``
(honoured by ``benchmarks/conftest.py``) additionally records the
structured event trace to ``MEDEA_TRACE_OUT``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from repro import (
    ClusterState,
    ConstraintManager,
    ConstraintUnawareScheduler,
    IlpScheduler,
    JKubeScheduler,
    LRAScheduler,
    NodeCandidatesScheduler,
    SerialScheduler,
    TagPopularityScheduler,
    build_cluster,
)
from repro.core.requests import LRARequest
from repro.metrics import evaluate_violations
from repro.obs import SolverStats
from repro.workloads import fill_cluster

#: Global scale multiplier for benchmark cluster sizes (1.0 = default).
BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "1.0"))


def scaled(n: int) -> int:
    return max(4, int(n * BENCH_SCALE))


def make_schedulers(max_candidate_nodes: int = 60) -> dict[str, LRAScheduler]:
    """The five algorithms compared throughout §7.4 (Fig. 9/10 legends).

    The ILP runs with candidate pruning, a 2% optimality gap and a short
    time limit: sweep benchmarks need hundreds of cycles, and proving exact
    optimality on each adds nothing to placement quality.
    """
    return {
        "MEDEA-ILP": IlpScheduler(
            max_candidate_nodes=max_candidate_nodes,
            time_limit_s=5.0,
            mip_rel_gap=0.02,
        ),
        "MEDEA-NC": NodeCandidatesScheduler(),
        "MEDEA-TP": TagPopularityScheduler(),
        "J-KUBE": JKubeScheduler(),
        "Serial": SerialScheduler(),
    }


@dataclass
class ExperimentResult:
    violation_fraction: float
    fragmentation_fraction: float
    utilization_cv: float
    placed_apps: int
    rejected_apps: int
    mean_cycle_s: float
    cycles: int = 0
    #: Aggregated MILP effort across all cycles (``None`` when the
    #: scheduler never reported solver stats, i.e. for the heuristics).
    solver_stats: SolverStats | None = None


def run_placement_experiment(
    scheduler: LRAScheduler,
    population: Sequence[LRARequest],
    *,
    num_nodes: int = 100,
    racks: int = 10,
    memory_mb: int = 16 * 1024,
    vcores: int = 8,
    batch_size: int = 2,
    task_memory_fraction: float = 0.0,
    seed: int = 0,
) -> ExperimentResult:
    """Feed ``population`` to ``scheduler`` in batches and audit the result."""
    topology = build_cluster(num_nodes, racks=racks, memory_mb=memory_mb, vcores=vcores)
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    if task_memory_fraction > 0:
        from repro.workloads import GridMixConfig

        fill_cluster(state, task_memory_fraction, config=GridMixConfig(seed=seed))

    placed = rejected = 0
    cycle_times: list[float] = []
    solver_totals: SolverStats | None = None
    for start in range(0, len(population), batch_size):
        batch = list(population[start:start + batch_size])
        for request in batch:
            manager.register_application(request)
        result = scheduler.timed_place(batch, state, manager, now=float(start))
        cycle_times.append(result.solve_time_s)
        if result.solver_stats is not None:
            if solver_totals is None:
                solver_totals = SolverStats(solves=0)
            solver_totals.merge(result.solver_stats)
        for placement in result.placements:
            state.allocate(
                placement.container_id,
                placement.node_id,
                placement.resource,
                placement.tags,
                placement.app_id,
            )
        placed += len(result.placed_apps())
        rejected += len(result.rejected_apps)
        for app_id in result.rejected_apps:
            manager.unregister_application(app_id)

    report = evaluate_violations(state, manager=manager)
    if solver_totals is not None and os.environ.get("SOLVER_STATS"):
        from repro.obs.metrics import get_metrics
        from repro.obs.report import render_metrics, render_timers

        print(f"[{scheduler.name}] {solver_totals.summary()}")
        snapshot = get_metrics().snapshot()
        print(render_metrics(snapshot))
        if snapshot["timers"]:
            print(render_timers(snapshot))
    return ExperimentResult(
        violation_fraction=report.violation_fraction,
        fragmentation_fraction=state.fragmented_node_fraction(),
        utilization_cv=state.memory_utilization_cv(),
        placed_apps=placed,
        rejected_apps=rejected,
        mean_cycle_s=sum(cycle_times) / max(1, len(cycle_times)),
        cycles=len(cycle_times),
        solver_stats=solver_totals,
    )
