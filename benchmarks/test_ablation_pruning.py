"""Ablation — candidate-node pruning (DESIGN.md §4).

The full Fig. 5 formulation considers every node; our implementation can
prune the variable space to a constraint-aware candidate pool
(`IlpScheduler(max_candidate_nodes=...)`) for large clusters.  This bench
quantifies the trade: solve time must drop substantially while placement
quality (violations) stays intact.
"""

from __future__ import annotations

import time

from repro import (
    ClusterState,
    ConstraintManager,
    IlpScheduler,
    build_cluster,
    evaluate_violations,
)
from repro.reporting import banner, render_table
from repro.workloads import hbase_population

NUM_NODES = 150


def run_variant(max_candidate_nodes):
    topology = build_cluster(NUM_NODES, racks=10, memory_mb=16 * 1024, vcores=8)
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    population = hbase_population(6, max_rs_per_node=4)
    scheduler = IlpScheduler(
        max_candidate_nodes=max_candidate_nodes,
        time_limit_s=60.0,
        mip_rel_gap=0.02,
    )
    start = time.perf_counter()
    for index in range(0, len(population), 2):
        batch = population[index:index + 2]
        for request in batch:
            manager.register_application(request)
        result = scheduler.place(batch, state, manager)
        for p in result.placements:
            state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
    elapsed = time.perf_counter() - start
    report = evaluate_violations(state, manager=manager)
    return {
        "time_s": elapsed,
        "violating": report.violating_containers,
        "placed": len(state.containers),
    }


def run_ablation():
    return {
        "full formulation": run_variant(None),
        "pruned (60-node pool)": run_variant(60),
    }


def test_ablation_candidate_pruning(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print(banner("Ablation: candidate-node pruning (150-node cluster, 6 LRAs)"))
    print(render_table(
        ["variant", "containers placed", "violating", "time (s)"],
        [
            [name, r["placed"], r["violating"], r["time_s"]]
            for name, r in results.items()
        ],
    ))
    full = results["full formulation"]
    pruned = results["pruned (60-node pool)"]
    # Same workload fully placed either way.
    assert pruned["placed"] == full["placed"]
    # Pruning must not cost placement quality on this satisfiable workload.
    assert pruned["violating"] <= full["violating"] + 2
    # And it must actually be faster.
    assert pruned["time_s"] < full["time_s"]
