"""Ablation — MILP backend: HiGHS vs. the from-scratch branch-and-bound.

Not a paper figure; validates the DESIGN.md claim that the two solver
backends are interchangeable for the Medea formulation, and measures the
cost of the pure-Python B&B.  Both must produce placements of equal quality
(same placed-app count, same violation count) on identical inputs.
"""

from __future__ import annotations

import time

from repro import (
    ClusterState,
    ConstraintManager,
    IlpScheduler,
    build_cluster,
    evaluate_violations,
)
from repro.apps import hbase_instance
from repro.reporting import banner, render_table


def run_backend(backend: str):
    topology = build_cluster(12, racks=3, memory_mb=16 * 1024, vcores=8)
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    requests = [
        hbase_instance(f"hb-{backend}-{i}", region_servers=4, max_rs_per_node=2)
        for i in range(3)
    ]
    scheduler = IlpScheduler(backend=backend, time_limit_s=60.0)
    start = time.perf_counter()
    for request in requests:
        manager.register_application(request)
        result = scheduler.place([request], state, manager)
        for p in result.placements:
            state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
    elapsed = time.perf_counter() - start
    report = evaluate_violations(state, manager=manager)
    return {
        "placed": len(state.containers),
        "violations": report.violating_containers,
        "time_s": elapsed,
    }


def run_ablation():
    return {backend: run_backend(backend) for backend in ("highs", "bnb")}


def test_ablation_solver_backends(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print(banner("Ablation: MILP solver backends on the Medea formulation"))
    print(render_table(
        ["backend", "containers placed", "violations", "time (s)"],
        [[b, r["placed"], r["violations"], r["time_s"]] for b, r in results.items()],
    ))
    highs, bnb = results["highs"], results["bnb"]
    # Interchangeable: equal placement quality.
    assert highs["placed"] == bnb["placed"]
    assert highs["violations"] == bnb["violations"] == 0
