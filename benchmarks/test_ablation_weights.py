"""Ablation — objective-weight trade-offs (DESIGN.md §4).

The paper's cluster operator sets w1 (placement) / w2 (violations) / w3
(fragmentation) "based on the desired cluster behavior" (§5.2) but never
shows the trade-off.  This bench does: the same workload is placed under
three weightings and the resulting placement count, violations and
fragmentation are compared.

Expectations encoded:

* the paper's defaults (1 / 0.5 / 0.25) place everything with minimal
  violations;
* a violations-dominant weighting (w2 >> w1) sacrifices placements rather
  than violate — the hard-constraint emulation of §4.2;
* disabling the fragmentation term (w3 = 0) yields at least as many
  fragmented nodes as the default.
"""

from __future__ import annotations

from repro import (
    ClusterState,
    ConstraintManager,
    IlpScheduler,
    IlpWeights,
    build_cluster,
    evaluate_violations,
)
from repro.reporting import banner, render_table
from repro.workloads import hbase_population

WEIGHTINGS = {
    "paper defaults (1/0.5/0.25)": IlpWeights(1.0, 0.5, 0.25),
    "violations-dominant (1/50/0.25)": IlpWeights(1.0, 50.0, 0.25),
    "no fragmentation term (1/0.5/0)": IlpWeights(1.0, 0.5, 0.0),
}


def run_weighting(weights: IlpWeights):
    # A deliberately over-constrained corner: 6 instances x 10 RS with a
    # 2-per-node cap on a 24-node cluster (capacity 48 RS < 60 needed).
    topology = build_cluster(24, racks=4, memory_mb=16 * 1024, vcores=8)
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    population = hbase_population(6, max_rs_per_node=2)
    scheduler = IlpScheduler(weights, time_limit_s=10.0, mip_rel_gap=0.02)
    placed_apps = 0
    for index in range(0, len(population), 2):
        batch = population[index:index + 2]
        for request in batch:
            manager.register_application(request)
        result = scheduler.place(batch, state, manager)
        placed_apps += len(result.placed_apps())
        for p in result.placements:
            state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
        for app_id in result.rejected_apps:
            manager.unregister_application(app_id)
    report = evaluate_violations(state, manager=manager)
    return {
        "placed": placed_apps,
        "violating": report.violating_containers,
        "fragmentation": state.fragmented_node_fraction(),
    }


def run_ablation():
    return {name: run_weighting(w) for name, w in WEIGHTINGS.items()}


def test_ablation_objective_weights(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print(banner("Ablation: ILP objective weights on an over-constrained workload"))
    print(render_table(
        ["weighting", "apps placed (of 6)", "violating containers", "fragmented %"],
        [
            [name, r["placed"], r["violating"], 100 * r["fragmentation"]]
            for name, r in results.items()
        ],
    ))
    default = results["paper defaults (1/0.5/0.25)"]
    strict = results["violations-dominant (1/50/0.25)"]
    # Hard-constraint emulation: heavy w2 refuses placements that would
    # violate, so it places fewer apps but violates (at most) as much.
    assert strict["placed"] <= default["placed"]
    assert strict["violating"] <= default["violating"]
    # The default weighting keeps placing (soft-constraint semantics).
    assert default["placed"] >= 4
