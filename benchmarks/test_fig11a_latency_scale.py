"""Figure 11a — LRA scheduling latency vs. cluster size (§7.5).

Clusters from 50 to 2000 nodes at 20% LRA load; each algorithm places one
two-LRA batch and the wall-clock time to place all containers is reported.

Shape targets: heuristics cheapest with Medea-TP below Medea-NC; J-Kube
above the cheap heuristics (it scores every node several ways per
container); Medea-ILP the most expensive but still sub-seconds — low
relative to LRA lifetimes.
"""

from __future__ import annotations

from repro import (
    ClusterState,
    ConstraintManager,
    IlpScheduler,
    JKubeScheduler,
    NodeCandidatesScheduler,
    SerialScheduler,
    TagPopularityScheduler,
    build_cluster,
)
from repro.apps import hbase_instance
from repro.reporting import banner, render_series
from repro.workloads import fill_cluster

from .harness import record_benchmark, scaled

CLUSTER_SIZES = [scaled(n) for n in (50, 200, 500, 1000)]


def schedulers():
    return {
        "MEDEA-ILP": IlpScheduler(max_candidate_nodes=60, time_limit_s=10.0,
                                  mip_rel_gap=0.02),
        "MEDEA-NC": NodeCandidatesScheduler(),
        "MEDEA-TP": TagPopularityScheduler(),
        "J-KUBE": JKubeScheduler(),
    }


def latency_ms(scheduler, num_nodes: int) -> float:
    topology = build_cluster(
        num_nodes, racks=max(2, num_nodes // 50), memory_mb=16 * 1024, vcores=8
    )
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    fill_cluster(state, 0.20)
    batch = [
        hbase_instance(f"hb-{num_nodes}-{i}", max_rs_per_node=2)
        for i in range(2)
    ]
    for request in batch:
        manager.register_application(request)
    result = scheduler.timed_place(batch, state, manager)
    assert result.placements, "expected the batch to be placeable at 20% load"
    return result.solve_time_s * 1000.0


def run_fig11a():
    series = {
        name: [latency_ms(sched, n) for n in CLUSTER_SIZES]
        for name, sched in schedulers().items()
    }
    # Feed each scheduler's latency-vs-scale curve into the session's
    # BENCH_timeline.json so the bench-compare gate covers Fig. 11a.
    for name, values in series.items():
        record_benchmark(
            f"fig11a:{name}",
            scheduler=name,
            nodes=CLUSTER_SIZES[-1],
            apps=2 * len(CLUSTER_SIZES),
            series={
                "solver_latency_s": {
                    "t": [float(n) for n in CLUSTER_SIZES],
                    "v": [round(ms / 1000.0, 6) for ms in values],
                },
            },
        )
    return series


def test_fig11a_latency_scale(benchmark):
    series = benchmark.pedantic(run_fig11a, rounds=1, iterations=1)
    print(banner("Figure 11a: LRA scheduling latency (ms) vs cluster size"))
    print(render_series("nodes", CLUSTER_SIZES, series))

    largest = {name: values[-1] for name, values in series.items()}
    # ILP is the most expensive algorithm at scale.
    assert largest["MEDEA-ILP"] == max(largest.values())
    # TP is cheaper than NC (NC recomputes candidate counts).
    assert largest["MEDEA-TP"] < largest["MEDEA-NC"]
    # Latency stays in interactive territory even at 2000 nodes: "low
    # compared to the typical execution times of LRAs".
    assert largest["MEDEA-ILP"] < 30_000  # seconds-scale, low vs LRA lifetimes
