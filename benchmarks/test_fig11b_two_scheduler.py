"""Figure 11b — the two-scheduler design benefit (§7.5).

A cluster receives an interleaved stream of LRAs and short tasks; the
fraction of resources devoted to LRAs ("percentage of services") is swept.
MEDEA routes only LRAs through the ILP scheduler (tasks go to the capacity
scheduler instantly); ILP-ALL pushes every task through the solver as a
single-container LRA.  With a 10-second scheduling interval and the paper's
two-requests-per-cycle periodicity, an LRA in the single-scheduler design
queues behind every task submitted before it — we report the resulting
mean LRA scheduling latency (simulated queueing + solve time).

Shape target: ILP-ALL is many times more expensive at low service
percentages (paper: 9.5x at 20%), converging toward MEDEA as the workload
approaches all-services.
"""

from __future__ import annotations

from repro import (
    CapacityScheduler,
    ClusterState,
    IlpScheduler,
    MedeaScheduler,
    Resource,
    TaskRequest,
    build_cluster,
)
from repro.apps import hbase_instance
from repro.reporting import banner, render_series

NODES = 64
SERVICE_PERCENTAGES = [20, 40, 60, 80, 100]
INTERVAL_S = 10.0


def build_workload(service_pct: int):
    """An interleaved arrival order of LRAs and tasks matching the split."""
    topology = build_cluster(NODES, racks=8, memory_mb=16 * 1024, vcores=8)
    total_mb = topology.total_capacity().memory_mb
    lra_budget = total_mb * service_pct / 100 * 0.5
    probe = hbase_instance("probe", max_rs_per_node=4)
    per_lra = probe.total_resource().memory_mb
    lras = [
        hbase_instance(f"svc-{service_pct}-{i}", max_rs_per_node=4)
        for i in range(max(1, int(lra_budget / per_lra)))
    ]
    task_budget = total_mb * (100 - service_pct) / 100 * 0.5
    tasks = [
        TaskRequest(f"task-{service_pct}-{i}", "batch", Resource(2048, 1))
        for i in range(int(task_budget / 2048))
    ]
    # Round-robin interleave so LRAs arrive spread through the task stream.
    arrivals: list = []
    stride = max(1, len(tasks) // max(1, len(lras)))
    t = iter(tasks)
    for lra in lras:
        for _ in range(stride):
            task = next(t, None)
            if task is not None:
                arrivals.append(task)
        arrivals.append(lra)
    arrivals.extend(t)
    return topology, arrivals, len(lras)


def mean_lra_latency_s(service_pct: int, *, ilp_all: bool) -> float:
    topology, arrivals, n_lras = build_workload(service_pct)
    state = ClusterState(topology)
    medea = MedeaScheduler(
        state,
        IlpScheduler(max_candidate_nodes=48, time_limit_s=5.0, mip_rel_gap=0.05),
        CapacityScheduler(state),
        ilp_all=ilp_all,
        max_attempts=1,
        max_batch_size=2,  # the paper's two-requests-per-interval periodicity
    )
    for item in arrivals:
        if isinstance(item, TaskRequest):
            medea.submit_task(item, now=0.0)
        else:
            medea.submit_lra(item, now=0.0)
    cycle = 1
    while medea.pending_lras() and cycle < 2000:
        medea.run_cycle(now=cycle * INTERVAL_S)
        cycle += 1
    medea.heartbeat_all(now=cycle * INTERVAL_S)
    # Scheduling latency of the *real* LRAs (queueing + solve time).
    total = 0.0
    for outcome in medea.outcomes.values():
        if outcome.app_id.startswith("svc-") and outcome.scheduling_latency_s:
            total += outcome.scheduling_latency_s
    return total / max(1, n_lras)


def run_fig11b():
    return {
        "MEDEA": [mean_lra_latency_s(p, ilp_all=False) for p in SERVICE_PERCENTAGES],
        "ILP ALL": [mean_lra_latency_s(p, ilp_all=True) for p in SERVICE_PERCENTAGES],
    }


def test_fig11b_two_scheduler(benchmark):
    series = benchmark.pedantic(run_fig11b, rounds=1, iterations=1)
    print(banner("Figure 11b: mean LRA scheduling latency (s) vs service share"))
    print(render_series("% services", SERVICE_PERCENTAGES, series))
    medea, ilp_all = series["MEDEA"], series["ILP ALL"]
    # The single-scheduler design is much slower when tasks dominate
    # (paper: 9.5x at 20% services).
    assert ilp_all[0] / medea[0] > 3.0
    # The gap narrows as the workload becomes all-services.
    assert ilp_all[0] / medea[0] > ilp_all[-1] / medea[-1]
    assert ilp_all[-1] / medea[-1] < 2.0
