"""Figure 11c — task scheduling latency under Medea vs. plain YARN (§7.5).

A synthetic Google-trace task stream (sped up 200x) is replayed through the
full simulation.  "YARN" is the capacity scheduler alone; "MEDEA" is the
same plus an extra ~10% of cluster load arriving as LRAs through the ILP
scheduler.

Shape target: Medea's task-scheduling latency distribution matches YARN's —
the LRA scheduler does not sit on the task path.
"""

from __future__ import annotations

from repro import IlpScheduler, SerialScheduler, build_cluster
from repro.apps import hbase_instance
from repro.obs.stats import BoxStats
from repro.reporting import banner, render_table
from repro.sim import ClusterSimulation, SimConfig
from repro.workloads import GoogleTraceConfig, generate_trace

NUM_TASKS = 600
HORIZON_S = 240.0


def run_once(with_lras: bool) -> list[float]:
    topology = build_cluster(64, racks=4, memory_mb=16 * 1024, vcores=8)
    sim = ClusterSimulation(
        topology,
        IlpScheduler(max_candidate_nodes=48, time_limit_s=5.0, mip_rel_gap=0.05),
        config=SimConfig(scheduling_interval_s=10.0, heartbeat_interval_s=1.0,
                         horizon_s=HORIZON_S),
    )
    for arrival, task in generate_trace(GoogleTraceConfig(seed=17), count=NUM_TASKS):
        if arrival >= HORIZON_S:
            break
        sim.submit_task(task, at=arrival)
    if with_lras:
        # ~10% extra scheduling load from LRAs.
        for i in range(4):
            sim.submit_lra(
                hbase_instance(f"hb-{i}", max_rs_per_node=4), at=5.0 + 20.0 * i
            )
    sim.run(HORIZON_S)
    return sim.task_latencies()


def run_fig11c():
    return {"YARN": run_once(False), "MEDEA (short tasks)": run_once(True)}


def test_fig11c_task_latency(benchmark):
    series = benchmark.pedantic(run_fig11c, rounds=1, iterations=1)
    stats = {name: BoxStats.from_values_or_empty(v) for name, v in series.items()}
    print(banner("Figure 11c: task scheduling latency (s), Google trace 200x"))
    print(render_table(
        ["system", "count", "p25", "median", "p75", "p99"],
        [[name, s.count, s.p25, s.median, s.p75, s.p99] for name, s in stats.items()],
    ))
    yarn = stats["YARN"]
    medea = stats["MEDEA (short tasks)"]
    # Both schedule the vast majority of the stream.
    assert yarn.count > NUM_TASKS * 0.8
    assert medea.count > NUM_TASKS * 0.8
    # Medea's LRA load does not hurt the task path: medians within one
    # heartbeat of each other.
    assert abs(medea.median - yarn.median) <= 1.0
    assert medea.p99 <= yarn.p99 + 3.0
