"""Figure 1 — machines used for LRAs across six analytics clusters.

The paper's Fig. 1 is Microsoft telemetry: across six clusters, at least 10%
of machines host LRAs and two clusters are LRA-only.  We reproduce the
*measurement* on six synthetic clusters whose LRA populations are sized to
those observations, exercising the placement path plus a machines-hosting-
LRAs metric.
"""

from __future__ import annotations

from repro import ClusterState, ConstraintManager, build_cluster
from repro.core.heuristics import GreedyScheduler
from repro.reporting import banner, render_table
from repro.workloads import population_for_utilization


class BestFitScheduler(GreedyScheduler):
    """Greedy placement that packs (least free memory first) the way
    operators consolidate LRAs onto a slice of the cluster — so the
    machines-hosting-LRAs share tracks the LRA memory share."""

    name = "best-fit"

    def pick_node(self, container, constraints, state):
        best_node, best_key = None, None
        for node in state.topology:
            if not node.can_fit(container.resource):
                continue
            delta = state.placement_delta_violations(
                constraints, node.node_id, container.tags
            )
            key = (delta, node.free.memory_mb)  # pack tightest-fitting node
            if best_key is None or key < best_key:
                best_key, best_node = key, node.node_id
        return best_node

#: Target LRA *memory* share per synthetic cluster; C5 and C6 are the two
#: clusters used exclusively for LRAs.
CLUSTER_PROFILES = {
    "C1": 0.12,
    "C2": 0.25,
    "C3": 0.40,
    "C4": 0.60,
    "C5": 0.93,
    "C6": 0.93,
}


def machines_hosting_lras(state: ClusterState) -> float:
    hosts = {
        placed.node_id
        for placed in state.containers.values()
        if placed.allocation.long_running
    }
    return len(hosts) / len(state.topology)


def run_fig1() -> dict[str, float]:
    shares: dict[str, float] = {}
    scheduler = BestFitScheduler()
    for cluster, target in CLUSTER_PROFILES.items():
        topology = build_cluster(60, racks=6, memory_mb=16 * 1024, vcores=8)
        state = ClusterState(topology)
        manager = ConstraintManager(topology)
        population = population_for_utilization(
            topology, target, max_rs_per_node=8, prefix=cluster
        )
        for request in population:
            manager.register_application(request)
        result = scheduler.place(population, state, manager)
        for p in result.placements:
            state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
        shares[cluster] = machines_hosting_lras(state)
    return shares


def test_fig1_lra_share(benchmark):
    shares = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    print(banner("Figure 1: machines used for LRAs (%)"))
    print(render_table(
        ["cluster", "machines used for LRAs (%)"],
        [[c, 100 * v] for c, v in shares.items()],
    ))
    # Paper shape: every cluster >= 10%, and the two LRA-only clusters near 100%.
    assert all(v >= 0.10 for v in shares.values())
    assert shares["C5"] >= 0.9 and shares["C6"] >= 0.9
    assert shares["C1"] < shares["C4"] < shares["C5"]
