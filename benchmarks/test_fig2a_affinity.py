"""Figure 2a — Memcached lookup latency under affinity constraints (§2.2).

Storm (5 supervisors) + Memcached on a 275-node cluster, three placements:

* YARN (no constraints)         — constraint-unaware placement;
* MEDEA intra-only              — supervisors collocated, Memcached anywhere;
* MEDEA intra-inter             — supervisors and Memcached on one node.

Shape targets: mean lookup latency intra-inter << intra-only <= YARN, with
the intra-inter improvement around the paper's 4.6x.
"""

from __future__ import annotations

from repro import (
    ClusterState,
    ConstraintManager,
    ConstraintUnawareScheduler,
    IlpScheduler,
    build_cluster,
)
from repro.apps import memcached_instance, storm_instance
from repro.perf import LatencyModel, lookup_distance_classes, sample_lookup_latencies
from repro.reporting import banner, render_cdf_summary, render_table


def deploy(placement_policy: str, scheduler) -> list[float]:
    topology = build_cluster(275, racks=11, memory_mb=16 * 1024, vcores=8)
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    storm = storm_instance("storm", placement=placement_policy)
    memcached = memcached_instance("mc")
    for request in (memcached, storm):
        manager.register_application(request)
    result = scheduler.place([memcached, storm], state, manager)
    for p in result.placements:
        state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
    classes = lookup_distance_classes(state, "storm", "mc")
    return sample_lookup_latencies(classes, LatencyModel(samples_per_pair=500))


def run_fig2a() -> dict[str, list[float]]:
    return {
        "YARN": deploy("none", ConstraintUnawareScheduler(seed=2)),
        "MEDEA (intra-only)": deploy("intra", IlpScheduler(max_candidate_nodes=60)),
        "MEDEA": deploy("intra-inter", IlpScheduler(max_candidate_nodes=60)),
    }


def test_fig2a_affinity(benchmark):
    series = benchmark.pedantic(run_fig2a, rounds=1, iterations=1)
    means = {name: sum(v) / len(v) for name, v in series.items()}
    print(banner("Figure 2a: Memcached lookup latency (ms) with node affinity"))
    for name, values in series.items():
        print(render_cdf_summary(name, values, unit="ms"))
    print(render_table(["placement", "mean lookup (ms)"],
                       [[k, v] for k, v in means.items()]))
    # intra-inter is the big win; intra-only does not help lookups much.
    assert means["MEDEA"] < means["MEDEA (intra-only)"]
    assert means["MEDEA"] < means["YARN"]
    ratio = means["MEDEA (intra-only)"] / means["MEDEA"]
    assert 2.5 < ratio < 9.0, f"expected ~4.6x intra-inter win, got {ratio:.1f}x"
