"""Figure 2b — HBase YCSB throughput with node anti-affinity (§2.2).

HBase instances under batch pressure (GridMix at 60% memory), four
configurations: YARN (no constraints) and MEDEA (anti-affinity between
region servers), each with and without cgroups isolation.

Shape targets: no-constraints ~34% below anti-affinity; cgroups recover
part of the gap (~20% improvement) but do not close it; p99 latency
inflation up to ~3.9x for no-constraints.
"""

from __future__ import annotations

from dataclasses import replace

from repro import (
    ClusterState,
    ConstraintManager,
    ConstraintUnawareScheduler,
    IlpScheduler,
    build_cluster,
)
from repro.apps import hbase_instance
from repro.perf import SERVING_PARAMS, extract_features, serving_throughput, tail_latency_factor
from repro.reporting import banner, render_table
from repro.workloads import YCSB_WORKLOADS, fill_cluster

NUM_INSTANCES = 6
REGION_SERVERS = 10


def deploy(constrained: bool):
    topology = build_cluster(100, racks=10, memory_mb=16 * 1024, vcores=8)
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    fill_cluster(state, 0.60)
    requests = [
        hbase_instance(
            f"hb-{i}",
            region_servers=REGION_SERVERS,
            max_rs_per_node=1 if constrained else 1,
            with_aux=False,
            constraints_enabled=constrained,
        )
        for i in range(NUM_INSTANCES)
    ]
    scheduler = (
        IlpScheduler(max_candidate_nodes=100, time_limit_s=5.0, mip_rel_gap=0.02)
        if constrained
        else ConstraintUnawareScheduler(seed=3)
    )
    for start in range(0, len(requests), 2):
        batch = requests[start:start + 2]
        for request in batch:
            manager.register_application(request)
        result = scheduler.place(batch, state, manager)
        for p in result.placements:
            state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
    return state


def throughputs(state, *, cgroups: bool) -> dict[str, float]:
    """Aggregate Kops/s per YCSB workload across the deployed instances."""
    out: dict[str, float] = {}
    for name, wl in YCSB_WORKLOADS.items():
        params = replace(
            SERVING_PARAMS,
            collocation_linear=SERVING_PARAMS.collocation_linear
            * wl.interference_sensitivity,
        )
        total = 0.0
        for i in range(NUM_INSTANCES):
            feats = extract_features(state, f"hb-{i}", "hb_rs")
            total += serving_throughput(wl.base_kops, feats, params, cgroups=cgroups)
        out[name] = total / NUM_INSTANCES
    return out


def run_fig2b():
    yarn_state = deploy(constrained=False)
    medea_state = deploy(constrained=True)
    results = {
        "YARN": throughputs(yarn_state, cgroups=False),
        "YARN-Cgroups": throughputs(yarn_state, cgroups=True),
        "MEDEA": throughputs(medea_state, cgroups=False),
        "MEDEA-Cgroups": throughputs(medea_state, cgroups=True),
    }
    tails = {
        "YARN": sum(
            tail_latency_factor(extract_features(yarn_state, f"hb-{i}", "hb_rs"))
            for i in range(NUM_INSTANCES)
        ) / NUM_INSTANCES,
        "MEDEA": sum(
            tail_latency_factor(extract_features(medea_state, f"hb-{i}", "hb_rs"))
            for i in range(NUM_INSTANCES)
        ) / NUM_INSTANCES,
    }
    return results, tails


def test_fig2b_anti_affinity(benchmark):
    results, tails = benchmark.pedantic(run_fig2b, rounds=1, iterations=1)
    workloads = sorted(YCSB_WORKLOADS)
    print(banner("Figure 2b: HBase YCSB throughput (Kops/s) with anti-affinity"))
    print(render_table(
        ["system"] + workloads,
        [[name] + [series[w] for w in workloads] for name, series in results.items()],
    ))
    print(f"p99 latency inflation: YARN {tails['YARN']:.1f}x vs MEDEA {tails['MEDEA']:.1f}x")

    for w in workloads:
        assert results["MEDEA"][w] > results["YARN"][w]
        assert results["YARN"][w] < results["YARN-Cgroups"][w] < results["MEDEA"][w]
    mean_ratio = sum(results["YARN"][w] / results["MEDEA"][w] for w in workloads) / 6
    assert 0.5 < mean_ratio < 0.85, f"expected ~0.66 throughput ratio, got {mean_ratio:.2f}"
    assert tails["YARN"] / tails["MEDEA"] > 1.3
