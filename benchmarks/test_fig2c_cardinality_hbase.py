"""Figure 2c — HBase total YCSB runtime vs. max region servers per node.

Ten region servers deployed at exact collocation levels {1, 2, 4, 8, 10}
(see the Fig. 2d bench for why the sweep pins collocation rather than
merely capping it), on a low-utilised (5%) and a highly-utilised (70%)
cluster with skewed background load.

Shape targets: full affinity (all 10 on a node) is the worst configuration
under load; the loaded cluster is slower overall; the optimal collocation
level under load is at least the idle cluster's.
"""

from __future__ import annotations

from repro import (
    ClusterState,
    ConstraintManager,
    IlpScheduler,
    Resource,
    build_cluster,
)
from repro.apps import same_rack_group, worker_containers
from repro.core.constraints import cardinality
from repro.core.requests import LRARequest
from repro.perf import extract_features, serving_runtime
from repro.reporting import banner, render_series
from repro.taskscheduler.base import TASK_TAG

CARDINALITIES = [1, 2, 4, 8, 10]
BASE_RUNTIME_MIN = 18.0  # minutes for the full YCSB suite, uncontended
REGION_SERVERS = 10


def skewed_fill(state: ClusterState, mean_fraction: float) -> None:
    nodes = sorted(state.topology, key=lambda n: n.node_id)
    count = len(nodes)
    for index, node in enumerate(nodes):
        fraction = min(0.92, mean_fraction * 2 * index / max(1, count - 1))
        target_mb = int(fraction * node.capacity.memory_mb)
        blocks, block = 0, Resource(6144, 1)
        while (blocks + 1) * block.memory_mb <= target_mb and node.can_fit(block):
            state.allocate(
                f"bg/{node.node_id}/{blocks}", node.node_id, block,
                (TASK_TAG,), "bg", long_running=False,
            )
            blocks += 1


def exact_cardinality_hbase(app_id: str, per_node: int) -> LRARequest:
    containers = worker_containers(
        app_id, "hb_rs", "hb", REGION_SERVERS, Resource(2048, 1)
    )
    constraints = [
        cardinality("hb_rs", "hb_rs", per_node - 1, per_node - 1, "node"),
    ]
    if per_node < REGION_SERVERS:
        constraints.append(same_rack_group(("hb", "hb_rs"), REGION_SERVERS))
    return LRARequest(app_id, containers, constraints)


def runtime_for(per_node: int, background_util: float) -> float:
    topology = build_cluster(40, racks=4, memory_mb=64 * 1024, vcores=24)
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    skewed_fill(state, background_util)
    request = exact_cardinality_hbase("hb", per_node)
    manager.register_application(request)
    result = IlpScheduler(
        max_candidate_nodes=40, time_limit_s=10.0, mip_rel_gap=0.02
    ).place([request], state, manager)
    for p in result.placements:
        state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
    feats = extract_features(state, "hb", "hb_rs")
    return serving_runtime(BASE_RUNTIME_MIN, feats)


def run_fig2c():
    return {
        "low": [runtime_for(k, 0.05) for k in CARDINALITIES],
        "high": [runtime_for(k, 0.70) for k in CARDINALITIES],
    }


def test_fig2c_cardinality_hbase(benchmark):
    series = benchmark.pedantic(run_fig2c, rounds=1, iterations=1)
    print(banner("Figure 2c: HBase runtime (min) vs max region servers per node"))
    print(render_series(
        "max RS/node", CARDINALITIES,
        {"Low utilized cluster": series["low"], "High utilized cluster": series["high"]},
    ))
    low, high = series["low"], series["high"]
    best_low = CARDINALITIES[low.index(min(low))]
    best_high = CARDINALITIES[high.index(min(high))]
    # Full affinity (10 RS on one node) is the worst choice under load.
    assert high[-1] == max(high)
    # Collocation tolerance rises (or holds) with load.
    assert best_high >= best_low
    # The loaded cluster is slower on average.
    assert sum(high) / len(high) > sum(low) / len(low)
