"""Figure 2d — TensorFlow runtime vs. max workers per node (§2.2).

A 32-worker TensorFlow job deployed at exact collocation levels
{1, 4, 8, 16, 32} workers per node, in a low-utilised (5%) and
highly-utilised (70%) cluster.

Two experiment-fidelity notes:

* The sweep pins collocation with an *exact* cardinality constraint
  (cmin = cmax = K-1): the paper's knob is the deployment's collocation
  level, whereas a bare cmax cap would let the scheduler spread every
  configuration identically.
* Background load is skewed across nodes (bursty batch load), matching
  production: with perfectly uniform 70% fill no node could host 32
  2 GB workers at all.

Calibration targets from the paper: in the highly-utilised cluster the
optimum is 16 workers/node — ~42% faster than full affinity (32) and ~34%
faster than full anti-affinity (1) — while the less-utilised cluster's
optimum is lower (4).
"""

from __future__ import annotations

import pytest

from repro import (
    ClusterState,
    ConstraintManager,
    IlpScheduler,
    Resource,
    build_cluster,
)
from repro.apps import same_rack_group, worker_containers
from repro.core.constraints import cardinality
from repro.core.requests import LRARequest
from repro.perf import extract_features, iterative_runtime
from repro.reporting import banner, render_series
from repro.taskscheduler.base import TASK_TAG

CARDINALITIES = [1, 4, 8, 16, 32]
BASE_RUNTIME_MIN = 95.0  # one million iterations, uncontended
WORKERS = 32


def skewed_fill(state: ClusterState, mean_fraction: float) -> None:
    """Per-node background load ramping linearly from ~0 to ~2x the mean
    (clamped), so the cluster average hits ``mean_fraction`` while a few
    nodes stay lightly loaded — the texture of real batch load."""
    nodes = sorted(state.topology, key=lambda n: n.node_id)
    count = len(nodes)
    for index, node in enumerate(nodes):
        fraction = min(0.92, mean_fraction * 2 * index / max(1, count - 1))
        target_mb = int(fraction * node.capacity.memory_mb)
        blocks, block = 0, Resource(6144, 1)
        while (blocks + 1) * block.memory_mb <= target_mb and node.can_fit(block):
            state.allocate(
                f"bg/{node.node_id}/{blocks}", node.node_id, block,
                (TASK_TAG,), "bg", long_running=False,
            )
            blocks += 1


def exact_cardinality_tf(app_id: str, per_node: int) -> LRARequest:
    containers = worker_containers(app_id, "tf_w", "tf", WORKERS, Resource(2048, 1))
    constraints = [
        cardinality("tf_w", "tf_w", per_node - 1, per_node - 1, "node"),
    ]
    # Rack affinity only where a single 10-node rack can hold the spread:
    # at K=1/K=2 the job necessarily spans racks, and that cross-rack
    # traffic is part of what the sweep measures (§7.1 uses rack affinity
    # for its 4-per-node deployments).
    nodes_needed = (WORKERS + per_node - 1) // per_node
    if 1 < nodes_needed <= 10:
        constraints.append(same_rack_group(("tf", "tf_w"), WORKERS))
    return LRARequest(app_id, containers, constraints)


def runtime_for(per_node: int, background_util: float) -> float:
    # 128 GB / 40-core machines so 32 x <2 GB, 1 core> workers can share a
    # node, as in the paper's testbed.
    topology = build_cluster(40, racks=4, memory_mb=128 * 1024, vcores=40)
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    skewed_fill(state, background_util)
    request = exact_cardinality_tf("tf", per_node)
    manager.register_application(request)
    result = IlpScheduler(
        max_candidate_nodes=40, time_limit_s=10.0, mip_rel_gap=0.02
    ).place([request], state, manager)
    for p in result.placements:
        state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
    feats = extract_features(state, "tf", "tf_w")
    return iterative_runtime(BASE_RUNTIME_MIN, feats)


def run_fig2d():
    return {
        "low": [runtime_for(k, 0.05) for k in CARDINALITIES],
        "high": [runtime_for(k, 0.70) for k in CARDINALITIES],
    }


def test_fig2d_cardinality_tf(benchmark):
    series = benchmark.pedantic(run_fig2d, rounds=1, iterations=1)
    print(banner("Figure 2d: TensorFlow runtime (min) vs max workers per node"))
    print(render_series(
        "max workers/node", CARDINALITIES,
        {"Low utilized cluster": series["low"], "High utilized cluster": series["high"]},
    ))
    low, high = series["low"], series["high"]
    best_low = CARDINALITIES[low.index(min(low))]
    best_high = CARDINALITIES[high.index(min(high))]
    # Paper: optimum 16 under load, 4 when idle.  Our interference model
    # puts the loaded-cluster optimum in the 8-16 band (8 and 16 are within
    # ~2% of each other); the key shape — an interior optimum that shifts
    # *up* with load — holds.
    assert best_high in (8, 16)
    assert best_low in (4, 8)
    assert best_high >= best_low
    assert min(high) < high[0] and min(high) < high[-1]
    i16 = CARDINALITIES.index(16)
    assert high[i16] / high[-1] == pytest.approx(0.58, abs=0.2)
    assert high[i16] / high[0] == pytest.approx(0.66, abs=0.2)
