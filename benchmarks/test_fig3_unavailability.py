"""Figure 3 — unavailable machines in a large cluster over four days.

Reproduces the telemetry figure from the synthetic service-unit trace
generator and asserts its three qualitative invariants (§2.3): baseline
unavailability below 3%, spikes to 25%+ within individual service units,
and asynchronous failures across units (a unit spike barely moves the
cluster-wide total).
"""

from __future__ import annotations

from repro.failures import generate_trace
from repro.obs.stats import percentile
from repro.reporting import banner, render_table

HOURS = 4 * 24
SERVICE_UNITS = 25


def run_fig3():
    return generate_trace(SERVICE_UNITS, HOURS, seed=0)


def test_fig3_unavailability(benchmark):
    trace = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    total = trace.total_series()
    print(banner("Figure 3: unavailable machines over 4 days (%)"))
    rows = []
    for su in range(4):
        series = trace.series_for_unit(su)
        rows.append([
            f"SU {su + 1}", 100 * percentile(series, 50),
            100 * percentile(series, 95), 100 * max(series),
        ])
    rows.append([
        "total", 100 * percentile(total, 50),
        100 * percentile(total, 95), 100 * max(total),
    ])
    print(render_table(["series", "median %", "p95 %", "max %"], rows))

    all_values = [f for row in trace.fractions for f in row]
    below_3pct = sum(1 for f in all_values if f <= 0.03) / len(all_values)
    assert below_3pct > 0.8, "unavailability should usually be below 3%"
    assert max(max(row) for row in trace.fractions) >= 0.25, "spikes expected"
    # Asynchrony: the worst per-unit hour dwarfs the total at that hour.
    worst_hour = max(range(HOURS), key=lambda h: max(trace.fractions[h]))
    assert trace.total(worst_hour) < max(trace.fractions[worst_hour]) / 2
