"""Figure 7 — application performance under four schedulers (§7.2).

TensorFlow and HBase instances plus GridMix background load are placed by
MEDEA (ILP), J-KUBE, J-KUBE++ and YARN; per-instance runtimes come from the
interference/locality performance model applied to the *actual* placements
each scheduler produced.

Shape targets (paper): Medea's median runtime beats J-Kube by ~30% and YARN
by ~2x for the LRA workloads; J-Kube++ sits between Medea and J-Kube with a
much fatter p99 than Medea; GridMix task runtimes are essentially identical
across schedulers (Fig. 7d).
"""

from __future__ import annotations

from repro import (
    ClusterState,
    ConstraintManager,
    ConstraintUnawareScheduler,
    IlpScheduler,
    JKubePlusPlusScheduler,
    JKubeScheduler,
    build_cluster,
)
from repro.apps import hbase_instance, tensorflow_instance
from repro.obs.stats import BoxStats
from repro.perf import extract_features, iterative_runtime, serving_runtime
from repro.reporting import banner, render_table
from repro.workloads import fill_cluster

NUM_TF = 12      # paper: 45 on 400 nodes; we run 12 on 100 nodes
NUM_HBASE = 13   # paper: 50
TF_BASE_MIN = 380.0
HB_INSERT_BASE_S = 290.0
HB_WLA_BASE_S = 180.0
GRIDMIX_BASE_S = 42.0


def schedulers():
    return {
        "MEDEA": IlpScheduler(max_candidate_nodes=60, time_limit_s=5.0, mip_rel_gap=0.02),
        "J-KUBE": JKubeScheduler(),
        "J-KUBE++": JKubePlusPlusScheduler(),
        "YARN": ConstraintUnawareScheduler(seed=7),
    }


def deploy(scheduler):
    topology = build_cluster(100, racks=10, memory_mb=16 * 1024, vcores=8)
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    fill_cluster(state, 0.50)
    requests = []
    for i in range(NUM_TF):
        requests.append(tensorflow_instance(f"tf-{i}", max_workers_per_node=4))
    for i in range(NUM_HBASE):
        requests.append(hbase_instance(f"hb-{i}", max_rs_per_node=2))
    for start in range(0, len(requests), 2):
        batch = requests[start:start + 2]
        for request in batch:
            manager.register_application(request)
        result = scheduler.place(batch, state, manager)
        for p in result.placements:
            state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
    return state


def measure(state) -> dict[str, list[float]]:
    tf_runtimes, hb_insert, hb_wla = [], [], []
    for i in range(NUM_TF):
        feats = extract_features(state, f"tf-{i}", "tf_w")
        if feats.total_workers:
            tf_runtimes.append(iterative_runtime(TF_BASE_MIN, feats))
    for i in range(NUM_HBASE):
        feats = extract_features(state, f"hb-{i}", "hb_rs")
        if feats.total_workers:
            hb_insert.append(serving_runtime(HB_INSERT_BASE_S, feats))
            hb_wla.append(serving_runtime(HB_WLA_BASE_S, feats))
    # GridMix: short tasks see only their own node's pressure, which is the
    # same background fill in every deployment — runtimes barely move.
    gridmix = []
    for placed in state.containers.values():
        if placed.allocation.long_running:
            continue
        node = state.topology.node(placed.node_id)
        overcommit = 1.0 + 0.1 * max(0.0, node.memory_utilization() - 0.9)
        gridmix.append(GRIDMIX_BASE_S * overcommit)
    return {
        "tf": tf_runtimes, "hb_insert": hb_insert,
        "hb_wla": hb_wla, "gridmix": gridmix,
    }


def run_fig7():
    return {name: measure(deploy(s)) for name, s in schedulers().items()}


def test_fig7_performance(benchmark):
    results = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    stats = {
        name: {k: BoxStats.from_values_or_empty(v) for k, v in series.items()}
        for name, series in results.items()
    }
    for panel, title, unit in (
        ("tf", "Figure 7a: TensorFlow runtime", "min"),
        ("hb_insert", "Figure 7b: HBase insert runtime", "sec"),
        ("hb_wla", "Figure 7c: HBase workload A runtime", "sec"),
        ("gridmix", "Figure 7d: GridMix task runtime", "sec"),
    ):
        print(banner(f"{title} ({unit})"))
        print(render_table(
            ["system", "p5", "p25", "median", "p75", "p99"],
            [
                [name, s[panel].p5, s[panel].p25, s[panel].median,
                 s[panel].p75, s[panel].p99]
                for name, s in stats.items()
            ],
        ))

    for panel in ("tf", "hb_insert", "hb_wla"):
        medea = stats["MEDEA"][panel]
        jkube = stats["J-KUBE"][panel]
        jkubepp = stats["J-KUBE++"][panel]
        yarn = stats["YARN"][panel]
        # Medea wins the median against every baseline.
        assert medea.median < jkube.median
        assert medea.median <= jkubepp.median
        assert medea.median < yarn.median
        # YARN is far worse (paper: ~2x median for TF).
        assert yarn.median / medea.median > 1.3
        # Predictability: Medea's p99 beats J-Kube++'s.
        assert medea.p99 <= jkubepp.p99

    # Fig. 7d: task runtimes are scheduler-independent (within 10%).
    gridmix_medians = [s["gridmix"].median for s in stats.values()]
    assert max(gridmix_medians) / min(gridmix_medians) < 1.1
