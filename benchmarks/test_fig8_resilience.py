"""Figure 8 — application resilience over 15 days (§7.3).

LRAs whose containers must be spread across service units (intra-app
cardinality on the ``service_unit`` group) are placed by Medea-ILP and by
J-Kube; a 15-day unavailability trace is then replayed against both
placements and the per-hour worst container-unavailability across LRAs is
compared.

J-Kube cannot express the cardinality spread (it drops the constraint), so
under skewed background load it concentrates containers in the emptiest
service units — and pays when one of those units fails.  Shape targets:
Medea's CDF dominates (lower median and lower maximum unavailability).
"""

from __future__ import annotations

import random

from repro import (
    ClusterState,
    ConstraintManager,
    IlpScheduler,
    JKubeScheduler,
    Resource,
    build_cluster,
)
from repro.apps import max_collocated, worker_containers
from repro.core.requests import LRARequest
from repro.failures import generate_trace, max_unavailability_series, su_distribution
from repro.obs.stats import percentile
from repro.reporting import banner, render_table

SERVICE_UNITS = 25
NODES = 125  # 5 nodes per service unit
LRAS = 5
CONTAINERS = 50
#: <= 3 containers of one LRA per service unit (2 "others" + the subject).
MAX_PER_SU = 3


def spread_lra(app_id: str) -> LRARequest:
    containers = worker_containers(
        app_id, "svc_w", "svc", CONTAINERS, Resource(2048, 1)
    )
    from repro.tags import app_id_tag
    from repro.core.constraints import cardinality

    constraint = cardinality(
        (app_id_tag(app_id), "svc_w"),
        (app_id_tag(app_id), "svc_w"),
        0,
        MAX_PER_SU - 1,
        "service_unit",
    )
    return LRARequest(app_id, containers, [constraint])


def skewed_background(state: ClusterState, seed: int = 5) -> None:
    """Batch load concentrated in low-index service units, so a
    constraint-blind scheduler drifts toward the high-index units."""
    rng = random.Random(seed)
    nodes = list(state.topology)
    weights = [
        3.0 if int(node.node_id[1:]) < NODES // 2 else 0.3 for node in nodes
    ]
    for i in range(420):
        node = rng.choices(nodes, weights)[0]
        if node.can_fit(Resource(2048, 1)):
            state.allocate(
                f"bg/{i}", node.node_id, Resource(2048, 1), ("task",), "bg",
                long_running=False,
            )


def place_all(scheduler) -> dict[str, dict[int, int]]:
    topology = build_cluster(
        NODES, racks=SERVICE_UNITS, memory_mb=16 * 1024, vcores=8,
        service_units=SERVICE_UNITS,
    )
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    skewed_background(state)
    for i in range(LRAS):
        request = spread_lra(f"lra-{i}")
        manager.register_application(request)
        result = scheduler.place([request], state, manager)
        for p in result.placements:
            state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
    return {
        f"lra-{i}": su_distribution(state, f"lra-{i}") for i in range(LRAS)
    }


def run_fig8():
    trace = generate_trace(SERVICE_UNITS, 15 * 24, seed=1)
    medea = place_all(IlpScheduler(time_limit_s=30.0, mip_rel_gap=0.02))
    jkube = place_all(JKubeScheduler())
    return {
        "MEDEA": max_unavailability_series(medea, trace),
        "J-KUBE": max_unavailability_series(jkube, trace),
    }, medea, jkube


def test_fig8_resilience(benchmark):
    series, medea_dist, jkube_dist = benchmark.pedantic(
        run_fig8, rounds=1, iterations=1
    )
    print(banner("Figure 8: max container unavailability per LRA over 15 days (%)"))
    rows = []
    for name, values in series.items():
        rows.append([
            name, 100 * percentile(values, 50), 100 * percentile(values, 95),
            100 * max(values),
        ])
    print(render_table(["system", "median %", "p95 %", "max %"], rows))
    worst_medea = max(max(d.values()) for d in medea_dist.values())
    worst_jkube = max(max(d.values()) for d in jkube_dist.values())
    print(f"worst per-SU concentration: MEDEA={worst_medea}, J-KUBE={worst_jkube}")

    # Medea honours the spread; J-Kube concentrates somewhere.
    assert worst_medea <= MAX_PER_SU
    assert worst_jkube > MAX_PER_SU
    # Resilience: lower median and max unavailability (paper: 16% / 24%).
    medea, jkube = series["MEDEA"], series["J-KUBE"]
    assert percentile(medea, 50) <= percentile(jkube, 50)
    assert max(medea) < max(jkube)
