"""Figures 9a, 10a, 10b — global cluster objectives vs. LRA utilisation.

One sweep drives all three panels (the paper draws them from the same
simulation): HBase LRA populations sized to 10–90% of cluster memory are
placed by the five algorithms, two LRAs per scheduling cycle, and the final
state is audited for

* Fig. 9a — % of constrained containers violating a constraint,
* Fig. 10a — % of fragmented nodes (< 1 core / 2 GB free, not full),
* Fig. 10b — coefficient of variation of node memory utilisation.

Shape targets: Medea-ILP has the fewest violations at every utilisation;
J-Kube (no cardinality support, one container at a time) the most; all
algorithms fragment little except at high utilisation; load imbalance is
highest at low utilisation and evens out as the cluster fills.
"""

from __future__ import annotations

import pytest

from repro import build_cluster
from repro.reporting import banner, render_series
from repro.workloads import population_for_utilization

from benchmarks.harness import ExperimentResult, make_schedulers, run_placement_experiment, scaled

UTILIZATIONS = [10, 30, 50, 70, 90]
NUM_NODES = scaled(100)

_cache: dict[str, dict[str, list[ExperimentResult]]] = {}


def run_sweep() -> dict[str, list[ExperimentResult]]:
    if "sweep" in _cache:
        return _cache["sweep"]
    topology = build_cluster(NUM_NODES, racks=10, memory_mb=16 * 1024, vcores=8)
    results: dict[str, list[ExperimentResult]] = {}
    for name, scheduler in make_schedulers().items():
        series = []
        for util in UTILIZATIONS:
            population = population_for_utilization(
                topology, util / 100, max_rs_per_node=4
            )
            series.append(
                run_placement_experiment(
                    scheduler, population, num_nodes=NUM_NODES
                )
            )
        results[name] = series
    _cache["sweep"] = results
    return results


def test_fig9a_constraint_violations(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    series = {
        name: [100 * r.violation_fraction for r in rs]
        for name, rs in results.items()
    }
    print(banner("Figure 9a: constraint violations (%) vs LRA utilisation"))
    print(render_series("LRA util %", UTILIZATIONS, series))
    for i, util in enumerate(UTILIZATIONS):
        ilp = series["MEDEA-ILP"][i]
        # The ILP is the best (or tied-best) algorithm everywhere...
        assert ilp <= min(s[i] for s in series.values()) + 1.5
        # ...and J-Kube, lacking cardinality support, is clearly worse.
        assert series["J-KUBE"][i] > ilp + 5
    # Paper headline: ILP keeps violations minimal even at 90% utilisation.
    assert series["MEDEA-ILP"][-1] < 10


def test_fig10a_fragmentation(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    series = {
        name: [100 * r.fragmentation_fraction for r in rs]
        for name, rs in results.items()
    }
    print(banner("Figure 10a: fragmented nodes (%) vs LRA utilisation"))
    print(render_series("LRA util %", UTILIZATIONS, series))
    for name, values in series.items():
        # Little fragmentation except at high utilisation.
        assert values[0] <= 10
        assert values[-1] >= values[0]


def test_fig10b_load_balance(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    series = {
        name: [100 * r.utilization_cv for r in rs] for name, rs in results.items()
    }
    print(banner("Figure 10b: node memory utilisation CV (%) vs LRA utilisation"))
    print(render_series("LRA util %", UTILIZATIONS, series))
    for name, values in series.items():
        # Imbalance is most pronounced at low utilisation and evens out.
        assert values[-1] < values[0]
