"""Figure 9b — constraint violations vs. task-based utilisation (§7.4).

LRAs hold a stable 10% of cluster memory while GridMix background tasks
sweep from 10% to 60%.  Shape targets mirror Fig. 9a: Medea-ILP lowest,
J-Kube highest, with violations rising for the greedy algorithms as batch
load squeezes the placement space.
"""

from __future__ import annotations

from repro import build_cluster
from repro.reporting import banner, render_series
from repro.workloads import population_for_utilization

from benchmarks.harness import make_schedulers, run_placement_experiment, scaled

TASK_UTILIZATIONS = [10, 30, 50, 60]
NUM_NODES = scaled(100)


def run_fig9b():
    topology = build_cluster(NUM_NODES, racks=10, memory_mb=16 * 1024, vcores=8)
    population = population_for_utilization(topology, 0.10, max_rs_per_node=4)
    results = {}
    for name, scheduler in make_schedulers().items():
        results[name] = [
            100
            * run_placement_experiment(
                scheduler,
                population,
                num_nodes=NUM_NODES,
                task_memory_fraction=task_util / 100,
            ).violation_fraction
            for task_util in TASK_UTILIZATIONS
        ]
    return results


def test_fig9b_violations_task_util(benchmark):
    series = benchmark.pedantic(run_fig9b, rounds=1, iterations=1)
    print(banner("Figure 9b: constraint violations (%) vs task utilisation"))
    print(render_series("task util %", TASK_UTILIZATIONS, series))
    for i in range(len(TASK_UTILIZATIONS)):
        ilp = series["MEDEA-ILP"][i]
        assert ilp <= min(s[i] for s in series.values()) + 1.5
        assert series["J-KUBE"][i] >= ilp
    # Paper: ILP stays below 10% violations across the sweep.
    assert max(series["MEDEA-ILP"]) < 10
