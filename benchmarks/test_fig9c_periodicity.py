"""Figure 9c — constraint violations vs. scheduling periodicity (§7.4).

The scheduling interval determines how many LRAs each invocation considers
together ("periodicity").  Sweeping the batch size from 1 to 6 at 10% LRA
utilisation shows the value of batching: with periodicity 1 even Medea-ILP
exhibits violations on inter-application constraints; larger batches let
the batch-aware algorithms (ILP, NC) satisfy them.

The population uses inter-application constraint *pairs* (complexity 2) so
that a batch of one cannot see its partner application.
"""

from __future__ import annotations

from repro.reporting import banner, render_series
from repro.workloads import complexity_population

from benchmarks.harness import make_schedulers, run_placement_experiment, scaled

PERIODICITIES = [1, 2, 4, 6]
NUM_NODES = scaled(100)
GROUPS = 7


def run_fig9c():
    results = {}
    for name, scheduler in make_schedulers().items():
        series = []
        for batch_size in PERIODICITIES:
            population = complexity_population(
                GROUPS, 2, containers_per_lra=8, seed=3
            )
            result = run_placement_experiment(
                scheduler, population, num_nodes=NUM_NODES, batch_size=batch_size
            )
            series.append(100 * result.violation_fraction)
        results[name] = series
    return results


def test_fig9c_violations_periodicity(benchmark):
    series = benchmark.pedantic(run_fig9c, rounds=1, iterations=1)
    print(banner("Figure 9c: constraint violations (%) vs periodicity"))
    print(render_series("periodicity", PERIODICITIES, series))
    ilp = series["MEDEA-ILP"]
    # Batching helps the ILP: periodicity >= 2 strictly beats periodicity 1.
    assert min(ilp[1:]) < ilp[0]
    # With ample batching the ILP satisfies (nearly) everything.
    assert ilp[-1] <= 5
    # J-Kube, one container at a time, cannot exploit periodicity the same
    # way and stays worse than the batched ILP.
    assert series["J-KUBE"][-1] > ilp[-1]
