"""Figure 9d — constraint violations vs. inter-application complexity (§7.4).

Complexity X means affinity/cardinality inter-application constraints
involving up to X LRAs (generated as rings of X applications, each
constrained toward the next).  The batch size is held at 2, so higher
complexity increasingly exceeds what one scheduling cycle can see.

Shape targets: Medea-ILP stays under ~10% violations even at complexity 10;
the greedy heuristics degrade moderately; J-Kube, considering one request
at a time, is clearly worst on inter-application constraints.
"""

from __future__ import annotations

from repro.reporting import banner, render_series
from repro.workloads import complexity_population

from benchmarks.harness import make_schedulers, run_placement_experiment, scaled

COMPLEXITIES = [1, 2, 4, 6, 8, 10]
NUM_NODES = scaled(100)
TOTAL_LRAS = 20


def run_fig9d():
    results = {}
    for name, scheduler in make_schedulers().items():
        series = []
        for complexity in COMPLEXITIES:
            groups = max(1, TOTAL_LRAS // complexity)
            population = complexity_population(
                groups, complexity, containers_per_lra=8, seed=7
            )
            result = run_placement_experiment(
                scheduler, population, num_nodes=NUM_NODES,
                batch_size=min(2, complexity),
            )
            series.append(100 * result.violation_fraction)
        results[name] = series
    return results


def test_fig9d_violations_complexity(benchmark):
    series = benchmark.pedantic(run_fig9d, rounds=1, iterations=1)
    print(banner("Figure 9d: constraint violations (%) vs complexity"))
    print(render_series("complexity", COMPLEXITIES, series))
    ilp = series["MEDEA-ILP"]
    # Paper: even with constraints spanning 10 LRAs the ILP stays < 10%.
    assert max(ilp) < 12
    # J-Kube struggles with inter-application constraints.
    assert series["J-KUBE"][-1] > ilp[-1]
    assert max(series["J-KUBE"]) > 10
