"""Observability-overhead gate: telemetry must not tax the run it observes.

The budget is concrete — a traced scale run finishes within 1.05x the
untraced run.  This benchmark measures exactly that ratio on a mid-size
simulation: the same deterministic workload runs with telemetry fully off
(disabled tracer) and with the full scale plane on (sampling tracer,
columnar ``.mtrc`` sink, streaming rollup sink).

The estimator is a **paired median ratio**: each repeat runs both arms
back to back (order alternating between repeats), yielding one on/off
ratio per pair, and the reported ``obs_overhead_ratio`` is the median of
the pair ratios.  Pairing matters on shared runners — per-arm minima can
come from different load epochs and compare a lucky run against an
unlucky one, while adjacent pairs see the same machine state so slow
drift divides out.

The ratio is computed from **process CPU time**, not wall time: telemetry
cost is CPU work, and on shared runners wall time is dominated by
scheduling noise from co-tenants (observed swings of ±25% dwarf the 5%
effect being gated).  CPU time measures the same overhead with much
smaller spread; on an idle machine the two ratios coincide.

CI gates the ratio against the committed
``benchmarks/baselines/BENCH_obs_baseline.json``::

    repro bench-compare benchmarks/baselines/BENCH_obs_baseline.json \
        BENCH_timeline.json --series obs_overhead_ratio \
        --ratio 1.05 --abs-floor 0.02

so the build fails only when telemetry regresses more than 5% past the
committed baseline (with a small absolute floor soaking up timer jitter
on fast runs).

Environment knobs::

    OBS_BENCH_NODES    cluster size             (default 200)
    OBS_BENCH_TASKS    total task lifecycles    (default 12000)
    OBS_BENCH_RATE     task arrivals per sim-s  (default 600)
    OBS_BENCH_REPEATS  paired repeats           (default 3)
"""

from __future__ import annotations

import os
import statistics
import time

from repro import Resource, TagPopularityScheduler, build_cluster
from repro.core.requests import TaskRequest
from repro.obs.metrics import Metrics
from repro.obs.mtrc import MtrcSink
from repro.obs.rollup import RollupSink
from repro.obs.sample import SamplingPolicy, TraceSampler
from repro.obs.trace import Tracer
from repro.sim import ClusterSimulation, SimConfig
from repro.workloads.lra_gen import hbase_population

from .harness import record_benchmark

NODES = int(os.environ.get("OBS_BENCH_NODES", "200"))
TASKS = int(os.environ.get("OBS_BENCH_TASKS", "12000"))
RATE = int(os.environ.get("OBS_BENCH_RATE", "600"))
REPEATS = int(os.environ.get("OBS_BENCH_REPEATS", "3"))

#: The scale-plane sampling policy the run-books recommend at 10k nodes:
#: engine dispatch off (pure engine internals, the densest stream — the
#: engine latches the rate-0 policy once per run and skips the whole
#: tracing block), task lifecycles head-sampled at 2%, everything
#: structural kept.
SAMPLE_SPEC = "engine.dispatch=0,task=0.02,seed=7"

#: Local sanity bound only — the real 1.05x gate runs through
#: ``repro bench-compare`` where min-of-repeats noise is baselined.
SANITY_RATIO = 2.0


def _run_workload(tracer: Tracer) -> float:
    """One deterministic simulation run; returns process-CPU seconds."""
    active_s = (TASKS + RATE - 1) // RATE
    horizon = float(active_s + 30)
    topology = build_cluster(
        NODES, racks=max(2, NODES // 20), memory_mb=16 * 1024, vcores=16
    )
    sim = ClusterSimulation(
        topology,
        TagPopularityScheduler(),
        config=SimConfig(
            scheduling_interval_s=10.0,
            heartbeat_interval_s=1.0,
            horizon_s=horizon,
            engine="ondemand",
        ),
        metrics=Metrics(),
        tracer=tracer,
    )
    sim.task_scheduler.retain_completed = False
    for i, lra in enumerate(hbase_population(max(2, NODES // 50))):
        sim.submit_lra(lra, at=float(2 * i))

    submitted = 0

    def submit_batch(engine) -> None:
        nonlocal submitted
        second = int(engine.now)
        batch = min(RATE, TASKS - submitted)
        for j in range(batch):
            sim.submit_task_now(
                TaskRequest(
                    task_id=f"s{second}-{j}",
                    app_id=f"job-{second % 13}",
                    resource=Resource(1024, 1),
                    duration_s=2.0 + ((second + j) % 7),
                )
            )
        submitted += batch

    sim.engine.schedule_periodic(1.0, submit_batch, until=float(active_s))

    start = time.process_time()
    sim.run()
    cpu = time.process_time() - start
    assert submitted == TASKS
    assert sim.task_scheduler.pending_tasks() == 0
    return cpu


def _telemetry_off() -> Tracer:
    return Tracer(enabled=False)


def _telemetry_on(tmp_path, rep: int) -> Tracer:
    sampler = TraceSampler(SamplingPolicy.parse(SAMPLE_SPEC))
    return Tracer(
        [
            MtrcSink(tmp_path / f"obs_overhead_{rep}.mtrc"),
            RollupSink(tmp_path / f"ROLLUP_obs_overhead_{rep}.json"),
        ],
        sampler=sampler,
    )


def test_observability_overhead_ratio(tmp_path) -> None:
    # Warm-up run outside the measurement: JIT-free Python still benefits
    # from warmed allocators, imports, and branch caches.
    _run_workload(_telemetry_off())

    ratios: list[float] = []
    off_cpu: list[float] = []
    on_cpu: list[float] = []
    emitted = dropped = 0
    overhead_s = 0.0
    for rep in range(REPEATS):
        # Paired design: both arms back to back, order alternating, one
        # ratio per pair — adjacent runs see the same machine state, so
        # slow drift (co-tenant load, thermal, page cache) divides out.
        tracer = _telemetry_on(tmp_path, rep)
        if rep % 2:
            on_s = _run_workload(tracer)
            off_s = _run_workload(_telemetry_off())
        else:
            off_s = _run_workload(_telemetry_off())
            on_s = _run_workload(tracer)
        tracer.close()
        off_cpu.append(off_s)
        on_cpu.append(on_s)
        ratios.append(on_s / off_s)
        stats = tracer.self_stats()
        emitted = stats["events_emitted"]
        dropped = stats["events_dropped"]
        overhead_s = stats["overhead_s"]

    ratio = statistics.median(ratios)
    best_off = min(off_cpu)
    best_on = min(on_cpu)
    assert emitted > 0  # telemetry arm actually traced something
    assert ratio < SANITY_RATIO, (
        f"telemetry-on run took {ratio:.2f}x the untraced run CPU "
        f"(pair ratios {[round(r, 3) for r in ratios]}) — sampling tracer "
        "is no longer cheap; see tracer overhead accounting"
    )

    record_benchmark(
        "obs:overhead",
        scheduler="MEDEA-TP+Capacity",
        nodes=NODES,
        apps=TASKS,
        series={
            "obs_overhead_ratio": {"t": [0.0], "v": [round(ratio, 6)]},
        },
    )
    print(
        f"\nobs overhead: ratio={ratio:.3f} "
        f"(pairs={[round(r, 3) for r in ratios]}, "
        f"best off={best_off:.3f}s on={best_on:.3f}s, emitted={emitted}, "
        f"sampled out={dropped}, tracer self-accounted {overhead_s:.3f}s)"
    )
