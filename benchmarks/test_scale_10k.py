"""Scale benchmark: a 10,000-node cluster pushing >= 1M container lifecycles.

This is the tentpole's proof-of-scale: the vectorised cluster state, the
candidate index, and the on-demand event engine together must carry a
cluster 20x the paper's simulated 500 machines through a million full
task lifecycles (submit -> queue -> allocate -> run -> release) in
benchmark-able wall time.  The run streams arrivals through
:meth:`ClusterSimulation.submit_task_now` (one generator event per
simulated second, never a million events in the heap) and disables
``retain_completed`` so memory stays bounded by the in-flight set.

Environment knobs (CI runs a reduced-scale smoke; defaults are the full
10k-node configuration)::

    SCALE_BENCH_NODES   cluster size            (default 10000)
    SCALE_BENCH_TASKS   total task lifecycles   (default 1000000)
    SCALE_BENCH_RATE    task arrivals per sim-s (default 2500)

Recorded series (``BENCH_timeline.json`` via the shared harness):

* ``queue_delay_s`` — per-checkpoint mean task queueing delay in
  *simulated* time.  Fully deterministic for fixed knobs, so the
  ``repro bench-compare`` gate pins behaviour, not runner hardware.
* ``wall_s`` — wall-clock seconds per checkpoint window (profile signal;
  not gated by default).
* ``throughput_tasks_per_wall_s`` — completed lifecycles per wall second.
"""

from __future__ import annotations

import os
import time

from repro import Resource, TagPopularityScheduler, build_cluster
from repro.core.requests import TaskRequest
from repro.obs.metrics import Metrics
from repro.sim import ClusterSimulation, SimConfig
from repro.workloads.lra_gen import hbase_population

from .harness import record_benchmark

NODES = int(os.environ.get("SCALE_BENCH_NODES", "10000"))
TASKS = int(os.environ.get("SCALE_BENCH_TASKS", "1000000"))
RATE = int(os.environ.get("SCALE_BENCH_RATE", "2500"))

#: Checkpoint cadence (simulated seconds) for the recorded series.
CHECKPOINT_S = 20.0


def test_scale_million_lifecycles() -> None:
    active_s = (TASKS + RATE - 1) // RATE
    horizon = float(active_s + 40)  # drain window: max duration is 9 s
    metrics = Metrics()
    topology = build_cluster(
        NODES, racks=max(2, NODES // 50), memory_mb=16 * 1024, vcores=16
    )
    sim = ClusterSimulation(
        topology,
        TagPopularityScheduler(),
        config=SimConfig(
            scheduling_interval_s=10.0,
            heartbeat_interval_s=1.0,
            horizon_s=horizon,
            engine="ondemand",
        ),
        metrics=metrics,
    )
    # Million-lifecycle runs cannot afford the per-allocation record list.
    sim.task_scheduler.retain_completed = False

    # A sprinkling of constrained LRAs keeps the cycle path (candidate
    # index + constraint evaluation) honest at full cluster size.
    for i, lra in enumerate(hbase_population(max(2, NODES // 1000))):
        sim.submit_lra(lra, at=float(2 * i))

    submitted = 0

    def submit_batch(engine) -> None:
        nonlocal submitted
        second = int(engine.now)
        batch = min(RATE, TASKS - submitted)
        for j in range(batch):
            sim.submit_task_now(
                TaskRequest(
                    task_id=f"s{second}-{j}",
                    app_id=f"job-{second % 13}",
                    resource=Resource(1024, 1),
                    duration_s=2.0 + ((second + j) % 7),
                )
            )
        submitted += batch

    sim.engine.schedule_periodic(1.0, submit_batch, until=float(active_s))

    # Deterministic checkpoint series, sampled on the simulated clock.
    checkpoints: dict[str, tuple[list[float], list[float]]] = {
        "queue_delay_s": ([], []),
        "wall_s": ([], []),
        "throughput_tasks_per_wall_s": ([], []),
    }
    timer = metrics.timer("task_queue_latency_seconds")
    window = {"count": 0, "total": 0.0, "done": 0, "wall": time.perf_counter()}

    def checkpoint(engine) -> None:
        stat = timer.stat(queue="default")
        d_count = stat.count - window["count"]
        d_total = stat.total_s - window["total"]
        d_done = sim.task_scheduler.completed_count - window["done"]
        now_wall = time.perf_counter()
        d_wall = now_wall - window["wall"]
        window.update(
            count=stat.count, total=stat.total_s,
            done=sim.task_scheduler.completed_count, wall=now_wall,
        )
        if d_count:
            _append(checkpoints["queue_delay_s"], engine.now, d_total / d_count)
        _append(checkpoints["wall_s"], engine.now, d_wall)
        if d_wall > 0:
            _append(
                checkpoints["throughput_tasks_per_wall_s"],
                engine.now, d_done / d_wall,
            )

    sim.engine.schedule_periodic(CHECKPOINT_S, checkpoint, until=horizon)

    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start

    scheduler = sim.task_scheduler
    assert submitted == TASKS
    assert scheduler.completed_count >= TASKS
    assert scheduler.completed_allocations == []  # retain_completed off
    released = metrics.counter("task_released_total").value()
    assert released >= TASKS  # full lifecycles, not just allocations
    assert scheduler.pending_tasks() == 0
    # The on-demand engine actually skipped the idle drain-phase ticks.
    assert sim.heartbeat_handle.fired < sim.heartbeat_handle.ticks

    record_benchmark(
        f"scale:{NODES}n",
        scheduler="MEDEA-TP+Capacity",
        nodes=NODES,
        apps=TASKS,
        series={
            name: {"t": ts, "v": vs}
            for name, (ts, vs) in checkpoints.items()
            if ts
        },
    )
    print(
        f"\nscale bench: {NODES} nodes, {TASKS} lifecycles in {wall:.1f}s wall "
        f"({TASKS / wall:,.0f} lifecycles/s), "
        f"{sim.heartbeat_handle.fired}/{sim.heartbeat_handle.ticks} "
        "heartbeat ticks did work"
    )


def _append(series: tuple[list[float], list[float]], t: float, v: float) -> None:
    series[0].append(round(t, 3))
    series[1].append(round(v, 9))
