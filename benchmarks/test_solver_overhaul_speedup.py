"""Solver hot-path overhaul — A/B latency on the Fig. 11a workload.

Places the k=10 HBase population in two-LRA batches (the paper's
scheduling-interval batching) on a 50-node cluster with candidate pruning,
once with the pre-overhaul branch-and-bound configuration
(:meth:`BnBOptions.naive`: cold ``linprog`` LPs, most-fractional branching,
pure best-first, no presolve/propagation/heuristic) and once with the full
configuration (warm-started incremental HiGHS LPs, exact presolve,
pseudocost branching, rounding heuristic, bound-aware plunging).

Both configurations are exact, so every batch must reach the same optimal
objective; the overhaul is required to cut the median batch solve time at
least in half.  Per-phase :class:`~repro.solver.SolverStats` totals are
printed for both runs.
"""

from __future__ import annotations

import statistics
import time

from repro import ClusterState, ConstraintManager, IlpScheduler, build_cluster
from repro.reporting import banner, render_series
from repro.solver import BnBOptions, SolverStats
from repro.workloads import hbase_population

NUM_LRAS = 10
BATCH_SIZE = 2
NUM_NODES = 50
CANDIDATE_NODES = 16


def run_workload(options: BnBOptions):
    """Place the population batch-by-batch; per-batch times + objectives."""
    population = hbase_population(NUM_LRAS, region_servers=4, max_rs_per_node=2)
    topology = build_cluster(NUM_NODES, racks=5)
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    scheduler = IlpScheduler(
        backend="bnb",
        max_candidate_nodes=CANDIDATE_NODES,
        time_limit_s=60.0,
        bnb_options=options,
    )
    times: list[float] = []
    objectives: list[float] = []
    totals = SolverStats(solves=0)
    for start in range(0, len(population), BATCH_SIZE):
        batch = list(population[start:start + BATCH_SIZE])
        for request in batch:
            manager.register_application(request)
        begin = time.perf_counter()
        result = scheduler.place(batch, state, manager)
        times.append(time.perf_counter() - begin)
        assert result.objective is not None, "every batch is solvable here"
        objectives.append(result.objective)
        totals.merge(scheduler.last_stats)
        for placement in result.placements:
            state.allocate(
                placement.container_id,
                placement.node_id,
                placement.resource,
                placement.tags,
                placement.app_id,
            )
        for app_id in result.rejected_apps:
            manager.unregister_application(app_id)
    return times, objectives, totals


def run_ab():
    run_workload(BnBOptions())  # warm numpy/scipy caches off the clock
    naive = run_workload(BnBOptions.naive())
    full = run_workload(BnBOptions())
    return naive, full


def test_solver_overhaul_speedup(benchmark):
    (t_naive, obj_naive, stats_naive), (t_full, obj_full, stats_full) = (
        benchmark.pedantic(run_ab, rounds=1, iterations=1)
    )
    batches = list(range(1, len(t_naive) + 1))
    print(banner("Solver overhaul: per-batch solve time (ms), k=10 workload"))
    print(
        render_series(
            "batch",
            batches,
            {
                "naive": [t * 1000 for t in t_naive],
                "overhauled": [t * 1000 for t in t_full],
            },
        )
    )
    print(f"naive      {stats_naive.summary()}")
    print(f"overhauled {stats_full.summary()}")

    # Exactness: both configurations prove the same optima.
    assert len(obj_naive) == len(obj_full)
    for a, b in zip(obj_naive, obj_full):
        assert abs(a - b) < 1e-6, f"objective drift: {a} vs {b}"

    median_naive = statistics.median(t_naive)
    median_full = statistics.median(t_full)
    speedup = median_naive / median_full
    print(f"median speedup: {speedup:.2f}x")
    assert speedup >= 2.0, f"expected >=2x median speedup, got {speedup:.2f}x"
