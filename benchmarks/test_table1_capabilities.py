"""Table 1 — scheduler support for requirements R1–R4.

Prints the paper's capability matrix and checks the rows for systems this
repository implements against their actual behaviour.
"""

from __future__ import annotations

from repro.core.capabilities import TABLE_1, Support, capabilities_of, render_table1
from repro.reporting import banner


def test_table1_capabilities(benchmark):
    text = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    print(banner("Table 1: LRA requirement support (R1-R4)"))
    print(text)
    medea = capabilities_of("Medea")
    assert medea.cardinality is Support.FULL
    assert capabilities_of("Kubernetes").cardinality is Support.NONE
    # Only Medea fully supports everything.
    full_rows = [
        caps.system
        for caps in TABLE_1
        if all(
            getattr(caps, field) is Support.FULL
            for field in (
                "affinity", "anti_affinity", "cardinality", "intra",
                "inter", "high_level", "global_objectives", "low_latency",
            )
        )
    ]
    assert full_rows == ["Medea"]
