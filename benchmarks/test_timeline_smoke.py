"""Timeline telemetry smoke — every experiment feeds ``BENCH_timeline.json``.

Runs one cheap heuristic and one small ILP placement experiment and asserts
that :data:`benchmarks.harness.BENCH_TIMELINES` captured non-empty
utilisation / queuing-delay / solver-latency series for each — the signals
``benchmarks/conftest.py`` dumps at session end and CI uploads.
"""

from __future__ import annotations

from repro import IlpScheduler, SerialScheduler
from repro.workloads import hbase_population

from .harness import BENCH_TIMELINES, run_placement_experiment, scaled

REQUIRED_SERIES = ("utilization", "queue_depth", "queue_delay_s", "solver_latency_s")


def _run(scheduler, label: str):
    population = hbase_population(scaled(8), max_rs_per_node=3)
    return run_placement_experiment(
        scheduler,
        population,
        num_nodes=scaled(40),
        racks=4,
        experiment=label,
    )


def test_timeline_smoke_serial():
    result = _run(SerialScheduler(), "timeline-smoke-serial")
    assert result.placed_apps > 0
    entry = BENCH_TIMELINES["timeline-smoke-serial"]
    for name in REQUIRED_SERIES:
        series = entry["series"][name]
        assert series["t"], f"{name} has no ticks"
        assert len(series["t"]) == len(series["v"])
    assert max(entry["series"]["utilization"]["v"]) > 0.0
    # Queue drains monotonically as batches are placed.
    depths = entry["series"]["queue_depth"]["v"]
    assert depths == sorted(depths, reverse=True)
    assert depths[-1] == 0.0


def test_timeline_smoke_ilp():
    scheduler = IlpScheduler(
        max_candidate_nodes=16, time_limit_s=2.0, mip_rel_gap=0.05
    )
    result = _run(scheduler, "timeline-smoke-ilp")
    assert result.placed_apps > 0
    entry = BENCH_TIMELINES["timeline-smoke-ilp"]
    latency = entry["series"]["solver_latency_s"]["v"]
    assert latency and all(v >= 0.0 for v in latency)
    assert entry["scheduler"] == scheduler.name
