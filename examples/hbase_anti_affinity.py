#!/usr/bin/env python3
"""The §2.2 anti-affinity study: HBase under interference.

Deploys HBase instances on a cluster already loaded with batch tasks,
once without constraints (a YARN-style placement) and once with region-
server anti-affinity, and compares modelled YCSB throughput — with and
without cgroups isolation — reproducing the shape of the paper's Fig. 2b.

Run:  python examples/hbase_anti_affinity.py
"""

from __future__ import annotations

from repro import (
    ClusterState,
    ConstraintManager,
    ConstraintUnawareScheduler,
    IlpScheduler,
    build_cluster,
)
from repro.apps import hbase_instance
from repro.perf import extract_features, serving_throughput, tail_latency_factor
from repro.workloads import fill_cluster, workload

NUM_INSTANCES = 4


def deploy(constrained: bool) -> ClusterState:
    topology = build_cluster(60, racks=6, memory_mb=16 * 1024, vcores=8)
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    fill_cluster(state, 0.60)  # GridMix-style batch load at 60% memory
    scheduler = (
        IlpScheduler() if constrained else ConstraintUnawareScheduler(seed=4)
    )
    for i in range(NUM_INSTANCES):
        request = hbase_instance(
            f"hb-{i}", region_servers=8, max_rs_per_node=1,
            with_aux=False, constraints_enabled=constrained,
        )
        manager.register_application(request)
        result = scheduler.place([request], state, manager)
        for p in result.placements:
            state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
    return state


def mean_throughput(state: ClusterState, cgroups: bool) -> float:
    wl = workload("A")
    total = 0.0
    for i in range(NUM_INSTANCES):
        feats = extract_features(state, f"hb-{i}", "hb_rs")
        total += serving_throughput(wl.base_kops, feats, cgroups=cgroups)
    return total / NUM_INSTANCES


def main() -> None:
    yarn_state = deploy(constrained=False)
    medea_state = deploy(constrained=True)

    rows = [
        ("no-constraints", mean_throughput(yarn_state, False)),
        ("no-constraints + cgroups", mean_throughput(yarn_state, True)),
        ("anti-affinity", mean_throughput(medea_state, False)),
        ("anti-affinity + cgroups", mean_throughput(medea_state, True)),
    ]
    print("YCSB workload A throughput (modelled, Kops/s per instance):")
    for name, value in rows:
        print(f"  {name:26s} {value:6.1f}")

    p99_yarn = max(
        tail_latency_factor(extract_features(yarn_state, f"hb-{i}", "hb_rs"))
        for i in range(NUM_INSTANCES)
    )
    p99_medea = max(
        tail_latency_factor(extract_features(medea_state, f"hb-{i}", "hb_rs"))
        for i in range(NUM_INSTANCES)
    )
    print(f"\np99 latency inflation: no-constraints {p99_yarn:.1f}x "
          f"vs anti-affinity {p99_medea:.1f}x")
    assert rows[2][1] > rows[0][1], "anti-affinity should beat no-constraints"


if __name__ == "__main__":
    main()
