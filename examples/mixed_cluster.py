#!/usr/bin/env python3
"""A shared production cluster: LRAs and batch tasks side by side.

Runs the full discrete-event simulation with Medea's two-scheduler design:
TensorFlow and HBase LRAs go through the ILP scheduler at 10-second
intervals while a GridMix task stream is allocated on node heartbeats by
the capacity scheduler.  Reports LRA placement quality and task scheduling
latency — the paper's central claim is that the former does not hurt the
latter.

Run:  python examples/mixed_cluster.py
"""

from __future__ import annotations

from repro import IlpScheduler, build_cluster, evaluate_violations
from repro.apps import hbase_instance, tensorflow_instance
from repro.obs.stats import BoxStats
from repro.sim import ClusterSimulation, SimConfig
from repro.workloads import GridMixConfig, generate_tasks

HORIZON_S = 120.0


def main() -> None:
    topology = build_cluster(50, racks=5, memory_mb=16 * 1024, vcores=8)
    sim = ClusterSimulation(
        topology,
        IlpScheduler(max_candidate_nodes=40, time_limit_s=5.0, mip_rel_gap=0.02),
        config=SimConfig(scheduling_interval_s=10.0, horizon_s=HORIZON_S),
    )

    # LRAs arrive over the first minute.
    lras = [
        tensorflow_instance("tf-0", max_workers_per_node=4),
        hbase_instance("hb-0", max_rs_per_node=2),
        tensorflow_instance("tf-1", max_workers_per_node=4),
        hbase_instance("hb-1", max_rs_per_node=2),
    ]
    for i, request in enumerate(lras):
        sim.submit_lra(request, at=2.0 + 12.0 * i)

    # A steady GridMix stream in parallel.
    for arrival, task in generate_tasks(GridMixConfig(seed=21), horizon_s=HORIZON_S):
        sim.submit_task(task, at=arrival)

    sim.run(HORIZON_S)

    report = evaluate_violations(sim.state, manager=sim.medea.manager)
    print(f"LRAs placed: {len(sim.lra_latencies())} / {len(lras)}")
    print(f"LRA scheduling latencies (s): "
          f"{[round(v, 1) for v in sim.lra_latencies()]}")
    print(f"LRA constraint violations: {report.violating_containers} of "
          f"{report.subject_containers} constrained containers")

    latencies = sim.task_latencies()
    if latencies:
        stats = BoxStats.from_values(latencies)
        print(f"\nTask allocations: {stats.count}")
        print(f"Task scheduling latency: median {stats.median:.2f}s, "
              f"p99 {stats.p99:.2f}s")
    print(f"\nFinal cluster memory utilisation: "
          f"{100 * sim.state.cluster_memory_utilization():.1f}%")


if __name__ == "__main__":
    main()
