#!/usr/bin/env python3
"""Quickstart: place two constrained LRAs on a small cluster with Medea.

Builds a 40-node cluster, defines an HBase-style application with
intra- and inter-application constraints, schedules it with the ILP-based
LRA scheduler, and prints the resulting placement and a violation audit.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ClusterState,
    ConstraintManager,
    ContainerRequest,
    IlpScheduler,
    LRARequest,
    Resource,
    affinity,
    anti_affinity,
    build_cluster,
    cardinality,
    evaluate_violations,
)


def main() -> None:
    # 1. A cluster: 40 nodes, 4 racks, 16 GB / 8 cores each.
    topology = build_cluster(40, racks=4, memory_mb=16 * 1024, vcores=8)
    state = ClusterState(topology)
    manager = ConstraintManager(topology)

    # 2. An application: 6 workers + a master, with three §4.2 constraints:
    #    - no more than 2 workers per node (cardinality; the count is of
    #      *other* workers, so cmax=1),
    #    - the master collocated with at least one worker (affinity),
    #    - masters of different apps on different nodes (anti-affinity).
    def make_app(app_id: str) -> LRARequest:
        containers = [
            ContainerRequest(f"{app_id}/w{i}", Resource(2048, 1), frozenset({"hb", "hb_rs"}))
            for i in range(6)
        ]
        containers.append(
            ContainerRequest(f"{app_id}/m", Resource(1024, 1), frozenset({"hb", "hb_m"}))
        )
        constraints = [
            cardinality("hb_rs", "hb_rs", 0, 1, "node"),
            affinity("hb_m", "hb_rs", "node"),
            anti_affinity("hb_m", "hb_m", "node"),
        ]
        return LRARequest(app_id, containers, constraints)

    apps = [make_app("hbase-1"), make_app("hbase-2")]

    # 3. Register constraints and place the batch with the ILP scheduler.
    for app in apps:
        manager.register_application(app)
    scheduler = IlpScheduler()
    result = scheduler.timed_place(apps, state, manager)

    print(f"Placed {len(result.placements)} containers "
          f"in {result.solve_time_s * 1000:.0f} ms "
          f"(objective {result.objective:.3f})")
    for placement in sorted(result.placements, key=lambda p: p.container_id):
        print(f"  {placement.container_id:14s} -> {placement.node_id} "
              f"({state.topology.node(placement.node_id).rack})")

    # 4. Apply the placements and audit them against the constraints.
    for p in result.placements:
        state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
    report = evaluate_violations(state, manager=manager)
    print(f"\nConstraint audit: {report.violating_containers} of "
          f"{report.subject_containers} constrained containers in violation")
    assert report.violating_containers == 0


if __name__ == "__main__":
    main()
