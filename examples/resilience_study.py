#!/usr/bin/env python3
"""Resilience study (§7.3): spreading LRAs across service units.

Places LRAs with an intra-application service-unit cardinality constraint
using Medea, and the same LRAs with J-Kube (which cannot express the
spread), then replays a 15-day machine-unavailability trace against both
placements and compares worst-case container unavailability.

Run:  python examples/resilience_study.py
"""

from __future__ import annotations

from repro import (
    ClusterState,
    ConstraintManager,
    IlpScheduler,
    JKubeScheduler,
    LRARequest,
    Resource,
    build_cluster,
    cardinality,
)
from repro.apps import worker_containers
from repro.failures import generate_trace, max_unavailability_series, su_distribution
from repro.obs.stats import percentile
from repro.tags import app_id_tag

SERVICE_UNITS = 10
NODES = 50


def spread_app(app_id: str, containers: int = 20) -> LRARequest:
    reqs = worker_containers(app_id, "svc_w", "svc", containers, Resource(2048, 1))
    constraint = cardinality(
        (app_id_tag(app_id), "svc_w"),
        (app_id_tag(app_id), "svc_w"),
        0, 1,  # at most 2 containers of this app per service unit
        "service_unit",
    )
    return LRARequest(app_id, reqs, [constraint])


def place(scheduler) -> dict[str, dict[int, int]]:
    topology = build_cluster(
        NODES, racks=SERVICE_UNITS, memory_mb=16 * 1024, vcores=8,
        service_units=SERVICE_UNITS,
    )
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    distributions = {}
    for i in range(3):
        request = spread_app(f"svc-{i}")
        manager.register_application(request)
        result = scheduler.place([request], state, manager)
        for p in result.placements:
            state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
        distributions[request.app_id] = su_distribution(state, request.app_id)
    return distributions


def main() -> None:
    trace = generate_trace(SERVICE_UNITS, 15 * 24, seed=2)
    medea = place(IlpScheduler())
    jkube = place(JKubeScheduler())

    for name, dist in (("MEDEA", medea), ("J-KUBE", jkube)):
        worst = max(max(d.values()) for d in dist.values())
        print(f"{name}: worst per-service-unit concentration = {worst} containers")

    for name, dist in (("MEDEA", medea), ("J-KUBE", jkube)):
        series = max_unavailability_series(dist, trace)
        print(f"{name}: max container unavailability per LRA — "
              f"median {100 * percentile(series, 50):.1f}%, "
              f"p95 {100 * percentile(series, 95):.1f}%, "
              f"max {100 * max(series):.1f}%")


if __name__ == "__main__":
    main()
