#!/usr/bin/env python3
"""Every scheduler in the repo on one workload, side by side.

Places the same HBase population with Medea-ILP, the Medea-NC / Medea-TP /
Serial heuristics, J-Kube, J-Kube++ and the YARN baseline, then prints one
row per algorithm: violations, fragmentation, load imbalance and placement
latency — a miniature of the paper's Figs. 9–11.

Run:  python examples/scheduler_comparison.py
"""

from __future__ import annotations

import time

from repro import (
    ClusterState,
    ConstraintManager,
    ConstraintUnawareScheduler,
    IlpScheduler,
    JKubePlusPlusScheduler,
    JKubeScheduler,
    NodeCandidatesScheduler,
    SerialScheduler,
    TagPopularityScheduler,
    build_cluster,
    evaluate_violations,
)
from repro.workloads import hbase_population

SCHEDULERS = [
    IlpScheduler(max_candidate_nodes=50, time_limit_s=5.0, mip_rel_gap=0.02),
    NodeCandidatesScheduler(),
    TagPopularityScheduler(),
    SerialScheduler(),
    JKubeScheduler(),
    JKubePlusPlusScheduler(),
    ConstraintUnawareScheduler(seed=11),
]


def main() -> None:
    population = hbase_population(10, max_rs_per_node=3)
    print(f"{'scheduler':12s} {'violations':>11s} {'frag %':>7s} "
          f"{'util CV':>8s} {'latency':>9s}")
    for scheduler in SCHEDULERS:
        topology = build_cluster(60, racks=6, memory_mb=16 * 1024, vcores=8)
        state = ClusterState(topology)
        manager = ConstraintManager(topology)
        start = time.perf_counter()
        for index in range(0, len(population), 2):
            batch = population[index:index + 2]
            for request in batch:
                manager.register_application(request)
            result = scheduler.place(batch, state, manager)
            for p in result.placements:
                state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
        elapsed = time.perf_counter() - start
        report = evaluate_violations(state, manager=manager)
        print(f"{scheduler.name:12s} "
              f"{report.violating_containers:4d}/{report.subject_containers:<4d}   "
              f"{100 * state.fragmented_node_fraction():6.1f} "
              f"{state.memory_utilization_cv():8.3f} "
              f"{elapsed * 1000:7.0f}ms")


if __name__ == "__main__":
    main()
