"""Setuptools shim.

The offline environments this repo targets lack the ``wheel`` package, so
PEP 517/660 editable installs (which shell out to ``bdist_wheel``) fail.
With this shim and no ``[build-system]`` table in pyproject.toml,
``pip install -e .`` takes the legacy ``setup.py develop`` path, which works
without network access.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
