"""Medea: scheduling of long-running applications in shared production clusters.

A full Python reproduction of the EuroSys 2018 paper.  The public API
re-exports the pieces a downstream user needs to build and place LRAs::

    from repro import (
        build_cluster, ClusterState, Resource,
        LRARequest, ContainerRequest,
        affinity, anti_affinity, cardinality,
        IlpScheduler, MedeaScheduler, CapacityScheduler,
    )

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from __future__ import annotations

from .cluster import (
    Allocation,
    ClusterState,
    ClusterTopology,
    Node,
    NodeGroup,
    Resource,
    build_cluster,
)
from .core import (
    NODE_SCOPE,
    RACK_SCOPE,
    UNBOUNDED,
    CompoundConstraint,
    ConstraintManager,
    ConstraintUnawareScheduler,
    ContainerPlacement,
    ContainerRequest,
    IlpScheduler,
    IlpWeights,
    JKubePlusPlusScheduler,
    JKubeScheduler,
    LRARequest,
    LRAScheduler,
    MedeaScheduler,
    Migration,
    MigrationPlan,
    MigrationPlanner,
    NodeCandidatesScheduler,
    PlacementConstraint,
    PlacementResult,
    SerialScheduler,
    TagConstraint,
    TagExpression,
    TagPopularityScheduler,
    TaskRequest,
    affinity,
    anti_affinity,
    cardinality,
    format_constraint,
    next_app_id,
    parse_constraint,
)
from .obs import (
    DecisionAudit,
    JsonlSink,
    MemorySink,
    Metrics,
    SolverStats,
    TraceEvent,
    Tracer,
)
from .obs.stats import BoxStats
from .obs.violations import evaluate_violations
from .taskscheduler import CapacityScheduler, FairScheduler, FifoScheduler
from .version import get_version

__version__ = get_version()

__all__ = [
    "__version__",
    # cluster
    "Allocation",
    "ClusterState",
    "ClusterTopology",
    "Node",
    "NodeGroup",
    "Resource",
    "build_cluster",
    # constraints
    "NODE_SCOPE",
    "RACK_SCOPE",
    "UNBOUNDED",
    "CompoundConstraint",
    "PlacementConstraint",
    "TagConstraint",
    "TagExpression",
    "affinity",
    "anti_affinity",
    "cardinality",
    "format_constraint",
    "parse_constraint",
    # requests
    "ContainerRequest",
    "LRARequest",
    "TaskRequest",
    "next_app_id",
    # schedulers
    "ConstraintManager",
    "ConstraintUnawareScheduler",
    "ContainerPlacement",
    "IlpScheduler",
    "IlpWeights",
    "JKubePlusPlusScheduler",
    "JKubeScheduler",
    "LRAScheduler",
    "MedeaScheduler",
    "Migration",
    "MigrationPlan",
    "MigrationPlanner",
    "NodeCandidatesScheduler",
    "PlacementResult",
    "SerialScheduler",
    "TagPopularityScheduler",
    "CapacityScheduler",
    "FairScheduler",
    "FifoScheduler",
    # metrics
    "BoxStats",
    "evaluate_violations",
    # observability
    "DecisionAudit",
    "JsonlSink",
    "MemorySink",
    "Metrics",
    "SolverStats",
    "TraceEvent",
    "Tracer",
]
