"""LRA application templates used across the evaluation."""

from __future__ import annotations

from .common import max_collocated, same_rack_group, worker_containers
from .hbase import (
    HB_MASTER,
    HB_RS,
    HB_SECONDARY,
    HB_TAG,
    HB_THRIFT,
    hbase_instance,
)
from .storm import (
    MEMCACHED_TAG,
    STORM_SUPERVISOR,
    STORM_TAG,
    memcached_instance,
    storm_instance,
)
from .tensorflow import TF_CHIEF, TF_PS, TF_TAG, TF_WORKER, tensorflow_instance

__all__ = [
    "max_collocated",
    "same_rack_group",
    "worker_containers",
    "HB_MASTER",
    "HB_RS",
    "HB_SECONDARY",
    "HB_TAG",
    "HB_THRIFT",
    "hbase_instance",
    "MEMCACHED_TAG",
    "STORM_SUPERVISOR",
    "STORM_TAG",
    "memcached_instance",
    "storm_instance",
    "TF_CHIEF",
    "TF_PS",
    "TF_TAG",
    "TF_WORKER",
    "tensorflow_instance",
]
