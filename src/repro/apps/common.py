"""Shared helpers for building LRA application templates."""

from __future__ import annotations

from typing import Iterable

from ..cluster.resources import Resource
from ..core.constraints import (
    PlacementConstraint,
    TagConstraint,
    TagExpression,
    UNBOUNDED,
    cardinality,
)
from ..core.requests import ContainerRequest
from ..tags import NODE_SCOPE

__all__ = ["worker_containers", "max_collocated", "same_rack_group"]


def worker_containers(
    app_id: str,
    role_tag: str,
    app_tag: str,
    count: int,
    resource: Resource,
    extra_tags: Iterable[str] = (),
) -> list[ContainerRequest]:
    """``count`` identical containers tagged with app type and role."""
    tags = frozenset({app_tag, role_tag, *extra_tags})
    return [
        ContainerRequest(f"{app_id}/{role_tag}-{i}", resource, tags)
        for i in range(count)
    ]


def max_collocated(
    tag: str, limit: int, node_group: str = NODE_SCOPE, *, weight: float = 1.0
) -> PlacementConstraint:
    """"No more than ``limit`` containers with ``tag`` per ``node_group`` set."

    Constraint semantics count *other* containers (the subject is excluded),
    so a per-node limit of ``limit`` becomes ``cmax = limit - 1`` on the
    others.
    """
    if limit < 1:
        raise ValueError("limit must be >= 1")
    return cardinality(tag, tag, 0, limit - 1, node_group, weight=weight)


def same_rack_group(
    subject_tags: Iterable[str], group_size: int, *, weight: float = 1.0
) -> PlacementConstraint:
    """All ``group_size`` containers matching the tag conjunction on one rack.

    Encoded as: each member must see all ``group_size - 1`` other members on
    its rack (``cmin = group_size - 1``).
    """
    if group_size < 2:
        raise ValueError("a same-rack group needs at least two containers")
    expr = TagExpression(subject_tags)
    return PlacementConstraint(
        subject=expr,
        tag_constraints=(TagConstraint(expr, group_size - 1, UNBOUNDED),),
        node_group="rack",
        weight=weight,
    )
