"""HBase LRA template (paper §7.1).

One instance = N region servers (workers) plus a Master, a Thrift server and
a Secondary master.  Default constraints match the paper's experimental
setup:

* intra-application rack affinity: all region servers of the instance on the
  same rack (minimise network traffic);
* inter-application node cardinality: no more than ``max_rs_per_node``
  region servers — of *any* HBase instance — on one node (minimise
  interference);
* node affinity between Master and Thrift server;
* node anti-affinity between Master and Secondary.
"""

from __future__ import annotations

from ..cluster.resources import Resource
from ..core.constraints import PlacementConstraint, affinity, anti_affinity
from ..core.requests import ContainerRequest, LRARequest
from ..tags import app_id_tag
from .common import max_collocated, same_rack_group, worker_containers

__all__ = ["hbase_instance", "HB_TAG", "HB_RS", "HB_MASTER", "HB_THRIFT", "HB_SECONDARY"]

HB_TAG = "hb"
HB_RS = "hb_rs"
HB_MASTER = "hb_m"
HB_THRIFT = "hb_th"
HB_SECONDARY = "hb_sec"

#: Paper container sizes: <2 GB, 1 CPU> workers, <1 GB, 1 CPU> the rest.
WORKER_RESOURCE = Resource(2048, 1)
AUX_RESOURCE = Resource(1024, 1)


def hbase_instance(
    app_id: str,
    *,
    region_servers: int = 10,
    max_rs_per_node: int = 2,
    rack_affinity: bool = True,
    with_aux: bool = True,
    constraints_enabled: bool = True,
    queue: str = "default",
) -> LRARequest:
    """Build an HBase LRA request.

    ``constraints_enabled=False`` produces the *no-constraints* deployment
    used as a baseline in §2.2.
    """
    containers: list[ContainerRequest] = worker_containers(
        app_id, HB_RS, HB_TAG, region_servers, WORKER_RESOURCE
    )
    if with_aux:
        for role in (HB_MASTER, HB_THRIFT, HB_SECONDARY):
            containers.append(
                ContainerRequest(
                    f"{app_id}/{role}", AUX_RESOURCE, frozenset({HB_TAG, role})
                )
            )

    constraints: list[PlacementConstraint] = []
    if constraints_enabled:
        app_tag = app_id_tag(app_id)
        if rack_affinity and region_servers >= 2:
            constraints.append(
                same_rack_group((app_tag, HB_RS), region_servers)
            )
        constraints.append(max_collocated(HB_RS, max_rs_per_node))
        if with_aux:
            constraints.append(
                affinity((app_tag, HB_MASTER), (app_tag, HB_THRIFT), "node")
            )
            constraints.append(
                anti_affinity((app_tag, HB_MASTER), (app_tag, HB_SECONDARY), "node")
            )
    return LRARequest(app_id, containers, constraints, queue=queue)
