"""Storm + Memcached templates for the §2.2 affinity study.

The paper deploys a Storm topology (five supervisors) computing trending
hashtags, joined against user profiles in a single-instance Memcached, and
compares three placements:

* *no-constraints* — whatever the scheduler picks;
* *intra-only* — all Storm containers on the same node;
* *intra-inter* — Storm containers and the Memcached container on the same
  node.
"""

from __future__ import annotations

from ..cluster.resources import Resource
from ..core.constraints import PlacementConstraint, affinity
from ..core.requests import ContainerRequest, LRARequest
from ..tags import app_id_tag
from .common import worker_containers

__all__ = [
    "storm_instance",
    "memcached_instance",
    "STORM_TAG",
    "STORM_SUPERVISOR",
    "MEMCACHED_TAG",
]

STORM_TAG = "storm"
STORM_SUPERVISOR = "storm_sup"
MEMCACHED_TAG = "mem"

SUPERVISOR_RESOURCE = Resource(2048, 1)
MEMCACHED_RESOURCE = Resource(4096, 1)


def storm_instance(
    app_id: str,
    *,
    supervisors: int = 5,
    placement: str = "none",
) -> LRARequest:
    """Build a Storm LRA with one of the §2.2 placement policies:
    ``"none"``, ``"intra"`` (supervisors collocated on one node) or
    ``"intra-inter"`` (additionally node affinity to any Memcached
    container)."""
    if placement not in ("none", "intra", "intra-inter"):
        raise ValueError(f"unknown placement policy {placement!r}")
    containers = worker_containers(
        app_id, STORM_SUPERVISOR, STORM_TAG, supervisors, SUPERVISOR_RESOURCE
    )
    constraints: list[PlacementConstraint] = []
    app_tag = app_id_tag(app_id)
    if placement in ("intra", "intra-inter") and supervisors >= 2:
        # All supervisors of this instance on the same node: each must see
        # every other on its node.
        constraints.append(
            affinity(
                (app_tag, STORM_SUPERVISOR),
                (app_tag, STORM_SUPERVISOR),
                "node",
                min_count=supervisors - 1,
            )
        )
    if placement == "intra-inter":
        # Paper example Caf: each storm container next to >= 1 mem container.
        constraints.append(affinity(STORM_TAG, MEMCACHED_TAG, "node"))
    return LRARequest(app_id, containers, constraints)


def memcached_instance(app_id: str, *, memory_mb: int = 4096) -> LRARequest:
    container = ContainerRequest(
        f"{app_id}/mc", Resource(memory_mb, 1), frozenset({MEMCACHED_TAG})
    )
    return LRARequest(app_id, [container])
