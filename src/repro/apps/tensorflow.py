"""TensorFlow LRA template (paper §7.1).

One instance = 8 workers + 2 parameter servers + 1 chief worker.  Default
constraints: all workers of the instance on the same rack, and no more than
``max_workers_per_node`` TensorFlow workers (across instances) per node.
"""

from __future__ import annotations

from ..cluster.resources import Resource
from ..core.constraints import PlacementConstraint
from ..core.requests import ContainerRequest, LRARequest
from ..tags import app_id_tag
from .common import max_collocated, same_rack_group, worker_containers

__all__ = ["tensorflow_instance", "TF_TAG", "TF_WORKER", "TF_PS", "TF_CHIEF"]

TF_TAG = "tf"
TF_WORKER = "tf_w"
TF_PS = "tf_ps"
TF_CHIEF = "tf_chief"

WORKER_RESOURCE = Resource(2048, 1)
#: Chief workers get <4 GB, 1 CPU> (paper §7.1).
CHIEF_RESOURCE = Resource(4096, 1)
PS_RESOURCE = Resource(1024, 1)


def tensorflow_instance(
    app_id: str,
    *,
    workers: int = 8,
    parameter_servers: int = 2,
    max_workers_per_node: int = 4,
    rack_affinity: bool = True,
    constraints_enabled: bool = True,
    queue: str = "default",
) -> LRARequest:
    containers: list[ContainerRequest] = worker_containers(
        app_id, TF_WORKER, TF_TAG, workers, WORKER_RESOURCE
    )
    containers += worker_containers(
        app_id, TF_PS, TF_TAG, parameter_servers, PS_RESOURCE
    )
    containers.append(
        ContainerRequest(
            f"{app_id}/{TF_CHIEF}", CHIEF_RESOURCE, frozenset({TF_TAG, TF_CHIEF})
        )
    )
    constraints: list[PlacementConstraint] = []
    if constraints_enabled:
        app_tag = app_id_tag(app_id)
        if rack_affinity and workers >= 2:
            constraints.append(same_rack_group((app_tag, TF_WORKER), workers))
        constraints.append(max_collocated(TF_WORKER, max_workers_per_node))
    return LRARequest(app_id, containers, constraints, queue=queue)
