"""Command-line interface: ``python -m repro.cli <command>``.

Eleven commands, each a thin wrapper over the library:

* ``table1`` — print the paper's scheduler capability matrix.
* ``parse``  — validate a constraint written in the paper's notation and
  echo its canonical form.
* ``compare`` — place an HBase population with every scheduler and print a
  violations / fragmentation / latency table.
* ``simulate`` — run a mixed LRA + batch workload through the two-scheduler
  simulation and report placement quality and task latency.
* ``trace-report`` — summarise a trace (JSONL or ``.mtrc``) produced by
  ``MEDEA_TRACE=1`` or ``--trace-out``.
* ``trace-convert`` — translate a trace between the JSONL and columnar
  ``.mtrc`` containers (format chosen by the destination extension).
* ``dashboard`` — aggregate a trace into per-tick time series, replay it
  against its recorded state hashes, judge SLO rules, and render a
  terminal report (optionally ``--html`` / ``--json`` artifacts).  Also
  accepts a streaming ``ROLLUP_*.json`` document and renders from it
  alone.
* ``profile`` — span profile + per-app critical-path breakdown of a
  trace, with collapsed-stack export for flamegraph.pl / speedscope
  (``--memory`` adds ingest peak-memory accounting).
* ``diff`` — four-way differential comparison of two recorded runs
  (traces or rollups): structural first-divergence localization, causal
  placement-flip explanations from decision audits, and noise-thresholded
  statistical deltas; ``--fail-on-divergence`` turns it into a CI gate.
* ``bench-compare`` — gate a ``BENCH_*.json`` run against a committed
  baseline (median/p95 with noise tolerance); exits non-zero on regression.
* ``watch`` — poll a live telemetry endpoint's ``/snapshot`` into a
  refreshing terminal view (retries with capped exponential backoff while
  the endpoint comes up).

Exit codes are uniform across commands (the :data:`EXIT_OK` family):
``0`` success, ``1`` unreadable/invalid input data or a runtime failure,
``2`` usage errors (argparse's convention), ``3`` a CI gate tripped
(``bench-compare`` regression, ``dashboard --fail-on-breach``,
``diff --fail-on-divergence``).

Tracing: set ``MEDEA_TRACE=1`` (optionally ``MEDEA_TRACE_OUT=file.jsonl``
— a ``.mtrc`` extension selects the columnar container) or pass
``--trace-out FILE`` to ``compare``/``simulate`` to record the structured
event stream; a metrics summary is printed after the run.
``MEDEA_TRACE_SAMPLE`` / ``--trace-sample`` attaches the deterministic
sampling policy (e.g. ``"heartbeat=0.01,task=0.1,seed=7"``).

Live plane: ``--serve PORT`` (or ``MEDEA_SERVE=port``) starts the
in-process telemetry endpoint (``/metrics``, ``/healthz``, ``/snapshot``)
for the duration of the run; ``--rollup FILE`` (or ``MEDEA_ROLLUP``)
streams bounded rollup documents to disk; ``--watchdog {warn,abort}`` (or
``MEDEA_WATCHDOG``) turns on the online invariant monitors; ``--log FILE``
(or ``MEDEA_LOG``) writes the structured JSON-lines run log.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

__all__ = [
    "main",
    "build_parser",
    "EXIT_OK",
    "EXIT_DATA_ERROR",
    "EXIT_USAGE",
    "EXIT_GATE",
]

# -- exit-code semantics ------------------------------------------------------
#: Command completed successfully.
EXIT_OK = 0
#: Input data was unreadable/invalid, or the run itself failed.
EXIT_DATA_ERROR = 1
#: Command-line usage error (argparse exits with this itself).
EXIT_USAGE = 2
#: A CI gate tripped: bench-compare regression, dashboard --fail-on-breach,
#: diff --fail-on-divergence.  Distinct from EXIT_DATA_ERROR so CI can tell
#: "the check ran and failed" from "the check could not run".
EXIT_GATE = 3


def _add_live_plane_args(p: argparse.ArgumentParser) -> None:
    """Flags shared by the run commands (``compare`` / ``simulate``)."""
    p.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="serve /metrics, /healthz and /snapshot on this port for the "
             "duration of the run (0 picks an ephemeral port)",
    )
    p.add_argument(
        "--log", metavar="FILE", default=None,
        help="write the structured JSON-lines run log to this file "
             "('-' for stderr)",
    )
    p.add_argument(
        "--rollup", metavar="FILE", default=None,
        help="stream bounded rollup documents (series + span stats + "
             "self-telemetry) to this JSON file, atomically rewritten "
             "during the run",
    )
    p.add_argument(
        "--trace-sample", metavar="SPEC", default=None,
        help="deterministic trace sampling policy, e.g. "
             "'heartbeat=0.01,task=0.1,seed=7' (kept lifecycles stay "
             "complete; protected kinds are never dropped)",
    )


def build_parser() -> argparse.ArgumentParser:
    from .version import get_version

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Medea (EuroSys 2018) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {get_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Table 1 capability matrix")

    p_parse = sub.add_parser("parse", help="validate a paper-notation constraint")
    p_parse.add_argument("constraint", help='e.g. "{storm, {hb & mem, 1, inf}, node}"')

    p_compare = sub.add_parser("compare", help="compare all schedulers on one workload")
    p_compare.add_argument("--nodes", type=int, default=60)
    p_compare.add_argument("--racks", type=int, default=6)
    p_compare.add_argument("--instances", type=int, default=8)
    p_compare.add_argument("--max-rs-per-node", type=int, default=3)
    p_compare.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="record the structured event trace to this JSONL file",
    )
    p_compare.add_argument(
        "--diff", action="store_true",
        help="run every scheduler with decision audits on and print a "
             "pairwise structural/causal diff of each scheduler's "
             "placement stream against the first (MEDEA-ILP)",
    )
    _add_live_plane_args(p_compare)

    p_sim = sub.add_parser("simulate", help="run a mixed-workload simulation")
    p_sim.add_argument("--nodes", type=int, default=40)
    p_sim.add_argument("--horizon", type=float, default=90.0)
    p_sim.add_argument("--lras", type=int, default=3)
    p_sim.add_argument("--tasks", type=int, default=100)
    p_sim.add_argument(
        "--seed", type=int, default=5,
        help="workload-generator seed (default 5); same seed + same knobs "
             "=> byte-identical canonical trace",
    )
    p_sim.add_argument(
        "--scheduler", default="ilp",
        choices=("ilp", "nc", "tp", "serial", "jkube", "jkube++", "unaware"),
        help="LRA scheduler to drive the simulation with (default ilp)",
    )
    p_sim.add_argument(
        "--backend", choices=("object", "array"), default=None,
        help="cluster-state backend (default: MEDEA_STATE_BACKEND or object)",
    )
    p_sim.add_argument(
        "--engine", choices=("periodic", "ondemand"), default=None,
        help="event-engine mode (default periodic); same-seed runs are "
             "decision-equivalent across engines — 'repro diff' verifies it",
    )
    p_sim.add_argument(
        "--audit", action="store_true",
        help="record scheduler decision audits (scheduler.audit events) "
             "so 'repro diff' can explain placement flips causally",
    )
    p_sim.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="record the structured event trace to this JSONL file",
    )
    p_sim.add_argument(
        "--watchdog", choices=("warn", "abort"), default=None,
        help="run online invariant checks every heartbeat; 'abort' exits "
             "non-zero on the first trip",
    )
    _add_live_plane_args(p_sim)

    p_trace = sub.add_parser(
        "trace-report", help="summarise a MEDEA_TRACE trace file"
    )
    p_trace.add_argument("trace_file", help="path to the .jsonl/.mtrc trace")

    p_convert = sub.add_parser(
        "trace-convert",
        help="convert a trace between JSONL and the columnar .mtrc container",
    )
    p_convert.add_argument("source", help="input trace (.jsonl or .mtrc)")
    p_convert.add_argument(
        "destination",
        help="output path; a .mtrc extension writes the columnar "
             "container, anything else writes JSONL",
    )

    p_dash = sub.add_parser(
        "dashboard",
        help="timeline + SLO + replay dashboard for a trace file or a "
             "streaming ROLLUP_*.json document",
    )
    p_dash.add_argument(
        "trace_file", help="path to the .jsonl/.mtrc trace or ROLLUP_*.json"
    )
    p_dash.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the dashboard summary JSON to this file",
    )
    p_dash.add_argument(
        "--html", metavar="FILE", default=None,
        help="write a self-contained HTML report to this file",
    )
    p_dash.add_argument(
        "--slo", metavar="FILE", default=None,
        help="JSON file with SLO rules (default: built-in smoke thresholds)",
    )
    p_dash.add_argument(
        "--tick", type=float, default=None,
        help="timeline bucket width in simulated seconds (default 1.0)",
    )
    p_dash.add_argument(
        "--max-points", type=int, default=None,
        help="max points per series before downsampling (default 512)",
    )
    p_dash.add_argument(
        "--fail-on-breach", action="store_true",
        help="exit non-zero when any SLO rule fails or the replay diverges",
    )

    p_profile = sub.add_parser(
        "profile",
        help="span profile + critical-path breakdown of a JSONL trace",
    )
    p_profile.add_argument("trace_file", help="path to the .jsonl/.mtrc trace")
    p_profile.add_argument(
        "--collapsed", metavar="FILE", default=None,
        help="write collapsed-stack lines (flamegraph.pl / speedscope input)",
    )
    p_profile.add_argument(
        "--memory", action="store_true",
        help="account the ingest's own memory: tracemalloc peak and "
             "process peak RSS, printed after the profile",
    )
    p_profile.add_argument(
        "--weight", choices=("time", "count"), default="time",
        help="collapsed-stack weight: self-time µs (default) or the "
             "deterministic sample count",
    )
    p_profile.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the profile + critical-path summary JSON to this file",
    )

    p_diff = sub.add_parser(
        "diff",
        help="compare two recorded runs: IDENTICAL / EQUIVALENT / "
             "DIVERGED@tick / INCOMPARABLE, with causal explanations",
    )
    p_diff.add_argument("trace_a", help="first run (.jsonl/.mtrc trace or ROLLUP_*.json)")
    p_diff.add_argument("trace_b", help="second run (.jsonl/.mtrc trace or ROLLUP_*.json)")
    p_diff.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the full diff report JSON (sorted keys) to this file",
    )
    p_diff.add_argument(
        "--html", metavar="FILE", default=None,
        help="write a self-contained HTML diff report to this file",
    )
    p_diff.add_argument(
        "--context", type=int, default=None, metavar="N",
        help="structural events of context around the first divergence "
             "(default 5)",
    )
    p_diff.add_argument(
        "--ratio", type=float, default=None,
        help="noise threshold multiplier for wall-clock deltas (default 1.5)",
    )
    p_diff.add_argument(
        "--abs-floor", type=float, default=None, metavar="SECONDS",
        help="absolute slack added to every wall-clock limit (default 0.02s)",
    )
    p_diff.add_argument(
        "--fail-on-divergence", action="store_true",
        help=f"exit {EXIT_GATE} when the verdict is DIVERGED (CI gate); "
             f"INCOMPARABLE always exits {EXIT_DATA_ERROR}",
    )

    p_bench = sub.add_parser(
        "bench-compare",
        help="diff a BENCH_*.json run against a baseline; non-zero on regression",
    )
    p_bench.add_argument("baseline", help="committed BENCH_*.json baseline")
    p_bench.add_argument("current", help="BENCH_*.json from the current run")
    p_bench.add_argument(
        "--ratio", type=float, default=None,
        help="regression threshold multiplier (default 1.5)",
    )
    p_bench.add_argument(
        "--abs-floor", type=float, default=None, metavar="SECONDS",
        help="absolute slack added to every limit (default 0.02s)",
    )
    p_bench.add_argument(
        "--series", action="append", default=None, metavar="NAME",
        help="gate this extra per-benchmark series (repeatable), e.g. "
             "obs_overhead_ratio; defaults to the built-in gated set",
    )

    p_load = sub.add_parser(
        "loadgen",
        help="drive the placement hot path with seeded load; sweep offered "
             "rates into a latency-vs-throughput curve",
    )
    p_load.add_argument(
        "--mode", choices=("open", "closed"), default="open",
        help="open loop (scheduled arrivals, coordinated-omission-free) or "
             "closed loop (fixed workers, CO-corrected); default open",
    )
    p_load.add_argument(
        "--arrival", choices=("poisson", "burst", "uniform"),
        default="poisson", help="arrival process (default poisson)",
    )
    p_load.add_argument(
        "--rate", type=float, default=50.0, metavar="RPS",
        help="offered load for a single-step run (default 50)",
    )
    p_load.add_argument(
        "--sweep", default=None, metavar="R1,R2,...",
        help="comma-separated offered-rate ladder in rps (overrides --rate)",
    )
    p_load.add_argument(
        "--requests", type=int, default=200, metavar="N",
        help="requests per step (default 200)",
    )
    p_load.add_argument(
        "--concurrency", type=int, default=16, metavar="N",
        help="worker pool size / closed-loop client count (default 16)",
    )
    p_load.add_argument("--seed", type=int, default=0,
                        help="arrival-schedule seed (default 0)")
    p_load.add_argument(
        "--nodes", type=int, default=100,
        help="in-process cluster size (default 100)",
    )
    p_load.add_argument("--racks", type=int, default=4,
                        help="in-process rack count (default 4)")
    p_load.add_argument(
        "--scheduler", default="node-candidates",
        choices=("node-candidates", "tag-popularity", "serial",
                 "jkube", "jkube++", "yarn"),
        help="scheduler behind the in-process service "
             "(default node-candidates)",
    )
    p_load.add_argument(
        "--containers", type=int, default=4,
        help="containers per generated LRA request (default 4)",
    )
    p_load.add_argument(
        "--max-pending", type=int, default=128, metavar="N",
        help="admission limit of the in-process service (default 128)",
    )
    p_load.add_argument(
        "--place-delay", type=float, default=0.0, metavar="SECONDS",
        help="inject an artificial delay into the placement critical "
             "section (for validating the bench-compare gate)",
    )
    p_load.add_argument(
        "--target", default=None, metavar="URL",
        help="POST /place against this telemetry endpoint instead of an "
             "in-process service",
    )
    p_load.add_argument(
        "--http", action="store_true",
        help="self-host a telemetry server and drive it over HTTP "
             "POST /place (end-to-end serving path)",
    )
    p_load.add_argument(
        "--virtual", action="store_true",
        help="drive a seeded queueing model on a logical clock instead of "
             "a real scheduler — fully deterministic output",
    )
    p_load.add_argument(
        "--service-time", type=float, default=0.002, metavar="SECONDS",
        help="--virtual mean service time (default 0.002)",
    )
    p_load.add_argument(
        "--servers", type=int, default=1,
        help="--virtual parallel service stations (default 1)",
    )
    p_load.add_argument(
        "--json", dest="json_out", default=None, metavar="FILE",
        help="write the sorted-key loadgen document ('-' for stdout)",
    )
    p_load.add_argument(
        "--html", dest="html_out", default=None, metavar="FILE",
        help="write a latency-vs-throughput HTML report",
    )
    p_load.add_argument(
        "--bench-out", default=None, metavar="FILE",
        help="write a schema-2 BENCH_serve.json for repro bench-compare",
    )

    p_watch = sub.add_parser(
        "watch",
        help="poll a live telemetry endpoint into a refreshing terminal view",
    )
    p_watch.add_argument(
        "target",
        help="port, host:port, or URL of a --serve / MEDEA_SERVE endpoint",
    )
    p_watch.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between polls (default 2)",
    )
    p_watch.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="stop after N frames (default: poll until interrupted)",
    )
    p_watch.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen between polls",
    )
    p_watch.add_argument(
        "--retry-for", type=float, default=10.0, metavar="SECONDS",
        help="keep retrying an unreachable endpoint with capped "
             "exponential backoff for this long before giving up "
             "(default 10; 0 fails on the first refused connection)",
    )
    return parser


def _cmd_table1() -> int:
    from .core.capabilities import render_table1

    print(render_table1())
    return EXIT_OK


def _cmd_parse(text: str) -> int:
    from .core.dsl import ConstraintSyntaxError, format_constraint, parse_constraint

    try:
        constraint = parse_constraint(text)
    except ConstraintSyntaxError as exc:
        print(f"invalid constraint: {exc}", file=sys.stderr)
        return EXIT_DATA_ERROR
    tc = constraint.tag_constraints[0]
    if tc.is_affinity():
        kind = "affinity"
    elif tc.is_anti_affinity():
        kind = "anti-affinity"
    else:
        kind = "cardinality"
    print(format_constraint(constraint))
    print(f"kind: {kind}; scope: {constraint.node_group}")
    return EXIT_OK


def _cmd_compare(
    nodes: int, racks: int, instances: int, max_rs: int,
    diff_pairwise: bool = False,
) -> int:
    from . import (
        ClusterState,
        ConstraintManager,
        ConstraintUnawareScheduler,
        IlpScheduler,
        JKubePlusPlusScheduler,
        JKubeScheduler,
        NodeCandidatesScheduler,
        SerialScheduler,
        TagPopularityScheduler,
        build_cluster,
        evaluate_violations,
    )
    from .obs.metrics import get_metrics
    from .obs.spans import span
    from .reporting import render_table
    from .workloads import hbase_population

    schedulers = [
        IlpScheduler(max_candidate_nodes=min(nodes, 60), time_limit_s=5.0,
                     mip_rel_gap=0.02),
        NodeCandidatesScheduler(),
        TagPopularityScheduler(),
        SerialScheduler(),
        JKubeScheduler(),
        JKubePlusPlusScheduler(),
        ConstraintUnawareScheduler(seed=11),
    ]
    population = hbase_population(instances, max_rs_per_node=max_rs)
    rows = []
    events_by_scheduler: dict[str, list[dict]] = {}
    for scheduler in schedulers:
        if diff_pairwise:
            # Audit every decision so the pairwise diff below can explain
            # placement flips causally, not just localize them.
            scheduler.audit_enabled = True
        topology = build_cluster(nodes, racks=racks, memory_mb=16 * 1024, vcores=8)
        state = ClusterState(topology)
        manager = ConstraintManager(topology)
        run_events: list[dict] = []
        # Timed through the obs layer (not a hand-rolled perf_counter pair)
        # so CLI comparisons land in the same cli_compare_seconds timer and
        # span profile as every other instrumented path.
        with get_metrics().timer("cli_compare_seconds").time(
            scheduler=scheduler.name
        ) as timing, span(f"cli.compare:{scheduler.name}"):
            cycle = 0
            for index in range(0, len(population), 2):
                batch = population[index:index + 2]
                for request in batch:
                    manager.register_application(request)
                result = scheduler.place(batch, state, manager)
                for p in result.placements:
                    state.allocate(
                        p.container_id, p.node_id, p.resource, p.tags, p.app_id
                    )
                if diff_pairwise:
                    run_events.extend(_placement_cycle_events(
                        cycle, batch, result, seq_base=len(run_events)
                    ))
                cycle += 1
        if diff_pairwise:
            run_events.append({
                "kind": "sim.state_hash", "seq": len(run_events),
                "time": float(cycle),
                "data": {"hash": state.fingerprint()},
            })
            events_by_scheduler[scheduler.name] = run_events
        elapsed_ms = timing.elapsed_s * 1000
        report = evaluate_violations(state, manager=manager)
        rows.append([
            scheduler.name,
            f"{report.violating_containers}/{report.subject_containers}",
            100 * state.fragmented_node_fraction(),
            state.memory_utilization_cv(),
            f"{elapsed_ms:.0f}ms",
        ])
    print(render_table(
        ["scheduler", "violations", "frag %", "util CV", "latency"], rows
    ))
    if diff_pairwise:
        _print_pairwise_diffs(schedulers[0].name, events_by_scheduler)
    return EXIT_OK


def _placement_cycle_events(
    cycle: int, batch, result, *, seq_base: int
) -> list[dict]:
    """Synthesize the canonical structural events of one batch-placement
    cycle (the same vocabulary a simulation trace uses), so the diff
    plane can align two schedulers' decision streams.  Scheduler names
    are deliberately left out of the payloads — the diff should localize
    decision differences, not the label."""
    t = float(cycle)
    events: list[dict] = []

    def emit(kind: str, data: dict) -> None:
        events.append({
            "kind": kind, "seq": seq_base + len(events), "time": t,
            "data": data,
        })

    emit("cycle.start", {"batch": sorted(r.app_id for r in batch)})
    if result.audit is not None:
        audit_obj = result.audit.to_dict()
        audit_obj.pop("scheduler", None)
        emit("scheduler.audit", audit_obj)
    by_app: dict[str, list] = {}
    for p in result.placements:
        by_app.setdefault(p.app_id, []).append(p)
    for app_id in sorted(by_app):
        placements = by_app[app_id]
        emit("lra.place", {
            "app_id": app_id,
            "containers": len(placements),
            "placements": sorted(
                [p.container_id, p.node_id] for p in placements
            ),
        })
    for app_id in sorted(result.rejected_apps):
        emit("lra.reject", {"app_id": app_id})
    emit("cycle.end", {
        "placed": sorted(by_app),
        "rejected": sorted(result.rejected_apps),
    })
    return events


def _print_pairwise_diffs(
    reference: str, events_by_scheduler: dict[str, list[dict]]
) -> None:
    from .obs.diff import diff_events

    ref_events = events_by_scheduler[reference]
    print()
    print(f"pairwise placement diff vs {reference}:")
    for name, events in events_by_scheduler.items():
        if name == reference:
            continue
        report = diff_events(
            ref_events, events, label_a=reference, label_b=name
        )
        flips = report.placements.get("flipped", 0)
        print(f"  {name}: {report.headline()} — {report.reason}; "
              f"{flips} placements flipped")
        if report.flips:
            flip = report.flips[0]
            print(f"    first flip: {flip.container_id} "
                  f"({flip.app_id or 'task'}) — {reference}:{flip.node_a} "
                  f"vs {name}:{flip.node_b}")
            for why in flip.explanation[:3]:
                print(f"      - {why}")


def _make_sim_scheduler(name: str, nodes: int):
    """Instantiate the ``--scheduler`` choice for ``repro simulate``.

    The default ILP configuration is byte-for-byte the pre-flag behaviour
    (candidate cap, time limit, MIP gap), so traces recorded before the
    flag existed still reproduce."""
    from . import (
        ConstraintUnawareScheduler,
        IlpScheduler,
        JKubePlusPlusScheduler,
        JKubeScheduler,
        NodeCandidatesScheduler,
        SerialScheduler,
        TagPopularityScheduler,
    )

    if name == "ilp":
        return IlpScheduler(max_candidate_nodes=min(nodes, 60),
                            time_limit_s=5.0, mip_rel_gap=0.02)
    if name == "nc":
        return NodeCandidatesScheduler()
    if name == "tp":
        return TagPopularityScheduler()
    if name == "serial":
        return SerialScheduler()
    if name == "jkube":
        return JKubeScheduler()
    if name == "jkube++":
        return JKubePlusPlusScheduler()
    if name == "unaware":
        return ConstraintUnawareScheduler(seed=11)
    raise ValueError(f"unknown scheduler {name!r}")


def _cmd_simulate(args: argparse.Namespace) -> int:
    from . import build_cluster, evaluate_violations
    from .apps import hbase_instance, tensorflow_instance
    from .obs.stats import BoxStats
    from .obs.watchdog import Watchdog, WatchdogError
    from .sim import ClusterSimulation, SimConfig
    from .workloads import GridMixConfig, generate_tasks

    nodes, horizon = args.nodes, args.horizon
    lras, tasks = args.lras, args.tasks
    topology = build_cluster(nodes, racks=max(2, nodes // 10),
                             memory_mb=16 * 1024, vcores=8)
    watchdog = Watchdog(mode=args.watchdog) if args.watchdog else None
    scheduler = _make_sim_scheduler(args.scheduler, nodes)
    if args.audit:
        scheduler.audit_enabled = True
    sim = ClusterSimulation(
        topology,
        scheduler,
        config=SimConfig(
            scheduling_interval_s=10.0,
            horizon_s=horizon,
            engine=args.engine or "periodic",
            backend=args.backend,
        ),
        watchdog=watchdog,
    )
    for i in range(lras):
        template = hbase_instance if i % 2 == 0 else tensorflow_instance
        sim.submit_lra(template(f"lra-{i}"), at=2.0 + 11.0 * i)
    for arrival, task in generate_tasks(GridMixConfig(seed=args.seed),
                                        count=tasks):
        if arrival < horizon:
            sim.submit_task(task, at=arrival)
    try:
        sim.run(horizon)
    except WatchdogError as exc:
        trip = exc.trip
        print(
            f"simulate: watchdog tripped at t={trip.time}: "
            f"{trip.check}: {trip.summary()}",
            file=sys.stderr,
        )
        return EXIT_DATA_ERROR

    report = evaluate_violations(sim.state, manager=sim.medea.manager)
    print(f"LRAs placed:        {len(sim.lra_latencies())}/{lras}")
    print(f"LRA violations:     {report.violating_containers}/{report.subject_containers}")
    latencies = sim.task_latencies()
    if latencies:
        stats = BoxStats.from_values(latencies)
        print(f"tasks allocated:    {stats.count}")
        print(f"task latency (s):   median {stats.median:.2f}, p99 {stats.p99:.2f}")
    print(f"memory utilisation: {100 * sim.state.cluster_memory_utilization():.1f}%")
    return EXIT_OK


def _cmd_trace_report(trace_file: str) -> int:
    from .obs.report import TraceFileError, render_trace_report

    try:
        print(render_trace_report(trace_file))
    except TraceFileError as exc:
        print(f"trace-report: {exc}", file=sys.stderr)
        return EXIT_DATA_ERROR
    return EXIT_OK


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    import json as _json
    import os as _os
    from time import perf_counter

    from .obs.mtrc import MtrcSink
    from .obs.report import TraceFileError, iter_trace

    if _os.path.abspath(args.source) == _os.path.abspath(args.destination):
        print("trace-convert: source and destination are the same file",
              file=sys.stderr)
        return EXIT_DATA_ERROR
    t0 = perf_counter()
    count = 0
    try:
        reader = iter_trace(args.source)
        if args.destination.endswith(".mtrc"):
            sink = MtrcSink(args.destination)
            try:
                for obj in reader:
                    sink.append_obj(obj)
                    count += 1
            finally:
                sink.close()
        else:
            with open(args.destination, "w", encoding="utf-8") as handle:
                for obj in reader:
                    handle.write(_json.dumps(obj, sort_keys=True) + "\n")
                    count += 1
    except TraceFileError as exc:
        print(f"trace-convert: {exc}", file=sys.stderr)
        return EXIT_DATA_ERROR
    elapsed = perf_counter() - t0
    bytes_in = _os.path.getsize(args.source)
    bytes_out = _os.path.getsize(args.destination)
    ratio = bytes_in / bytes_out if bytes_out else float("inf")
    print(
        f"converted {count} events: {bytes_in} -> {bytes_out} bytes "
        f"({ratio:.1f}x) in {elapsed:.2f}s"
    )
    if reader.truncated:
        print("warning: trailing partial line/chunk ignored (crashed run?)")
    return EXIT_OK


def _load_rollup_doc(path: str):
    """Return the parsed rollup document when ``path`` holds one, else
    ``None`` (raw traces and anything unreadable fall through to the
    trace pipeline, which owns the error messages)."""
    import json as _json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            head = handle.read(1)
            if head != "{":
                return None
            doc = _json.loads(head + handle.read())
    except (OSError, ValueError):
        return None
    from .obs.rollup import is_rollup_doc

    return doc if is_rollup_doc(doc) else None


def _cmd_dashboard(args: argparse.Namespace) -> int:
    import json as _json

    from .obs.report import (
        TraceFileError,
        build_dashboard,
        dashboard_verdict,
        render_dashboard,
        render_dashboard_html,
    )

    rules = None
    if args.slo:
        from .obs.slo import load_slo_rules

        try:
            rules = load_slo_rules(args.slo)
        except (OSError, ValueError) as exc:
            print(f"dashboard: cannot load SLO rules: {exc}", file=sys.stderr)
            return EXIT_DATA_ERROR
    rollup_doc = _load_rollup_doc(args.trace_file)
    if rollup_doc is not None:
        from .obs.rollup import build_dashboard_from_rollup

        summary = build_dashboard_from_rollup(rollup_doc, rules=rules)
    else:
        try:
            summary = build_dashboard(
                args.trace_file,
                tick_s=args.tick,
                max_points=args.max_points,
                rules=rules,
            )
        except TraceFileError as exc:
            print(f"dashboard: {exc}", file=sys.stderr)
            return EXIT_DATA_ERROR
    title = f"Medea run dashboard — {args.trace_file}"
    print(render_dashboard(summary, title=title))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            _json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"summary JSON written to {args.json}")
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_dashboard_html(summary, title=title))
        print(f"HTML report written to {args.html}")
    if args.fail_on_breach:
        breached = dashboard_verdict(summary) == "fail"
        diverged = not summary.get("replay", {}).get("ok", True)
        if breached or diverged:
            reason = "SLO breach" if breached else "replay divergence"
            print(f"dashboard: failing on {reason}", file=sys.stderr)
            return EXIT_GATE
    return EXIT_OK


def _cmd_profile(args: argparse.Namespace) -> int:
    import json as _json

    from .obs.events import EventKind
    from .obs.profile import (
        CriticalPathBuilder,
        ProfileReport,
        render_critical_paths,
        render_profile,
    )
    from .obs.report import TraceFileError, iter_trace
    from .reporting import banner

    if args.memory:
        import tracemalloc

        tracemalloc.start()
    report = ProfileReport()
    path_builder = CriticalPathBuilder()
    try:
        for obj in iter_trace(args.trace_file):
            if obj.get("kind") == EventKind.SPAN:
                report.add(obj)
            else:
                path_builder.feed(obj)
    except TraceFileError as exc:
        print(f"profile: {exc}", file=sys.stderr)
        return EXIT_DATA_ERROR
    paths = path_builder.result()
    memory_note = None
    if args.memory:
        import resource
        import tracemalloc

        _, traced_peak = tracemalloc.get_traced_memory()
        top = tracemalloc.take_snapshot().statistics("lineno")[:3]
        tracemalloc.stop()
        # ru_maxrss is KiB on Linux, bytes on macOS.
        rss_raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        rss_mb = rss_raw / 1024 if sys.platform != "darwin" else rss_raw / 2**20
        memory_note = [
            f"ingest peak (tracemalloc): {traced_peak / 2**20:.1f} MiB; "
            f"process peak RSS: {rss_mb:.1f} MiB"
        ]
        for stat in top:
            frame = stat.traceback[0]
            memory_note.append(
                f"  top alloc: {frame.filename}:{frame.lineno} "
                f"{stat.size / 2**20:.1f} MiB"
            )
    print(banner(f"Span profile — {args.trace_file}"))
    print(render_profile(report))
    print()
    print(banner("Critical paths (per application)"))
    print(render_critical_paths(paths))
    if args.collapsed:
        with open(args.collapsed, "w", encoding="utf-8") as handle:
            handle.write(report.collapsed(weight=args.weight))
        print(f"\ncollapsed stacks ({args.weight}) written to {args.collapsed}")
    if args.json:
        summary = {
            "profile": report.to_obj(),
            "critical_paths": [p.to_obj() for p in paths],
            "wall": {"profile": report.wall_obj()},
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            _json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"profile JSON written to {args.json}")
    if memory_note:
        print()
        for line in memory_note:
            print(line)
    return EXIT_OK


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from .obs import bench

    kwargs = {}
    if args.ratio is not None:
        kwargs["ratio"] = args.ratio
    if args.abs_floor is not None:
        kwargs["abs_floor_s"] = args.abs_floor
    if args.series:
        kwargs["series"] = tuple(bench.DEFAULT_GATED_SERIES) + tuple(args.series)
    try:
        comparison = bench.compare_bench_files(
            args.baseline, args.current, **kwargs
        )
    except (OSError, ValueError) as exc:
        print(f"bench-compare: {exc}", file=sys.stderr)
        return EXIT_DATA_ERROR
    print(bench.render_comparison(comparison))
    return EXIT_OK if comparison.ok else EXIT_GATE


def _cmd_diff(args: argparse.Namespace) -> int:
    import json as _json

    from .obs.diff import (
        VERDICT_INCOMPARABLE,
        diff_traces,
        render_diff,
        render_diff_html,
    )
    from .obs.report import TraceFileError

    kwargs = {}
    if args.context is not None:
        kwargs["context"] = args.context
    if args.ratio is not None:
        kwargs["ratio"] = args.ratio
    if args.abs_floor is not None:
        kwargs["abs_floor_s"] = args.abs_floor
    try:
        report = diff_traces(args.trace_a, args.trace_b, **kwargs)
    except TraceFileError as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return EXIT_DATA_ERROR
    print(render_diff(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            _json.dump(report.to_obj(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"diff JSON written to {args.json}")
    if args.html:
        title = f"repro diff — {args.trace_a} vs {args.trace_b}"
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_diff_html(report, title=title))
        print(f"HTML report written to {args.html}")
    if report.verdict == VERDICT_INCOMPARABLE:
        print(f"diff: runs are incomparable: {report.reason}",
              file=sys.stderr)
        return EXIT_DATA_ERROR
    if args.fail_on_divergence and not report.ok:
        print(f"diff: failing on {report.headline()}", file=sys.stderr)
        return EXIT_GATE
    return EXIT_OK


def _build_placement_service(args: argparse.Namespace):
    """Stand up an in-process PlacementService on a fresh synthetic
    cluster, per the loadgen CLI flags."""
    from . import (
        ClusterState,
        ConstraintManager,
        ConstraintUnawareScheduler,
        JKubePlusPlusScheduler,
        JKubeScheduler,
        NodeCandidatesScheduler,
        SerialScheduler,
        TagPopularityScheduler,
        build_cluster,
    )
    from .core.scheduler import PlacementService

    schedulers = {
        "node-candidates": NodeCandidatesScheduler,
        "tag-popularity": TagPopularityScheduler,
        "serial": SerialScheduler,
        "jkube": JKubeScheduler,
        "jkube++": JKubePlusPlusScheduler,
        "yarn": lambda: ConstraintUnawareScheduler(seed=11),
    }
    scheduler = schedulers[args.scheduler]()
    topology = build_cluster(
        args.nodes, racks=args.racks, memory_mb=16 * 1024, vcores=8
    )
    state = ClusterState(topology)
    return PlacementService(
        state,
        scheduler,
        ConstraintManager(topology),
        max_pending=args.max_pending,
        extra_place_delay_s=args.place_delay,
    )


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .obs.load import (
        HttpTarget,
        InProcessTarget,
        RequestTemplate,
        VirtualTarget,
        render_sweep,
        render_sweep_html,
        run_sweep,
        sweep_to_bench,
        sweep_to_json,
    )

    if args.sweep:
        try:
            rates = [float(r) for r in args.sweep.split(",") if r.strip()]
        except ValueError:
            print(f"loadgen: bad --sweep spec {args.sweep!r}", file=sys.stderr)
            return EXIT_USAGE
        if not rates or any(r <= 0 for r in rates):
            print("loadgen: --sweep needs positive rates", file=sys.stderr)
            return EXIT_USAGE
    else:
        rates = [args.rate]
    if args.rate <= 0:
        print("loadgen: --rate must be > 0", file=sys.stderr)
        return EXIT_USAGE

    self_server = None
    try:
        if args.virtual:
            target = VirtualTarget(
                service_time_s=args.service_time,
                servers=args.servers,
                seed=args.seed,
            )
        elif args.target:
            target = HttpTarget(args.target)
        else:
            service = _build_placement_service(args)
            if args.http:
                from .obs.serve import install as install_server

                self_server = install_server(0)
                self_server.attach_placement(service)
                print(f"loadgen: self-hosting {self_server.url}/place",
                      file=sys.stderr)
                target = HttpTarget(self_server.url)
            else:
                target = InProcessTarget(service)

        template = RequestTemplate(containers=args.containers)
        sweep = run_sweep(
            target,
            template,
            rates=rates,
            requests_per_step=args.requests,
            mode=args.mode,
            arrival=args.arrival,
            concurrency=args.concurrency,
            seed=args.seed,
            progress=lambda line: print(f"loadgen: {line}", file=sys.stderr),
        )
    finally:
        if self_server is not None:
            from .obs.serve import shutdown_server

            shutdown_server()

    document = sweep_to_json(sweep)
    if args.json_out == "-":
        sys.stdout.write(document)
    else:
        print(render_sweep(sweep))
    if args.json_out and args.json_out != "-":
        with open(args.json_out, "w", encoding="utf-8") as fh:
            fh.write(document)
        print(f"loadgen: wrote {args.json_out}", file=sys.stderr)
    if args.html_out:
        with open(args.html_out, "w", encoding="utf-8") as fh:
            fh.write(render_sweep_html(sweep))
        print(f"loadgen: wrote {args.html_out}", file=sys.stderr)
    if args.bench_out:
        bench = sweep_to_bench(sweep)
        with open(args.bench_out, "w", encoding="utf-8") as fh:
            json.dump(bench, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"loadgen: wrote {args.bench_out}", file=sys.stderr)
    return EXIT_OK


def _fetch_snapshot_retrying(target: str, retry_for_s: float):
    """Fetch ``/snapshot``, retrying refused/failed connections with
    capped exponential backoff (0.25s doubling to 4s) until
    ``retry_for_s`` of wall time has elapsed.  A watcher started a moment
    before the run's endpoint binds should wait, not crash."""
    import time as _time
    from urllib.error import URLError

    from .obs.serve import fetch_snapshot

    deadline = _time.monotonic() + max(0.0, retry_for_s)
    delay = 0.25
    while True:
        try:
            return fetch_snapshot(target)
        except (URLError, OSError, ValueError):
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                raise
            _time.sleep(min(delay, remaining))
            delay = min(delay * 2, 4.0)


def _cmd_watch(args: argparse.Namespace) -> int:
    import time as _time
    from urllib.error import URLError

    from .obs.serve import render_watch

    frames = 0
    delay = args.interval
    try:
        while args.count is None or frames < args.count:
            if frames:
                _time.sleep(delay)
            try:
                snapshot = _fetch_snapshot_retrying(args.target, args.retry_for)
            except (URLError, OSError, ValueError) as exc:
                print(f"watch: cannot reach {args.target}: {exc}",
                      file=sys.stderr)
                return EXIT_DATA_ERROR
            if not args.no_clear:
                # Clear screen + home cursor so the frame refreshes in place.
                print("\x1b[2J\x1b[H", end="")
            print(render_watch(snapshot))
            frames += 1
            # An unhealthy endpoint (503) answers with Retry-After; honour
            # it instead of hammering the stalled server at --interval.
            http = (snapshot.get("wall") or {}).get("http") or {}
            retry_after = http.get("retry_after_s")
            if http.get("status") == 503 and retry_after:
                delay = max(args.interval, float(retry_after))
            else:
                delay = args.interval
    except KeyboardInterrupt:
        pass
    return EXIT_OK


def _configure_tracing(args: argparse.Namespace) -> bool:
    """Honour MEDEA_TRACE / MEDEA_TRACE_OUT / MEDEA_TRACE_SAMPLE and the
    --trace-out / --trace-sample flags.  Returns True when an enabled
    tracer is installed for this invocation."""
    import os as _os

    from .obs.sample import parse_sample_spec
    from .obs.trace import ENV_TRACE_SAMPLE, configure, configure_from_env, get_tracer

    configure_from_env()
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        sample = getattr(args, "trace_sample", None) or _os.environ.get(
            ENV_TRACE_SAMPLE
        )
        try:
            configure(jsonl_path=trace_out, sample=parse_sample_spec(sample))
        except ValueError as exc:
            raise SystemExit(f"repro: {exc}")
    elif getattr(args, "trace_sample", None) and not get_tracer().enabled:
        raise SystemExit(
            "repro: --trace-sample needs a trace destination "
            "(--trace-out or MEDEA_TRACE=1)"
        )
    return get_tracer().enabled


def _configure_live_plane(args: argparse.Namespace):
    """Honour --log / MEDEA_LOG and --serve / MEDEA_SERVE for a run command.
    Returns the telemetry server (or ``None``)."""
    from .obs.log import configure_log, configure_log_from_env
    from .obs.serve import install as install_server, serve_from_env

    log_target = getattr(args, "log", None)
    if log_target:
        configure_log(log_target)
    else:
        configure_log_from_env()
    port = getattr(args, "serve", None)
    if port is not None:
        server = install_server(port)
    else:
        server = serve_from_env()
    if server is not None:
        print(f"telemetry endpoint: {server.url}", file=sys.stderr)
    # Rollup after serve so an already-running server shares its live
    # RollupState with the on-disk sink.
    from .obs.rollup import install_rollup, rollup_from_env

    rollup_target = getattr(args, "rollup", None)
    if rollup_target:
        install_rollup(rollup_target)
    else:
        rollup_from_env()
    return server


def _finish_live_plane() -> None:
    from .obs.log import get_run_logger
    from .obs.rollup import shutdown_rollup
    from .obs.serve import shutdown_server

    shutdown_rollup()
    shutdown_server()
    get_run_logger().close()


def _finish_tracing() -> None:
    """Flush the trace file and print the metrics + self-telemetry summary."""
    from .obs.metrics import get_metrics
    from .obs.report import render_metrics, render_timers
    from .obs.trace import get_tracer

    tracer = get_tracer()
    tracer.close()
    snapshot = get_metrics().snapshot()
    print()
    print(render_metrics(snapshot))
    if snapshot["timers"]:
        print(render_timers(snapshot))
    stats = tracer.self_stats()
    line = (
        f"tracer: {stats['events_emitted']} events emitted"
        f" ({stats['events_dropped']} sampled out)"
        f", overhead {stats['overhead_s']:.3f}s"
    )
    if stats.get("sampling"):
        line += f", sampling '{stats['sampling']}'"
    print(line)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "parse":
        return _cmd_parse(args.constraint)
    if args.command == "trace-report":
        return _cmd_trace_report(args.trace_file)
    if args.command == "trace-convert":
        return _cmd_trace_convert(args)
    if args.command == "dashboard":
        return _cmd_dashboard(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "bench-compare":
        return _cmd_bench_compare(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "watch":
        return _cmd_watch(args)
    tracing = _configure_tracing(args)
    _configure_live_plane(args)
    try:
        if args.command == "compare":
            status = _cmd_compare(args.nodes, args.racks, args.instances,
                                  args.max_rs_per_node,
                                  diff_pairwise=args.diff)
        elif args.command == "simulate":
            status = _cmd_simulate(args)
        else:  # pragma: no cover
            raise AssertionError(f"unhandled command {args.command}")
    finally:
        _finish_live_plane()
    if tracing:
        _finish_tracing()
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
