"""Cluster substrate: resources, nodes, topology/node groups, global state."""

from __future__ import annotations

from .node import Allocation, Node
from .resources import Resource
from .state import ClusterState, PlacedContainer
from .topology import ClusterTopology, NodeGroup, build_cluster

__all__ = [
    "Allocation",
    "Node",
    "Resource",
    "ClusterState",
    "PlacedContainer",
    "ClusterTopology",
    "NodeGroup",
    "build_cluster",
]
