"""Incrementally-maintained candidate store over a cluster topology.

Every scheduler in this repo used to enumerate candidate nodes by rescanning
the whole topology per container — O(cluster size) per placement decision.
At the ROADMAP's 10k-node scale that scan, not the solver, dominates cycle
time.  :class:`CandidateIndex` replaces the rescan with three indexes that
are updated on every allocate / release / availability flip through
:meth:`~repro.cluster.node.Node.add_listener` hooks:

* **tag index** — dynamic tag → ``{node index: container count}`` plus a
  static-tag map built once; answers "which nodes currently host tag t"
  (the gamma environment of a constraint) in O(#matches);
* **rack index** — rack → node indices, static;
* **free-capacity buckets** — nodes bucketed by ``free memory // bucket_mb``
  so capacity-feasibility enumeration only touches buckets that can
  possibly fit the demand.

Node identity is a *stable node-index map* (topology insertion order — the
same order every legacy ``for node in state.topology`` scan used), so
index-driven enumeration yields candidates in the exact order the scan did
and scheduler tie-breaking stays byte-for-byte identical.

The index is *exact* only through its final per-node checks: buckets give a
sound over-approximation (a node whose whole bucket lies below the demand
can never fit), and :meth:`fit_node_indices` re-checks availability and the
precise free vector per surviving candidate.  Property tests assert that an
incrementally-maintained index always equals a from-scratch rebuild under
arbitrary allocate / release / failure interleavings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from .resources import Resource
from .node import Allocation, Node
from .topology import ClusterTopology

__all__ = ["CandidateIndex"]


class CandidateIndex:
    """Tag / rack / free-capacity index over the nodes of one topology."""

    def __init__(
        self,
        topology: ClusterTopology,
        *,
        bucket_mb: int = 2048,
        register: bool = True,
    ) -> None:
        if bucket_mb <= 0:
            raise ValueError("bucket_mb must be positive")
        self.topology = topology
        self.bucket_mb = bucket_mb
        self.nodes: list[Node] = list(topology)
        self.node_ids: list[str] = [n.node_id for n in self.nodes]
        self.index_of: dict[str, int] = {
            node_id: i for i, node_id in enumerate(self.node_ids)
        }
        # -- static structure ------------------------------------------------
        racks: dict[str, list[int]] = {}
        static_tags: dict[str, set[int]] = {}
        for i, node in enumerate(self.nodes):
            racks.setdefault(node.rack, []).append(i)
            for tag in node.static_tags:
                static_tags.setdefault(tag, set()).add(i)
        self._rack_nodes: dict[str, tuple[int, ...]] = {
            rack: tuple(members) for rack, members in racks.items()
        }
        self._static_tag_nodes = static_tags
        # -- incremental structure -------------------------------------------
        #: dynamic tag -> {node index: container-contributed count}
        self._tag_nodes: dict[str, dict[int, int]] = {}
        #: free-memory bucket -> node indices; every node is in exactly one
        #: bucket (down nodes included — availability is a separate filter).
        self._buckets: dict[int, set[int]] = {}
        self._bucket_of: list[int] = []
        self._down: set[int] = set()
        for i, node in enumerate(self.nodes):
            bucket = node.free.memory_mb // bucket_mb
            self._bucket_of.append(bucket)
            self._buckets.setdefault(bucket, set()).add(i)
            if not node.available:
                self._down.add(i)
            for allocation in node.iter_allocations():
                self._add_tags(i, allocation.tags)
        # -- signature cache (see signatures()) ------------------------------
        self._sig_cache: dict[tuple[str, ...], list[tuple]] = {}
        self._sig_version = topology.groups_version
        if register:
            for node in self.nodes:
                node.add_listener(self)

    # -- node mutation hooks --------------------------------------------------

    def _node_allocated(self, node: Node, allocation: Allocation) -> None:
        i = self.index_of[node.node_id]
        self._add_tags(i, allocation.tags)
        self._refresh_bucket(i, node)

    def _node_released(self, node: Node, allocation: Allocation) -> None:
        i = self.index_of[node.node_id]
        self._remove_tags(i, allocation.tags)
        self._refresh_bucket(i, node)

    def _node_availability(self, node: Node, up: bool) -> None:
        i = self.index_of[node.node_id]
        if up:
            self._down.discard(i)
        else:
            self._down.add(i)

    def _add_tags(self, i: int, tags: Iterable[str]) -> None:
        for tag in tags:
            per_node = self._tag_nodes.setdefault(tag, {})
            per_node[i] = per_node.get(i, 0) + 1

    def _remove_tags(self, i: int, tags: Iterable[str]) -> None:
        for tag in tags:
            per_node = self._tag_nodes.get(tag)
            if per_node is None:
                continue
            count = per_node.get(i, 0) - 1
            if count > 0:
                per_node[i] = count
            else:
                per_node.pop(i, None)
                if not per_node:
                    del self._tag_nodes[tag]

    def _refresh_bucket(self, i: int, node: Node) -> None:
        bucket = node.free.memory_mb // self.bucket_mb
        old = self._bucket_of[i]
        if bucket == old:
            return
        members = self._buckets[old]
        members.discard(i)
        if not members:
            del self._buckets[old]
        self._buckets.setdefault(bucket, set()).add(i)
        self._bucket_of[i] = bucket

    # -- queries --------------------------------------------------------------

    def fit_node_indices(self, demand: "Resource") -> list[int]:
        """Indices of available nodes that can fit ``demand``, in topology
        order (ascending index) — the same order a full topology scan with
        ``node.can_fit`` yields, minus the scan."""
        min_bucket = demand.memory_mb // self.bucket_mb
        candidates: list[int] = []
        for bucket, members in self._buckets.items():
            if bucket >= min_bucket:
                candidates.extend(members)
        candidates.sort()
        mem, vc = demand.memory_mb, demand.vcores
        nodes = self.nodes
        out: list[int] = []
        for i in candidates:
            node = nodes[i]
            free = node.free
            if node.available and mem <= free.memory_mb and vc <= free.vcores:
                out.append(i)
        return out

    def fit_node_ids(self, demand: "Resource") -> list[str]:
        """Like :meth:`fit_node_indices` but resolved to node ids."""
        node_ids = self.node_ids
        return [node_ids[i] for i in self.fit_node_indices(demand)]

    def nodes_with_tag(self, tag: str, *, dynamic_only: bool = False) -> set[str]:
        """Ids of nodes currently carrying ``tag``.

        ``dynamic_only`` restricts to container-contributed tags, matching
        :meth:`Node.dynamic_tags` membership; the default also includes
        static machine attributes.
        """
        node_ids = self.node_ids
        out = {node_ids[i] for i in self._tag_nodes.get(tag, ())}
        if not dynamic_only:
            out.update(node_ids[i] for i in self._static_tag_nodes.get(tag, ()))
        return out

    def nodes_with_any_tag(
        self, tags: Iterable[str], *, dynamic_only: bool = False
    ) -> set[str]:
        out: set[str] = set()
        for tag in tags:
            out |= self.nodes_with_tag(tag, dynamic_only=dynamic_only)
        return out

    def tag_count(self, tag: str, node_id: str) -> int:
        """Container-contributed cardinality of ``tag`` on one node."""
        return self._tag_nodes.get(tag, {}).get(self.index_of[node_id], 0)

    def rack_members(self, rack: str) -> tuple[int, ...]:
        return self._rack_nodes.get(rack, ())

    def down_indices(self) -> frozenset[int]:
        return frozenset(self._down)

    def signatures(self, groups: tuple[str, ...]) -> list[tuple]:
        """Per-node *constraint signatures* for a tuple of node groups.

        A node's signature is the tuple, per group, of the indices of that
        group's node sets containing it.  Constraint-violation deltas
        depend on a node only through this signature (the γ counters are
        per (group, set)), so schedulers evaluate the delta once per
        signature class instead of once per node.  Cached per group tuple;
        invalidated when new groups are registered on the topology.
        """
        version = self.topology.groups_version
        if self._sig_version != version:
            self._sig_cache.clear()
            self._sig_version = version
        sigs = self._sig_cache.get(groups)
        if sigs is None:
            topology = self.topology
            sigs = [
                tuple(
                    tuple(topology.set_indices_for_node(group, node_id))
                    for group in groups
                )
                for node_id in self.node_ids
            ]
            self._sig_cache[groups] = sigs
        return sigs

    # -- verification helpers -------------------------------------------------

    def snapshot(self) -> dict:
        """Canonical, comparison-friendly view of the incremental state.

        Property tests assert ``incremental.snapshot() ==
        CandidateIndex.rebuilt(topology).snapshot()`` after arbitrary
        mutation interleavings.
        """
        return {
            "bucket_mb": self.bucket_mb,
            "tags": {
                tag: dict(sorted(per_node.items()))
                for tag, per_node in sorted(self._tag_nodes.items())
            },
            "buckets": {
                bucket: sorted(members)
                for bucket, members in sorted(self._buckets.items())
                if members
            },
            "bucket_of": list(self._bucket_of),
            "down": sorted(self._down),
        }

    @classmethod
    def rebuilt(
        cls, topology: ClusterTopology, *, bucket_mb: int = 2048
    ) -> "CandidateIndex":
        """A from-scratch index over the topology's *current* state, not
        registered for updates — the ground truth incremental maintenance
        is checked against."""
        return cls(topology, bucket_mb=bucket_mb, register=False)
