"""Cluster node model.

A node has a resource capacity, a set of *static* attributes exposed as tags
(e.g. ``gpu``, mirroring §4.1's note that static machine attributes are a
special case of the tag model), and a dynamic tag multiset fed by the
containers currently allocated on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..tags import TagMultiset
from .resources import Resource

__all__ = ["Node", "Allocation"]


@dataclass(frozen=True, slots=True)
class Allocation:
    """A container currently occupying resources on a node."""

    container_id: str
    resource: Resource
    tags: frozenset[str]
    app_id: str
    long_running: bool = True


class Node:
    """A single cluster machine.

    Mutation happens only through :meth:`allocate` / :meth:`release` so the
    free-resource vector and the dynamic tag multiset can never drift apart.
    """

    __slots__ = ("node_id", "rack", "capacity", "static_tags", "_free",
                 "_allocations", "_dynamic_tags", "_available", "_listeners",
                 "_alloc_hooks", "_release_hooks", "_avail_hooks")

    def __init__(
        self,
        node_id: str,
        capacity: Resource,
        rack: str = "rack-0",
        static_tags: Iterable[str] = (),
    ) -> None:
        self.node_id = node_id
        self.rack = rack
        self.capacity = capacity
        self.static_tags = frozenset(static_tags)
        self._free = capacity
        self._allocations: dict[str, Allocation] = {}
        self._dynamic_tags = TagMultiset()
        #: False while the machine is down / being upgraded (failure replay).
        self._available = True
        #: Mutation observers (struct-of-arrays mirror, candidate index).
        #: Notified on every allocate / release / availability flip so
        #: derived structures can never drift, no matter which code path
        #: mutates the node.  Hooks are resolved once at registration to
        #: keep the per-allocation notification cost to a plain call.
        self._listeners: list = []
        self._alloc_hooks: tuple = ()
        self._release_hooks: tuple = ()
        self._avail_hooks: tuple = ()

    # -- mutation observers ---------------------------------------------------

    def add_listener(self, listener) -> None:
        """Register a mutation observer.  A listener may implement any of
        ``_node_allocated(node, allocation)``,
        ``_node_released(node, allocation)`` and
        ``_node_availability(node, up)``; missing hooks are skipped."""
        if listener in self._listeners:
            return
        self._listeners.append(listener)
        alloc = getattr(listener, "_node_allocated", None)
        if alloc is not None:
            self._alloc_hooks = self._alloc_hooks + (alloc,)
        release = getattr(listener, "_node_released", None)
        if release is not None:
            self._release_hooks = self._release_hooks + (release,)
        avail = getattr(listener, "_node_availability", None)
        if avail is not None:
            self._avail_hooks = self._avail_hooks + (avail,)

    @property
    def available(self) -> bool:
        return self._available

    @available.setter
    def available(self, up: bool) -> None:
        up = bool(up)
        if up == self._available:
            return
        self._available = up
        for hook in self._avail_hooks:
            hook(self, up)

    # -- resources ----------------------------------------------------------

    @property
    def free(self) -> Resource:
        return self._free

    @property
    def used(self) -> Resource:
        return self.capacity - self._free

    def can_fit(self, demand: Resource) -> bool:
        return self.available and demand.fits(self._free)

    # -- allocation lifecycle ------------------------------------------------

    def allocate(self, allocation: Allocation) -> None:
        if allocation.container_id in self._allocations:
            raise ValueError(f"container {allocation.container_id} already on {self.node_id}")
        if not allocation.resource.fits(self._free):
            raise ValueError(
                f"container {allocation.container_id} ({allocation.resource}) does not fit "
                f"free {self._free} on {self.node_id}"
            )
        self._allocations[allocation.container_id] = allocation
        self._free = self._free - allocation.resource
        self._dynamic_tags.add_all(allocation.tags)
        for hook in self._alloc_hooks:
            hook(self, allocation)

    def release(self, container_id: str) -> Allocation:
        try:
            allocation = self._allocations.pop(container_id)
        except KeyError:
            raise KeyError(f"container {container_id} not on node {self.node_id}") from None
        self._free = self._free + allocation.resource
        self._dynamic_tags.remove_all(allocation.tags)
        for hook in self._release_hooks:
            hook(self, allocation)
        return allocation

    @property
    def allocations(self) -> dict[str, Allocation]:
        return dict(self._allocations)

    def iter_allocations(self) -> Iterable[Allocation]:
        """Live read-only view over the allocations (no copy) — the online
        watchdog re-derives conservation invariants from this every
        heartbeat, so the defensive copy of :attr:`allocations` would be
        pure overhead."""
        return self._allocations.values()

    def container_count(self) -> int:
        return len(self._allocations)

    # -- tags ----------------------------------------------------------------

    def tag_multiset(self) -> TagMultiset:
        """The node tag set 𝒯n with cardinalities γn, including static tags.

        Static tags count once — they describe the machine, not containers.
        """
        tags = self._dynamic_tags.copy()
        for tag in self.static_tags:
            tags.add(tag)
        return tags

    def dynamic_tags(self) -> TagMultiset:
        """Only container-contributed tags (no static attributes)."""
        return self._dynamic_tags

    # -- metrics --------------------------------------------------------------

    def memory_utilization(self) -> float:
        if self.capacity.memory_mb == 0:
            return 0.0
        return 1.0 - self._free.memory_mb / self.capacity.memory_mb

    def is_fragmented(self, threshold: Resource) -> bool:
        """Paper §7.4: a node is fragmented if it has less free than the
        threshold (1 core / 2 GB) *and* is not fully utilised."""
        if self._free.is_zero():
            return False
        return not threshold.fits(self._free)

    def __repr__(self) -> str:
        return f"Node({self.node_id}, free={self._free}, containers={len(self._allocations)})"
