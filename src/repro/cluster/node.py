"""Cluster node model.

A node has a resource capacity, a set of *static* attributes exposed as tags
(e.g. ``gpu``, mirroring §4.1's note that static machine attributes are a
special case of the tag model), and a dynamic tag multiset fed by the
containers currently allocated on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..tags import TagMultiset
from .resources import Resource

__all__ = ["Node", "Allocation"]


@dataclass(frozen=True, slots=True)
class Allocation:
    """A container currently occupying resources on a node."""

    container_id: str
    resource: Resource
    tags: frozenset[str]
    app_id: str
    long_running: bool = True


class Node:
    """A single cluster machine.

    Mutation happens only through :meth:`allocate` / :meth:`release` so the
    free-resource vector and the dynamic tag multiset can never drift apart.
    """

    __slots__ = ("node_id", "rack", "capacity", "static_tags", "_free",
                 "_allocations", "_dynamic_tags", "available")

    def __init__(
        self,
        node_id: str,
        capacity: Resource,
        rack: str = "rack-0",
        static_tags: Iterable[str] = (),
    ) -> None:
        self.node_id = node_id
        self.rack = rack
        self.capacity = capacity
        self.static_tags = frozenset(static_tags)
        self._free = capacity
        self._allocations: dict[str, Allocation] = {}
        self._dynamic_tags = TagMultiset()
        #: False while the machine is down / being upgraded (failure replay).
        self.available = True

    # -- resources ----------------------------------------------------------

    @property
    def free(self) -> Resource:
        return self._free

    @property
    def used(self) -> Resource:
        return self.capacity - self._free

    def can_fit(self, demand: Resource) -> bool:
        return self.available and demand.fits(self._free)

    # -- allocation lifecycle ------------------------------------------------

    def allocate(self, allocation: Allocation) -> None:
        if allocation.container_id in self._allocations:
            raise ValueError(f"container {allocation.container_id} already on {self.node_id}")
        if not allocation.resource.fits(self._free):
            raise ValueError(
                f"container {allocation.container_id} ({allocation.resource}) does not fit "
                f"free {self._free} on {self.node_id}"
            )
        self._allocations[allocation.container_id] = allocation
        self._free = self._free - allocation.resource
        self._dynamic_tags.add_all(allocation.tags)

    def release(self, container_id: str) -> Allocation:
        try:
            allocation = self._allocations.pop(container_id)
        except KeyError:
            raise KeyError(f"container {container_id} not on node {self.node_id}") from None
        self._free = self._free + allocation.resource
        self._dynamic_tags.remove_all(allocation.tags)
        return allocation

    @property
    def allocations(self) -> dict[str, Allocation]:
        return dict(self._allocations)

    def iter_allocations(self) -> Iterable[Allocation]:
        """Live read-only view over the allocations (no copy) — the online
        watchdog re-derives conservation invariants from this every
        heartbeat, so the defensive copy of :attr:`allocations` would be
        pure overhead."""
        return self._allocations.values()

    def container_count(self) -> int:
        return len(self._allocations)

    # -- tags ----------------------------------------------------------------

    def tag_multiset(self) -> TagMultiset:
        """The node tag set 𝒯n with cardinalities γn, including static tags.

        Static tags count once — they describe the machine, not containers.
        """
        tags = self._dynamic_tags.copy()
        for tag in self.static_tags:
            tags.add(tag)
        return tags

    def dynamic_tags(self) -> TagMultiset:
        """Only container-contributed tags (no static attributes)."""
        return self._dynamic_tags

    # -- metrics --------------------------------------------------------------

    def memory_utilization(self) -> float:
        if self.capacity.memory_mb == 0:
            return 0.0
        return 1.0 - self._free.memory_mb / self.capacity.memory_mb

    def is_fragmented(self, threshold: Resource) -> bool:
        """Paper §7.4: a node is fragmented if it has less free than the
        threshold (1 core / 2 GB) *and* is not fully utilised."""
        if self._free.is_zero():
            return False
        return not threshold.fits(self._free)

    def __repr__(self) -> str:
        return f"Node({self.node_id}, free={self._free}, containers={len(self._allocations)})"
