"""Multi-dimensional resource vectors.

YARN containers are sized in memory (MB) and virtual cores.  The paper's ILP
formulation (§5.2, footnote 6) uses a single scalar for simplicity but notes
the model extends to a vector of resources with one equation per resource
type.  We implement the vector form throughout and expose a scalar projection
(:meth:`Resource.scalar`) for components of the formulation, such as the
fragmentation indicator, that the paper defines over a single value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Resource", "ZERO"]


@dataclass(frozen=True, slots=True)
class Resource:
    """An immutable ``<memory MB, vcores>`` resource vector.

    Supports element-wise arithmetic and dominance comparison.  ``a.fits(b)``
    means a container demanding ``a`` can be served from free capacity ``b``.
    """

    memory_mb: int
    vcores: int

    def __post_init__(self) -> None:
        if self.memory_mb < 0 or self.vcores < 0:
            raise ValueError(
                f"resources must be non-negative, got {self.memory_mb=} {self.vcores=}"
            )

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: "Resource") -> "Resource":
        return Resource(self.memory_mb + other.memory_mb, self.vcores + other.vcores)

    def __sub__(self, other: "Resource") -> "Resource":
        """Element-wise subtraction, clamped at zero per dimension.

        Clamping mirrors YARN's ``Resources.subtractNonNegative``: transient
        over-allocation in one dimension must not produce a negative free
        vector that would poison later ``fits`` checks.
        """
        return Resource(
            max(0, self.memory_mb - other.memory_mb),
            max(0, self.vcores - other.vcores),
        )

    def __mul__(self, factor: int | float) -> "Resource":
        if factor < 0:
            raise ValueError("cannot scale a Resource by a negative factor")
        return Resource(int(self.memory_mb * factor), int(self.vcores * factor))

    __rmul__ = __mul__

    # -- comparison ---------------------------------------------------------

    def fits(self, capacity: "Resource") -> bool:
        """True if this demand can be satisfied out of ``capacity``."""
        return self.memory_mb <= capacity.memory_mb and self.vcores <= capacity.vcores

    def dominates(self, other: "Resource") -> bool:
        """True if every dimension of ``self`` is >= the same dimension of ``other``."""
        return other.fits(self)

    def is_zero(self) -> bool:
        return self.memory_mb == 0 and self.vcores == 0

    # -- projections --------------------------------------------------------

    def scalar(self) -> float:
        """Scalar projection used where the ILP needs one value per node.

        Memory is the contended resource in the paper's clusters (cluster
        utilisation is always quoted as *memory* utilisation, e.g. §7.4), so
        the projection is memory in MB.
        """
        return float(self.memory_mb)

    def dominant_share(self, total: "Resource") -> float:
        """Dominant resource share of this demand relative to ``total``.

        Used by the fair scheduler for DRF-style ordering.  A zero ``total``
        dimension contributes no share.
        """
        shares = []
        if total.memory_mb > 0:
            shares.append(self.memory_mb / total.memory_mb)
        if total.vcores > 0:
            shares.append(self.vcores / total.vcores)
        return max(shares, default=0.0)

    def __iter__(self) -> Iterator[int]:
        yield self.memory_mb
        yield self.vcores

    def __str__(self) -> str:
        return f"<{self.memory_mb}MB, {self.vcores}c>"


ZERO = Resource(0, 0)
