"""Global cluster state: allocations, tag cardinalities, constraint checks.

This is the single source of truth both schedulers read (Fig. 4's *cluster
state* component).  It maintains, incrementally, the per-node-set tag
cardinalities γ𝒮 for every registered node group so that constraint
evaluation inside scheduling loops is O(#groups) instead of O(cluster size).

Two interchangeable state backends share the exact same API:

``object``
    The original dict-of-:class:`Node` representation; every cluster-wide
    metric is a Python loop over the topology.

``array`` (default when numpy is importable)
    Mirrors per-node capacity / free / availability into numpy
    struct-of-arrays (:class:`_StateArrays`), keyed by a stable node-index
    map in topology order, and computes ``total_free`` / utilisation /
    fragmentation / rack statistics vectorised.  The mirror is maintained
    through :meth:`Node.add_listener` hooks, so it stays consistent no
    matter which code path mutates a node.  All integer aggregates are
    exact (int64), so fingerprints and canonical traces are byte-for-byte
    identical to the object backend; only ``memory_utilization_cv`` may
    differ in the last float ulps (different summation order).

Select with ``ClusterState(topology, backend=...)`` or the
``MEDEA_STATE_BACKEND`` environment variable.  Derived metrics are memoised
on a state *version counter* that every allocate / release / availability
flip bumps, so repeated reads within one tick (timeline sink, watchdog,
state-hash event) cost one computation.
"""

from __future__ import annotations

import hashlib
import os
from collections import Counter
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

try:  # numpy backs the "array" backend; without it we degrade to "object".
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from ..tags import TagMultiset

if TYPE_CHECKING:  # import only for annotations: core depends on cluster
    from ..core.constraints import PlacementConstraint
    from .index import CandidateIndex
from .node import Allocation, Node
from .resources import Resource
from .topology import ClusterTopology

__all__ = ["ClusterState", "PlacedContainer", "placement_fingerprint"]


def _resolve_backend(backend: str | None) -> str:
    """Pick the state backend: explicit arg > env > numpy availability."""
    if backend is None:
        backend = os.environ.get("MEDEA_STATE_BACKEND") or "array"
    if backend not in ("object", "array"):
        raise ValueError(
            f"unknown state backend {backend!r} (choose 'object' or 'array')"
        )
    if backend == "array" and _np is None:
        backend = "object"
    return backend


class _StateArrays:
    """Struct-of-arrays mirror of the per-node scalar state.

    One row per node, in topology insertion order (the *stable node-index
    map*); int64 throughout so sums are exact and aggregate metrics match
    the object backend bit-for-bit.  Rack membership is pre-encoded into
    integer codes (sorted rack-name order) so per-rack reductions are one
    ``bincount``.
    """

    __slots__ = (
        "index_of", "node_ids", "cap_mem", "cap_vc", "free_mem", "free_vc",
        "avail", "rack_names", "rack_codes", "rack_cap_mem", "total_cap_mem",
    )

    def __init__(self, topology: ClusterTopology) -> None:
        nodes = list(topology)
        n = len(nodes)
        self.index_of: dict[str, int] = {
            node.node_id: i for i, node in enumerate(nodes)
        }
        self.node_ids: list[str] = [node.node_id for node in nodes]
        self.cap_mem = _np.fromiter(
            (nd.capacity.memory_mb for nd in nodes), dtype=_np.int64, count=n
        )
        self.cap_vc = _np.fromiter(
            (nd.capacity.vcores for nd in nodes), dtype=_np.int64, count=n
        )
        self.free_mem = _np.fromiter(
            (nd.free.memory_mb for nd in nodes), dtype=_np.int64, count=n
        )
        self.free_vc = _np.fromiter(
            (nd.free.vcores for nd in nodes), dtype=_np.int64, count=n
        )
        self.avail = _np.fromiter(
            (nd.available for nd in nodes), dtype=bool, count=n
        )
        self.rack_names: list[str] = sorted({nd.rack for nd in nodes})
        code_of = {rack: i for i, rack in enumerate(self.rack_names)}
        self.rack_codes = _np.fromiter(
            (code_of[nd.rack] for nd in nodes), dtype=_np.int64, count=n
        )
        # Rack capacity never changes; the bincount weights path yields
        # float64 holding exact integers (values ≪ 2^53).
        self.rack_cap_mem = _np.bincount(
            self.rack_codes, weights=self.cap_mem,
            minlength=len(self.rack_names),
        )
        self.total_cap_mem = int(self.cap_mem.sum())

    def refresh_free(self, node: Node) -> None:
        i = self.index_of[node.node_id]
        free = node.free
        self.free_mem[i] = free.memory_mb
        self.free_vc[i] = free.vcores


def placement_fingerprint(
    placements: Mapping[str, str], down_nodes: Iterable[str] = ()
) -> str:
    """Deterministic digest of a (container → node) map plus down nodes.

    Pure function of its inputs so the trace replayer (which reconstructs
    the placement map from events alone, without a :class:`ClusterState`)
    computes the exact same digest the simulation recorded.
    """
    digest = hashlib.sha256()
    for container_id in sorted(placements):
        digest.update(f"{container_id}@{placements[container_id]}\n".encode())
    for node_id in sorted(set(down_nodes)):
        digest.update(f"down:{node_id}\n".encode())
    return digest.hexdigest()[:16]


class PlacedContainer:
    """Bookkeeping record for a container placed somewhere in the cluster."""

    __slots__ = ("container_id", "node_id", "allocation")

    def __init__(self, container_id: str, node_id: str, allocation: Allocation) -> None:
        self.container_id = container_id
        self.node_id = node_id
        self.allocation = allocation


class ClusterState:
    """Mutable cluster-wide allocation state over a fixed topology."""

    def __init__(
        self,
        topology: ClusterTopology,
        *,
        backend: str | None = None,
        index_bucket_mb: int | None = None,
    ) -> None:
        self.topology = topology
        self._containers: dict[str, PlacedContainer] = {}
        # (group name, node-set index) -> Counter of tags, maintained
        # incrementally on allocate/release.
        self._group_tags: dict[tuple[str, int], Counter[str]] = {}
        self.backend = _resolve_backend(backend)
        if index_bucket_mb is None:
            index_bucket_mb = int(os.environ.get("MEDEA_INDEX_BUCKET_MB", "2048"))
        if index_bucket_mb <= 0:
            raise ValueError("index_bucket_mb must be positive")
        #: Free-memory bucket width used by :meth:`candidate_index`.
        self.index_bucket_mb = index_bucket_mb
        #: Bumped on every node mutation; memoised metrics key off it.
        self._version = 0
        self._memo: dict = {}
        self._memo_version = -1
        self._down: set[str] = {
            n.node_id for n in topology if not n.available
        }
        self._arrays: _StateArrays | None = (
            _StateArrays(topology) if self.backend == "array" else None
        )
        self._candidate_index: CandidateIndex | None = None
        for node in topology:
            node.add_listener(self)

    # -- mutation observation -------------------------------------------------
    #
    # Registered on every node so derived structures (version counter, down
    # set, struct-of-arrays mirror) track *any* mutation path, including
    # tests driving Node.allocate directly.

    def _node_allocated(self, node: Node, allocation: Allocation) -> None:
        self._version += 1
        if self._arrays is not None:
            self._arrays.refresh_free(node)

    def _node_released(self, node: Node, allocation: Allocation) -> None:
        self._version += 1
        if self._arrays is not None:
            self._arrays.refresh_free(node)

    def _node_availability(self, node: Node, up: bool) -> None:
        self._version += 1
        if up:
            self._down.discard(node.node_id)
        else:
            self._down.add(node.node_id)
        if self._arrays is not None:
            self._arrays.avail[self._arrays.index_of[node.node_id]] = up

    @property
    def version(self) -> int:
        """Monotone mutation counter (allocate / release / availability)."""
        return self._version

    @property
    def arrays(self) -> _StateArrays | None:
        """The struct-of-arrays mirror, or ``None`` on the object backend."""
        return self._arrays

    def candidate_index(self) -> CandidateIndex:
        """The incrementally-maintained candidate store over this state.

        Built lazily on first use and kept consistent through node mutation
        hooks from then on; shared by every scheduler reading this state.
        """
        if self._candidate_index is None:
            from .index import CandidateIndex

            self._candidate_index = CandidateIndex(
                self.topology, bucket_mb=self.index_bucket_mb
            )
        return self._candidate_index

    def _memo_table(self) -> dict:
        if self._memo_version != self._version:
            self._memo.clear()
            self._memo_version = self._version
        return self._memo

    # -- allocation lifecycle --------------------------------------------------

    def allocate(
        self,
        container_id: str,
        node_id: str,
        resource: Resource,
        tags: Iterable[str],
        app_id: str,
        *,
        long_running: bool = True,
    ) -> PlacedContainer:
        if container_id in self._containers:
            raise ValueError(f"container {container_id} already allocated")
        node = self.topology.node(node_id)
        allocation = Allocation(
            container_id=container_id,
            resource=resource,
            tags=frozenset(tags),
            app_id=app_id,
            long_running=long_running,
        )
        node.allocate(allocation)
        placed = PlacedContainer(container_id, node_id, allocation)
        self._containers[container_id] = placed
        self._update_group_tags(node_id, allocation.tags, +1)
        return placed

    def release(self, container_id: str) -> PlacedContainer:
        try:
            placed = self._containers.pop(container_id)
        except KeyError:
            raise KeyError(f"container {container_id} is not allocated") from None
        self.topology.node(placed.node_id).release(container_id)
        self._update_group_tags(placed.node_id, placed.allocation.tags, -1)
        return placed

    def release_application(self, app_id: str) -> list[PlacedContainer]:
        """Release every container of an application (LRA teardown)."""
        victims = [c for c in self._containers.values() if c.allocation.app_id == app_id]
        for placed in victims:
            self.release(placed.container_id)
        return victims

    def _update_group_tags(self, node_id: str, tags: frozenset[str], delta: int) -> None:
        for group_name in self.topology.group_names():
            for idx in self.topology.set_indices_for_node(group_name, node_id):
                counter = self._group_tags.setdefault((group_name, idx), Counter())
                for tag in tags:
                    counter[tag] += delta
                    if counter[tag] <= 0:
                        del counter[tag]

    # -- queries -----------------------------------------------------------------

    @property
    def containers(self) -> Mapping[str, PlacedContainer]:
        return self._containers

    def container(self, container_id: str) -> PlacedContainer:
        return self._containers[container_id]

    def containers_of_app(self, app_id: str) -> list[PlacedContainer]:
        return [c for c in self._containers.values() if c.allocation.app_id == app_id]

    def iter_nodes(self) -> Iterator[Node]:
        return iter(self.topology)

    def free_resources(self, node_id: str) -> Resource:
        return self.topology.node(node_id).free

    def total_free(self) -> Resource:
        memo = self._memo_table()
        total = memo.get("total_free")
        if total is None:
            total = memo["total_free"] = self._compute_total_free()
        return total

    def _compute_total_free(self) -> Resource:
        arrays = self._arrays
        if arrays is not None:
            avail = arrays.avail
            return Resource(
                int(arrays.free_mem[avail].sum()),
                int(arrays.free_vc[avail].sum()),
            )
        total_mem = 0
        total_vc = 0
        for node in self.topology:
            if node.available:
                free = node.free
                total_mem += free.memory_mb
                total_vc += free.vcores
        return Resource(total_mem, total_vc)

    # -- tag cardinality ------------------------------------------------------

    def group_tag_count(self, group_name: str, set_index: int, tag: str) -> int:
        """γ𝒮(tag) for the ``set_index``-th node set of ``group_name``."""
        return self._group_tags.get((group_name, set_index), Counter()).get(tag, 0)

    def group_multiset(self, group_name: str, set_index: int) -> TagMultiset:
        multiset = TagMultiset()
        for tag, count in self._group_tags.get((group_name, set_index), Counter()).items():
            multiset.add(tag, count)
        return multiset

    def gamma(
        self,
        group_name: str,
        set_index: int,
        tags: Iterable[str],
        *,
        exclude: Iterable[str] = (),
    ) -> int:
        """γ𝒮 of a tag conjunction, optionally excluding one container's own
        contribution (the ILP's ``tij ≠ tisjs`` exclusion in Eqs. 6–7).

        The conjunction cardinality is the minimum over individual tags (see
        :meth:`TagMultiset.min_cardinality`); ``exclude`` subtracts one
        occurrence of each listed tag, used when the subject container is
        itself already counted in the state.
        """
        counter = self._group_tags.get((group_name, set_index), Counter())
        excl = set(exclude)
        gamma = None
        for tag in tags:
            count = counter.get(tag, 0)
            if tag in excl:
                count -= 1
            gamma = count if gamma is None else min(gamma, count)
        return max(0, gamma if gamma is not None else 0)

    def group_sets_for_node(self, group_name: str, node_id: str) -> list[int]:
        """Indices of ``group_name``'s node sets containing ``node_id``."""
        return self.topology.set_indices_for_node(group_name, node_id)

    # -- constraint evaluation -----------------------------------------------

    def check_placement(
        self,
        constraint: PlacementConstraint,
        node_id: str,
        subject_tags: Iterable[str],
        *,
        placed: bool,
    ) -> tuple[bool, float]:
        """Evaluate ``constraint`` for a subject container on ``node_id``.

        ``placed=True`` means the subject's tags are already counted in the
        state (post-placement audit) and must be excluded from the target
        count; ``placed=False`` means the check is hypothetical (the subject
        is not yet allocated, so counts are already "other containers only").

        Returns ``(satisfied, violation_extent)`` where the extent follows
        Eq. 8, summed across the node sets of the group containing the node
        and across the conjunction's tag constraints.
        """
        subject = frozenset(subject_tags)
        if not constraint.applies_to(subject):
            return True, 0.0
        set_indices = self.group_sets_for_node(constraint.node_group, node_id)
        if not set_indices:
            # Node belongs to no set of the group: the constraint cannot be
            # evaluated there, which we treat as one violation per tag
            # constraint (the subject was required to sit inside the group).
            return False, float(len(constraint.tag_constraints))
        satisfied = True
        extent = 0.0
        for set_index in set_indices:
            for tc in constraint.tag_constraints:
                exclude = tc.c_tag.tags & subject if placed else ()
                gamma = self.gamma(
                    constraint.node_group, set_index, tc.c_tag.tags, exclude=exclude
                )
                if not tc.satisfied_by(gamma):
                    satisfied = False
                    extent += tc.violation_extent(gamma)
        return satisfied, extent

    def placement_delta_violations(
        self,
        constraints: Iterable[PlacementConstraint],
        node_id: str,
        subject_tags: Iterable[str],
    ) -> float:
        """Violation extent a hypothetical placement would incur.

        Scores both directions: (a) constraints whose *subject* matches the
        new container, evaluated on the candidate node; and (b) constraints
        of already-placed subjects whose *target* count the new container
        would change (e.g. placing an ``hb`` container next to a subject
        with ``{hb, 0, 0}`` anti-affinity).  Used by the greedy schedulers
        and J-Kube scoring.
        """
        subject = frozenset(subject_tags)
        total = 0.0
        for constraint in constraints:
            weight = constraint.weight
            satisfied, extent = self.check_placement(
                constraint, node_id, subject, placed=False
            )
            if not satisfied:
                # The Eq.-8 extent is the gradient greedy descent needs: a
                # nearly-satisfied cmin (small extent) must score better than
                # a far-from-satisfied one.
                total += weight * extent
            total += weight * self._reverse_violations(constraint, node_id, subject)
        return total

    def _reverse_violations(
        self,
        constraint: PlacementConstraint,
        node_id: str,
        new_tags: frozenset[str],
    ) -> float:
        """Extra violations placing ``new_tags`` on ``node_id`` inflicts on
        *existing* subjects of ``constraint`` in the affected node sets.

        Computed entirely from the incremental γ counters (O(1) per node
        set): the number of existing subjects in a set is γ𝒮(subject) and
        every such subject observes the same target count — γ𝒮(c_tag),
        minus its own contribution when the subject expression implies the
        target expression.
        """
        relevant = [
            tc for tc in constraint.tag_constraints if tc.c_tag.tags <= new_tags
        ]
        if not relevant:
            return 0.0
        total = 0.0
        for set_index in self.group_sets_for_node(constraint.node_group, node_id):
            n_subjects = self.gamma(
                constraint.node_group, set_index, constraint.subject.tags
            )
            if n_subjects == 0:
                continue
            for tc in relevant:
                gamma_all = self.gamma(
                    constraint.node_group, set_index, tc.c_tag.tags
                )
                # A subject container's tags are a superset of the subject
                # expression; if the target conjunction is contained in the
                # subject expression, every subject also counts toward the
                # target and must exclude itself.
                if tc.c_tag.tags <= constraint.subject.tags:
                    gamma = max(0, gamma_all - 1)
                else:
                    gamma = gamma_all
                delta = tc.violation_extent(gamma + 1) - tc.violation_extent(gamma)
                if delta > 0:
                    total += n_subjects * delta
        return total

    # -- cluster-wide metrics ---------------------------------------------------
    #
    # Every metric is memoised on the state version counter (the timeline
    # sink reads several per heartbeat) and dispatches to a vectorised
    # computation when the struct-of-arrays mirror is live.  The private
    # ``_compute_*`` functions are the uncached paths; regression tests
    # assert cached and direct values agree.

    def fragmented_node_fraction(self, threshold: Resource = Resource(2048, 1)) -> float:
        """Fraction of nodes with less free than ``threshold`` but not fully
        utilised (paper §7.4's fragmentation definition)."""
        memo = self._memo_table()
        key = ("frag", threshold)
        value = memo.get(key)
        if value is None:
            value = memo[key] = self._compute_fragmented_node_fraction(threshold)
        return value

    def _compute_fragmented_node_fraction(self, threshold: Resource) -> float:
        arrays = self._arrays
        if arrays is not None:
            avail = arrays.avail
            total = int(avail.sum())
            if total == 0:
                return 0.0
            free_mem, free_vc = arrays.free_mem, arrays.free_vc
            fully_used = (free_mem == 0) & (free_vc == 0)
            too_small = (free_mem < threshold.memory_mb) | (
                free_vc < threshold.vcores
            )
            fragmented = int((avail & ~fully_used & too_small).sum())
            return fragmented / total
        nodes = [n for n in self.topology if n.available]
        if not nodes:
            return 0.0
        fragmented = sum(1 for n in nodes if n.is_fragmented(threshold))
        return fragmented / len(nodes)

    def memory_utilization_cv(self) -> float:
        """Coefficient of variation of per-node memory utilisation — the
        paper's load-imbalance proxy (Fig. 10b)."""
        memo = self._memo_table()
        value = memo.get("cv")
        if value is None:
            value = memo["cv"] = self._compute_memory_utilization_cv()
        return value

    def _compute_memory_utilization_cv(self) -> float:
        arrays = self._arrays
        if arrays is not None:
            avail = arrays.avail
            cap = arrays.cap_mem[avail]
            if cap.size == 0:
                return 0.0
            free = arrays.free_mem[avail]
            ratio = _np.divide(
                free, cap, out=_np.zeros(cap.shape, dtype=_np.float64),
                where=cap > 0,
            )
            utils = _np.where(cap > 0, 1.0 - ratio, 0.0)
            mean = float(utils.mean())
            if mean == 0:
                return 0.0
            variance = float(((utils - mean) ** 2).mean())
            return (variance ** 0.5) / mean
        utils = [n.memory_utilization() for n in self.topology if n.available]
        if not utils:
            return 0.0
        mean = sum(utils) / len(utils)
        if mean == 0:
            return 0.0
        variance = sum((u - mean) ** 2 for u in utils) / len(utils)
        return (variance ** 0.5) / mean

    def rack_memory_utilization(self) -> dict[str, float]:
        """Per-rack memory utilisation (rack id → used/capacity)."""
        memo = self._memo_table()
        value = memo.get("rack_util")
        if value is None:
            value = memo["rack_util"] = self._compute_rack_memory_utilization()
        return dict(value)

    def _compute_rack_memory_utilization(self) -> dict[str, float]:
        arrays = self._arrays
        if arrays is not None:
            used_weights = _np.where(
                arrays.avail, arrays.cap_mem - arrays.free_mem, 0
            )
            used_by_rack = _np.bincount(
                arrays.rack_codes, weights=used_weights,
                minlength=len(arrays.rack_names),
            )
            return {
                rack: float(used_by_rack[i] / arrays.rack_cap_mem[i])
                for i, rack in enumerate(arrays.rack_names)
                if arrays.rack_cap_mem[i] > 0
            }
        used: dict[str, float] = {}
        capacity: dict[str, float] = {}
        for node in self.topology:
            capacity[node.rack] = capacity.get(node.rack, 0.0) + node.capacity.memory_mb
            if node.available:
                used[node.rack] = used.get(node.rack, 0.0) + node.used.memory_mb
        return {
            rack: used.get(rack, 0.0) / capacity[rack]
            for rack in sorted(capacity)
            if capacity[rack] > 0
        }

    def down_node_ids(self) -> list[str]:
        """Ids of currently unavailable nodes, sorted.

        Served from the incrementally-maintained down set — O(#down), not
        O(cluster size)."""
        return sorted(self._down)

    def fingerprint(self) -> str:
        """Digest of the current placement map and down-node set (see
        :func:`placement_fingerprint`); recorded in ``sim.state_hash``
        events and recomputed by the trace replayer."""
        memo = self._memo_table()
        value = memo.get("fingerprint")
        if value is None:
            value = memo["fingerprint"] = placement_fingerprint(
                {cid: placed.node_id for cid, placed in self._containers.items()},
                self.down_node_ids(),
            )
        return value

    def cluster_memory_utilization(self) -> float:
        memo = self._memo_table()
        value = memo.get("util")
        if value is None:
            value = memo["util"] = self._compute_cluster_memory_utilization()
        return value

    def _compute_cluster_memory_utilization(self) -> float:
        arrays = self._arrays
        if arrays is not None:
            total = arrays.total_cap_mem
            if total == 0:
                return 0.0
            used = total - int(arrays.free_mem[arrays.avail].sum())
            return used / total
        total = self.topology.total_capacity()
        if total.memory_mb == 0:
            return 0.0
        used = total.memory_mb - sum(
            n.free.memory_mb for n in self.topology if n.available
        )
        return used / total.memory_mb
