"""Node groups and cluster topology (paper §4.1).

Cluster operators register *node groups*: logical, possibly overlapping
categories of node sets.  ``node`` (one set per machine) and ``rack`` are
predefined; fault domains, upgrade domains and Microsoft-style *service
units* are registered the same way.  Constraints name a group, never a
concrete machine, which keeps them high-level (requirement R2) and lets
operators hide the physical cluster layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from ..tags import NODE_SCOPE, RACK_SCOPE
from .node import Node
from .resources import Resource

__all__ = ["NodeGroup", "ClusterTopology", "build_cluster"]


@dataclass(frozen=True)
class NodeGroup:
    """A named collection of node *sets* (each set is a tuple of node ids)."""

    name: str
    node_sets: tuple[tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node group name must be non-empty")
        object.__setattr__(
            self, "node_sets", tuple(tuple(ns) for ns in self.node_sets)
        )

    def sets_containing(self, node_id: str) -> list[tuple[str, ...]]:
        return [ns for ns in self.node_sets if node_id in ns]


class ClusterTopology:
    """The machines of a cluster plus all registered node groups."""

    def __init__(self, nodes: Sequence[Node]) -> None:
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        self._nodes: dict[str, Node] = {}
        for node in nodes:
            if node.node_id in self._nodes:
                raise ValueError(f"duplicate node id {node.node_id}")
            self._nodes[node.node_id] = node
        self._groups: dict[str, NodeGroup] = {}
        #: Bumped whenever the set of registered groups changes, so caches
        #: keyed on group structure (constraint signatures) can invalidate.
        self._groups_version = 0
        self._register_predefined_groups()
        # node_id -> group name -> list of set indices, for O(1) lookup of
        # "which node sets of group G contain node n".
        self._membership: dict[str, dict[str, list[int]]] = {}
        self._rebuild_membership()

    # -- construction ---------------------------------------------------------

    def _register_predefined_groups(self) -> None:
        node_sets = tuple((node_id,) for node_id in self._nodes)
        self._groups[NODE_SCOPE] = NodeGroup(NODE_SCOPE, node_sets)
        racks: dict[str, list[str]] = {}
        for node in self._nodes.values():
            racks.setdefault(node.rack, []).append(node.node_id)
        self._groups[RACK_SCOPE] = NodeGroup(
            RACK_SCOPE, tuple(tuple(ids) for ids in racks.values())
        )

    def register_group(self, name: str, node_sets: Iterable[Iterable[str]]) -> NodeGroup:
        """Register an operator-defined node group (fault/upgrade domains,
        service units, ...).  Sets may overlap; every referenced node must
        exist."""
        if name in (NODE_SCOPE, RACK_SCOPE):
            raise ValueError(f"group name {name!r} is predefined")
        sets = tuple(tuple(ns) for ns in node_sets)
        for ns in sets:
            for node_id in ns:
                if node_id not in self._nodes:
                    raise KeyError(f"unknown node {node_id!r} in group {name!r}")
        group = NodeGroup(name, sets)
        self._groups[name] = group
        self._groups_version += 1
        self._rebuild_membership()
        return group

    def _rebuild_membership(self) -> None:
        self._membership = {node_id: {} for node_id in self._nodes}
        for group in self._groups.values():
            for idx, node_set in enumerate(group.node_sets):
                for node_id in node_set:
                    self._membership[node_id].setdefault(group.name, []).append(idx)

    # -- queries ---------------------------------------------------------------

    @property
    def nodes(self) -> Mapping[str, Node]:
        return self._nodes

    def node(self, node_id: str) -> Node:
        return self._nodes[node_id]

    def node_ids(self) -> list[str]:
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def group(self, name: str) -> NodeGroup:
        try:
            return self._groups[name]
        except KeyError:
            raise KeyError(
                f"node group {name!r} is not registered "
                f"(known: {sorted(self._groups)})"
            ) from None

    def has_group(self, name: str) -> bool:
        return name in self._groups

    def group_names(self) -> list[str]:
        return sorted(self._groups)

    @property
    def groups_version(self) -> int:
        """Monotone counter of group registrations (cache invalidation)."""
        return self._groups_version

    def sets_of_group_containing(self, group_name: str, node_id: str) -> list[tuple[str, ...]]:
        """All node sets of ``group_name`` that include ``node_id``."""
        group = self.group(group_name)
        indices = self._membership.get(node_id, {}).get(group_name, [])
        return [group.node_sets[i] for i in indices]

    def set_indices_for_node(self, group_name: str, node_id: str) -> list[int]:
        """Indices of ``group_name``'s node sets containing ``node_id``.

        Backed by a precomputed membership index so constraint evaluation in
        scheduler inner loops stays O(#memberships), not O(cluster size).
        """
        self.group(group_name)  # raise KeyError for unknown groups
        return self._membership.get(node_id, {}).get(group_name, [])

    def total_capacity(self) -> Resource:
        total = Resource(0, 0)
        for node in self._nodes.values():
            total = total + node.capacity
        return total


def build_cluster(
    num_nodes: int,
    *,
    racks: int = 1,
    memory_mb: int = 16 * 1024,
    vcores: int = 8,
    upgrade_domains: int = 0,
    fault_domains: int = 0,
    service_units: int = 0,
    node_prefix: str = "n",
) -> ClusterTopology:
    """Create a synthetic homogeneous cluster.

    Nodes are striped across racks round-robin (matching how the paper's
    simulator groups 500 machines into 10 racks), and optionally partitioned
    into upgrade domains, fault domains and service units as contiguous
    blocks.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if racks <= 0:
        raise ValueError("racks must be positive")
    nodes = [
        Node(
            node_id=f"{node_prefix}{i:05d}",
            capacity=Resource(memory_mb, vcores),
            rack=f"rack-{i % racks}",
        )
        for i in range(num_nodes)
    ]
    topo = ClusterTopology(nodes)

    def contiguous_partition(count: int) -> list[list[str]]:
        ids = [n.node_id for n in nodes]
        size = max(1, num_nodes // count)
        parts = [ids[i * size:(i + 1) * size] for i in range(count)]
        # Fold any remainder into the last partition.
        leftover = ids[count * size:]
        if leftover:
            parts[-1].extend(leftover)
        return [p for p in parts if p]

    if upgrade_domains:
        topo.register_group("upgrade_domain", contiguous_partition(upgrade_domains))
    if fault_domains:
        topo.register_group("fault_domain", contiguous_partition(fault_domains))
    if service_units:
        topo.register_group("service_unit", contiguous_partition(service_units))
    return topo
