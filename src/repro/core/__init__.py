"""Medea's core contribution: constraints, constraint manager, schedulers."""

from __future__ import annotations

from .capabilities import TABLE_1, SchedulerCapabilities, Support, render_table1
from .constraint_manager import ConstraintManager, ConstraintValidationError
from .dsl import ConstraintSyntaxError, format_constraint, parse_constraint
from .constraints import (
    NODE_SCOPE,
    RACK_SCOPE,
    UNBOUNDED,
    CompoundConstraint,
    PlacementConstraint,
    TagConstraint,
    TagExpression,
    affinity,
    anti_affinity,
    cardinality,
)
from .heuristics import (
    ConstraintUnawareScheduler,
    NodeCandidatesScheduler,
    SerialScheduler,
    TagPopularityScheduler,
)
from .ilp import GroundedViolation, IlpFormulation, IlpWeights
from .ilp_scheduler import IlpScheduler
from .jkube import JKubePlusPlusScheduler, JKubeScheduler
from .medea import LraOutcome, MedeaScheduler
from .migration import Migration, MigrationPlan, MigrationPlanner
from .requests import ContainerRequest, LRARequest, TaskRequest, next_app_id
from .scheduler import ContainerPlacement, LRAScheduler, PlacementResult
from ..tags import TagMultiset, app_id_tag

__all__ = [
    "NODE_SCOPE",
    "RACK_SCOPE",
    "UNBOUNDED",
    "TABLE_1",
    "SchedulerCapabilities",
    "Support",
    "render_table1",
    "ConstraintManager",
    "ConstraintSyntaxError",
    "format_constraint",
    "parse_constraint",
    "ConstraintValidationError",
    "CompoundConstraint",
    "PlacementConstraint",
    "TagConstraint",
    "TagExpression",
    "affinity",
    "anti_affinity",
    "cardinality",
    "ConstraintUnawareScheduler",
    "NodeCandidatesScheduler",
    "SerialScheduler",
    "TagPopularityScheduler",
    "GroundedViolation",
    "IlpFormulation",
    "IlpWeights",
    "IlpScheduler",
    "JKubePlusPlusScheduler",
    "JKubeScheduler",
    "LraOutcome",
    "MedeaScheduler",
    "Migration",
    "MigrationPlan",
    "MigrationPlanner",
    "ContainerRequest",
    "LRARequest",
    "TaskRequest",
    "next_app_id",
    "ContainerPlacement",
    "LRAScheduler",
    "PlacementResult",
    "TagMultiset",
    "app_id_tag",
]
