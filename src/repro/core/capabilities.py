"""Scheduler capability matrix (paper Table 1).

Encodes, for each system the paper surveys, its support for requirements
R1–R4: expressive constraints between containers (affinity / anti-affinity /
cardinality, intra / inter), high-level constraints, global objectives, and
low-latency container allocation.

For the systems implemented in this repository (Medea, J-Kube, J-Kube++,
YARN baseline) the entries are also *checked against behaviour* in
``tests/test_capabilities.py`` — e.g. J-Kube's row says "no cardinality" and
the test verifies the J-Kube scheduler indeed ignores cardinality bounds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Support", "SchedulerCapabilities", "TABLE_1", "render_table1"]


class Support(enum.Enum):
    """Table 1 legend."""

    FULL = "✓"
    #: Implicit support via static machine attributes, not explicit
    #: dependencies between containers.
    IMPLICIT = "✧"
    PARTIAL = "✽"
    NONE = "–"


@dataclass(frozen=True)
class SchedulerCapabilities:
    system: str
    affinity: Support
    anti_affinity: Support
    cardinality: Support
    intra: Support
    inter: Support
    high_level: Support
    global_objectives: Support
    low_latency: Support

    def row(self) -> list[str]:
        return [
            self.system,
            self.affinity.value,
            self.anti_affinity.value,
            self.cardinality.value,
            self.intra.value,
            self.inter.value,
            self.high_level.value,
            self.global_objectives.value,
            self.low_latency.value,
        ]


_F, _I, _P, _N = Support.FULL, Support.IMPLICIT, Support.PARTIAL, Support.NONE

#: Table 1, row for row.
TABLE_1: tuple[SchedulerCapabilities, ...] = (
    SchedulerCapabilities("YARN", _I, _N, _N, _I, _N, _N, _N, _F),
    SchedulerCapabilities("Slider", _I, _I, _N, _I, _N, _N, _N, _N),
    SchedulerCapabilities("Borg", _I, _I, _N, _I, _I, _N, _P, _F),
    SchedulerCapabilities("Kubernetes", _F, _F, _N, _F, _F, _F, _P, _F),
    SchedulerCapabilities("Mesos", _I, _N, _N, _I, _N, _N, _N, _N),
    SchedulerCapabilities("Marathon", _F, _F, _F, _F, _N, _N, _N, _N),
    SchedulerCapabilities("Aurora", _I, _F, _F, _F, _N, _N, _N, _N),
    SchedulerCapabilities("TetriSched", _I, _I, _I, _F, _N, _N, _P, _F),
    SchedulerCapabilities("Medea", _F, _F, _F, _F, _F, _F, _F, _F),
)

_HEADERS = [
    "System",
    "affinity",
    "anti-affinity",
    "cardinality",
    "intra",
    "inter",
    "high-level",
    "global obj.",
    "low-latency",
]


def render_table1() -> str:
    """ASCII rendering of Table 1 for the benchmark harness."""
    rows = [_HEADERS] + [caps.row() for caps in TABLE_1]
    widths = [max(len(row[i]) for row in rows) for i in range(len(_HEADERS))]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
        if index == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def capabilities_of(system: str) -> SchedulerCapabilities:
    for caps in TABLE_1:
        if caps.system.lower() == system.lower():
            return caps
    raise KeyError(f"no Table 1 entry for {system!r}")
