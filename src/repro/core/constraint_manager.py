"""Constraint manager (paper §3, §6).

The central component where all constraints live — those submitted by
application owners alongside their LRAs and the cluster-wide ones installed
by operators.  It gives the LRA scheduler a global view of every *active*
constraint, supports add/remove as applications come and go, validates
constraints against the cluster's registered node groups, and implements the
paper's conflict-resolution rule: *operator constraints override application
constraints when more restrictive* (§5.2).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..cluster.topology import ClusterTopology
from .constraints import CompoundConstraint, PlacementConstraint
from .requests import LRARequest

__all__ = ["ConstraintManager", "ConstraintValidationError"]


class ConstraintValidationError(ValueError):
    """Raised when a submitted constraint references an unknown node group."""


class ConstraintManager:
    """Registry of active placement constraints, keyed by owning application
    (or the pseudo-owner ``"operator"`` for cluster-wide constraints)."""

    OPERATOR = "operator"

    def __init__(self, topology: ClusterTopology) -> None:
        self._topology = topology
        self._simple: dict[str, list[PlacementConstraint]] = {}
        self._compound: dict[str, list[CompoundConstraint]] = {}
        # Lazily-built view of the active constraints plus a subject-tag
        # index over it (tag -> positions in the active list); rebuilt on
        # the next query after any registration change.  Violation auditing
        # walks containers × constraints, and the index cuts the inner loop
        # to the constraints whose subject can possibly match.
        self._active_cache: list[PlacementConstraint] | None = None
        self._subject_buckets: dict[str, list[int]] | None = None

    def _invalidate(self) -> None:
        self._active_cache = None
        self._subject_buckets = None

    # -- validation ---------------------------------------------------------

    def validate(self, constraint: PlacementConstraint) -> None:
        if not self._topology.has_group(constraint.node_group):
            raise ConstraintValidationError(
                f"constraint {constraint!r} references unregistered node group "
                f"{constraint.node_group!r} (known: {self._topology.group_names()})"
            )

    def _validate_all(
        self,
        constraints: Iterable[PlacementConstraint],
        compound: Iterable[CompoundConstraint],
    ) -> None:
        for constraint in constraints:
            self.validate(constraint)
        for comp in compound:
            for constraint in comp.all_constraints():
                self.validate(constraint)

    # -- registration -------------------------------------------------------

    def register_application(self, request: LRARequest) -> None:
        """Validate and store an LRA's constraints (step 2 of the LRA
        life-cycle, Fig. 6)."""
        self._validate_all(request.constraints, request.compound_constraints)
        self._simple[request.app_id] = list(request.constraints)
        self._compound[request.app_id] = list(request.compound_constraints)
        self._invalidate()

    def register_operator_constraint(self, constraint: PlacementConstraint) -> None:
        self.validate(constraint)
        if constraint.origin != "operator":
            raise ValueError("operator constraints must carry origin='operator'")
        self._simple.setdefault(self.OPERATOR, []).append(constraint)
        self._invalidate()

    def unregister_application(self, app_id: str) -> None:
        """Drop an application's constraints when it finishes (tags leave the
        node tag sets via container release; constraints leave here)."""
        self._simple.pop(app_id, None)
        self._compound.pop(app_id, None)
        self._invalidate()

    # -- queries --------------------------------------------------------------

    def constraints_of(self, app_id: str) -> list[PlacementConstraint]:
        return list(self._simple.get(app_id, []))

    def compound_of(self, app_id: str) -> list[CompoundConstraint]:
        return list(self._compound.get(app_id, []))

    def operator_constraints(self) -> list[PlacementConstraint]:
        return list(self._simple.get(self.OPERATOR, []))

    def active_constraints(self) -> list[PlacementConstraint]:
        """All simple constraints currently in force, across every registered
        application and the operator, with operator conflict-overrides
        applied (see :meth:`effective_constraints`)."""
        return list(self._active())

    def _active(self) -> list[PlacementConstraint]:
        if self._active_cache is None:
            out: list[PlacementConstraint] = []
            for constraints in self._simple.values():
                out.extend(constraints)
            self._active_cache = self._apply_operator_overrides(out)
        return self._active_cache

    def constraints_applying_to(
        self, tags: frozenset[str]
    ) -> list[PlacementConstraint]:
        """Active constraints whose subject matches ``tags``, in active-list
        order — exactly ``[c for c in self.active_constraints() if
        c.applies_to(tags)]``, served from the subject-tag index.

        Each constraint is bucketed under one representative subject tag
        (plus a catch-all bucket for empty subjects), so the query touches
        only buckets named by the container's own tags; the candidates are
        then filtered with the precise subject match.  Preserving the
        active-list order keeps downstream float accumulation (violation
        extents) byte-identical to the unindexed scan.
        """
        active = self._active()
        if self._subject_buckets is None:
            buckets: dict[str, list[int]] = {}
            for position, constraint in enumerate(active):
                subject_tags = constraint.subject.tags
                representative = min(subject_tags) if subject_tags else ""
                buckets.setdefault(representative, []).append(position)
            self._subject_buckets = buckets
        buckets = self._subject_buckets
        positions: set[int] = set(buckets.get("", ()))
        for tag in tags:
            positions.update(buckets.get(tag, ()))
        return [
            active[position]
            for position in sorted(positions)
            if active[position].applies_to(tags)
        ]

    def active_compound_constraints(self) -> list[CompoundConstraint]:
        out: list[CompoundConstraint] = []
        for compounds in self._compound.values():
            out.extend(compounds)
        return out

    def registered_apps(self) -> list[str]:
        apps = set(self._simple) | set(self._compound)
        apps.discard(self.OPERATOR)
        return sorted(apps)

    def __iter__(self) -> Iterator[PlacementConstraint]:
        return iter(self.active_constraints())

    # -- conflict resolution ---------------------------------------------------

    def _apply_operator_overrides(
        self, constraints: list[PlacementConstraint]
    ) -> list[PlacementConstraint]:
        """Apply the §5.2 rule: an operator constraint overrides application
        constraints on the same (subject, target, group) triple when it is
        *more restrictive* (narrower cardinality interval).

        Constraints that do not clash are all kept; the ILP then minimises
        violations among whatever remains.
        """
        operator = [c for c in constraints if c.origin == self.OPERATOR]
        if not operator:
            return constraints
        result: list[PlacementConstraint] = []
        for constraint in constraints:
            if constraint.origin == self.OPERATOR:
                result.append(constraint)
                continue
            overridden = False
            for op in operator:
                if self._overrides(op, constraint):
                    overridden = True
                    break
            if not overridden:
                result.append(constraint)
        return result

    @staticmethod
    def _overrides(op: PlacementConstraint, app: PlacementConstraint) -> bool:
        """True if operator constraint ``op`` targets the same triple as
        ``app`` and is at least as restrictive on every tag constraint."""
        if op.node_group != app.node_group or op.subject != app.subject:
            return False
        if len(op.tag_constraints) != len(app.tag_constraints):
            return False
        by_tag = {tc.c_tag: tc for tc in op.tag_constraints}
        for tc in app.tag_constraints:
            op_tc = by_tag.get(tc.c_tag)
            if op_tc is None:
                return False
            if not (op_tc.cmin >= tc.cmin and op_tc.cmax <= tc.cmax):
                return False
        return True
