"""Placement constraints with the paper's formal semantics (§4.2).

Medea supports a single generic constraint form::

    C = {subject_tag, tag_constraint, node_group}

where ``subject_tag`` is a tag (or conjunction of tags) identifying the
containers subject to the constraint, ``tag_constraint`` is
``{c_tag, cmin, cmax}`` (with ``c_tag`` again a tag or conjunction), and
``node_group`` names a registered group of node sets.  The semantics: each
container matching ``subject_tag`` must be placed on a node belonging to a
node set 𝒮 of ``node_group`` such that ``cmin <= γ𝒮(c_tag) <= cmax``.

Special cases:

* affinity — ``cmin=1, cmax=∞``
* anti-affinity — ``cmin=0, cmax=0``
* cardinality — any other ``(cmin, cmax)``

``tag_constraint`` may be a boolean expression of tag constraints and whole
constraints may be combined in disjunctive normal form (DNF); negation is not
supported, matching the paper.  Constraints are *soft* by default and carry a
weight expressing relative importance; hard constraints are emulated with
large weights.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..tags import NODE_SCOPE, RACK_SCOPE, TagMultiset, validate_tag

__all__ = [
    "UNBOUNDED",
    "TagExpression",
    "TagConstraint",
    "PlacementConstraint",
    "CompoundConstraint",
    "affinity",
    "anti_affinity",
    "cardinality",
    "NODE_SCOPE",
    "RACK_SCOPE",
]

#: Sentinel for "no maximum cardinality" (the paper's ∞).
UNBOUNDED: int = 2**31 - 1


class TagExpression:
    """A conjunction of tags, e.g. ``appID:0023 ∧ storm``.

    Matches a container whose tag set contains *every* tag of the
    expression.  Immutable and hashable so expressions can key dictionaries
    in the constraint manager.
    """

    __slots__ = ("_tags",)

    def __init__(self, tags: str | Iterable[str]) -> None:
        if isinstance(tags, str):
            tags = [tags]
        tag_list = [validate_tag(t) for t in tags]
        if not tag_list:
            raise ValueError("a tag expression needs at least one tag")
        self._tags = frozenset(tag_list)

    @property
    def tags(self) -> frozenset[str]:
        return self._tags

    def matches(self, container_tags: Iterable[str]) -> bool:
        """True if a container carrying ``container_tags`` satisfies the
        conjunction."""
        tag_set = container_tags if isinstance(container_tags, (set, frozenset)) else set(container_tags)
        return self._tags <= tag_set

    def cardinality_in(self, multiset: TagMultiset) -> int:
        """γ of this conjunction in ``multiset`` (see
        :meth:`TagMultiset.min_cardinality`)."""
        return multiset.min_cardinality(self._tags)

    def __and__(self, other: "TagExpression") -> "TagExpression":
        return TagExpression(self._tags | other._tags)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TagExpression):
            return NotImplemented
        return self._tags == other._tags

    def __hash__(self) -> int:
        return hash(self._tags)

    def __repr__(self) -> str:
        return " ∧ ".join(sorted(self._tags))


def _as_expression(value: str | Iterable[str] | TagExpression) -> TagExpression:
    if isinstance(value, TagExpression):
        return value
    return TagExpression(value)


@dataclass(frozen=True)
class TagConstraint:
    """``{c_tag, cmin, cmax}`` — a cardinality interval on a tag expression."""

    c_tag: TagExpression
    cmin: int
    cmax: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "c_tag", _as_expression(self.c_tag))
        if self.cmin < 0 or self.cmax < 0:
            raise ValueError("cardinalities must be non-negative")
        if self.cmin > self.cmax:
            raise ValueError(f"cmin ({self.cmin}) exceeds cmax ({self.cmax})")

    def is_affinity(self) -> bool:
        return self.cmin >= 1 and self.cmax >= UNBOUNDED

    def is_anti_affinity(self) -> bool:
        return self.cmin == 0 and self.cmax == 0

    def satisfied_by(self, gamma: int) -> bool:
        return self.cmin <= gamma <= self.cmax

    def violation_extent(self, gamma: int) -> float:
        """Relative extent of a violation (paper Eq. 8).

        The paper normalises the min-side slack by ``cmin`` and the max-side
        slack by ``cmax``; a zero bound contributes the raw slack instead
        (the division is only meaningful for non-zero bounds — e.g. an
        anti-affinity constraint with ``cmax=0`` violated by one container
        counts extent 1).
        """
        extent = 0.0
        if gamma < self.cmin:
            slack = self.cmin - gamma
            extent += slack / self.cmin if self.cmin > 0 else float(slack)
        elif gamma > self.cmax:
            slack = gamma - self.cmax
            extent += slack / self.cmax if self.cmax > 0 else float(slack)
        return extent

    def __repr__(self) -> str:
        cmax = "∞" if self.cmax >= UNBOUNDED else str(self.cmax)
        return f"{{{self.c_tag!r}, {self.cmin}, {cmax}}}"


@dataclass(frozen=True)
class PlacementConstraint:
    """A full Medea constraint ``C = {subject_tag, tag_constraint, node_group}``.

    ``tag_constraints`` is a conjunction of :class:`TagConstraint`; a
    disjunction across conjunctions is modelled by
    :class:`CompoundConstraint`.  ``weight`` expresses the soft constraint's
    relative importance (§4.2); ``hard`` marks constraints the scheduler
    should never trade away (emulated in the ILP via a large weight).
    """

    subject: TagExpression
    tag_constraints: tuple[TagConstraint, ...]
    node_group: str
    weight: float = 1.0
    hard: bool = False
    origin: str = "application"

    def __post_init__(self) -> None:
        object.__setattr__(self, "subject", _as_expression(self.subject))
        if isinstance(self.tag_constraints, TagConstraint):
            object.__setattr__(self, "tag_constraints", (self.tag_constraints,))
        else:
            object.__setattr__(self, "tag_constraints", tuple(self.tag_constraints))
        if not self.tag_constraints:
            raise ValueError("a placement constraint needs at least one tag constraint")
        if not self.node_group:
            raise ValueError("node_group must be a non-empty group name")
        if self.weight <= 0 or not math.isfinite(self.weight):
            raise ValueError("weight must be positive and finite")
        if self.origin not in ("application", "operator"):
            raise ValueError(f"unknown constraint origin {self.origin!r}")

    def applies_to(self, container_tags: Iterable[str]) -> bool:
        return self.subject.matches(container_tags)

    def satisfied_by_multiset(self, gamma_source: TagMultiset) -> bool:
        """Evaluate all tag constraints against a node-set tag multiset."""
        return all(
            tc.satisfied_by(tc.c_tag.cardinality_in(gamma_source))
            for tc in self.tag_constraints
        )

    def violation_extent(self, gamma_source: TagMultiset) -> float:
        """Summed Eq.-8 extent over the conjunction's tag constraints."""
        return sum(
            tc.violation_extent(tc.c_tag.cardinality_in(gamma_source))
            for tc in self.tag_constraints
        )

    def is_intra_application(self) -> bool:
        """Heuristic classification: a constraint whose subject and target
        share an ``appID`` tag (or identical tag sets) is intra-application."""
        subject_tags = self.subject.tags
        for tc in self.tag_constraints:
            if not (tc.c_tag.tags & subject_tags):
                return False
        return True

    def __repr__(self) -> str:
        tcs = " ∧ ".join(repr(tc) for tc in self.tag_constraints)
        kind = "hard" if self.hard else f"w={self.weight:g}"
        return f"C{{{self.subject!r}, {tcs}, {self.node_group}}}[{kind}]"


@dataclass(frozen=True)
class CompoundConstraint:
    """A DNF combination of placement constraints (§4.2).

    Satisfied when at least one conjunct — itself a conjunction of
    :class:`PlacementConstraint` — is fully satisfied.  The ILP adds one
    inequality per conjunct plus an "at least one holds" disjunction
    (§5.2, *Compound constraints*); the heuristics check conjuncts in order.
    """

    conjuncts: tuple[tuple[PlacementConstraint, ...], ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        conjs = tuple(tuple(c) for c in self.conjuncts)
        if not conjs or any(not c for c in conjs):
            raise ValueError("DNF must have at least one non-empty conjunct")
        object.__setattr__(self, "conjuncts", conjs)
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    def all_constraints(self) -> tuple[PlacementConstraint, ...]:
        return tuple(itertools.chain.from_iterable(self.conjuncts))

    def subjects(self) -> frozenset[TagExpression]:
        return frozenset(c.subject for c in self.all_constraints())


# -- convenience factories (the three §4.2 special cases) -------------------


def affinity(
    subject: str | Iterable[str] | TagExpression,
    target: str | Iterable[str] | TagExpression,
    node_group: str = NODE_SCOPE,
    *,
    min_count: int = 1,
    weight: float = 1.0,
    hard: bool = False,
    origin: str = "application",
) -> PlacementConstraint:
    """Affinity: each subject container collocated (within ``node_group``)
    with at least ``min_count`` target containers."""
    return PlacementConstraint(
        subject=_as_expression(subject),
        tag_constraints=(TagConstraint(_as_expression(target), min_count, UNBOUNDED),),
        node_group=node_group,
        weight=weight,
        hard=hard,
        origin=origin,
    )


def anti_affinity(
    subject: str | Iterable[str] | TagExpression,
    target: str | Iterable[str] | TagExpression,
    node_group: str = NODE_SCOPE,
    *,
    weight: float = 1.0,
    hard: bool = False,
    origin: str = "application",
) -> PlacementConstraint:
    """Anti-affinity: no target container in the subject's node set."""
    return PlacementConstraint(
        subject=_as_expression(subject),
        tag_constraints=(TagConstraint(_as_expression(target), 0, 0),),
        node_group=node_group,
        weight=weight,
        hard=hard,
        origin=origin,
    )


def cardinality(
    subject: str | Iterable[str] | TagExpression,
    target: str | Iterable[str] | TagExpression,
    cmin: int,
    cmax: int,
    node_group: str = NODE_SCOPE,
    *,
    weight: float = 1.0,
    hard: bool = False,
    origin: str = "application",
) -> PlacementConstraint:
    """Generic cardinality constraint ``cmin <= γ𝒮(target) <= cmax``."""
    return PlacementConstraint(
        subject=_as_expression(subject),
        tag_constraints=(TagConstraint(_as_expression(target), cmin, cmax),),
        node_group=node_group,
        weight=weight,
        hard=hard,
        origin=origin,
    )
