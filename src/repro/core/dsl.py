"""Textual constraint syntax — the paper's notation, parseable.

The paper writes constraints as ``C = {subject_tag, {c_tag, cmin, cmax},
node_group}`` with ``∧`` for tag conjunction and ``∞`` for "no maximum".
This module parses exactly that notation (with ASCII conveniences: ``&``
for ``∧``, ``inf``/``*`` for ``∞``), so configuration files and REPL
sessions can state constraints the way the paper does::

    parse_constraint("{storm, {hb & mem, 1, inf}, node}")
    parse_constraint("{appID:0023 & storm, {appID:0023 & hb, 1, ∞}, node}")
    parse_constraint("{spark, {spark, 3, 10}, rack}")

Multiple tag constraints may be conjoined inside the middle braces with
``and``::

    parse_constraint("{w, {cache, 1, inf} and {noisy, 0, 0}, node}")

:func:`format_constraint` is the inverse; ``parse(format(c)) == c``.
"""

from __future__ import annotations

import re

from .constraints import (
    UNBOUNDED,
    PlacementConstraint,
    TagConstraint,
    TagExpression,
)

__all__ = ["parse_constraint", "format_constraint", "ConstraintSyntaxError"]


class ConstraintSyntaxError(ValueError):
    """Raised when a constraint string does not match the paper syntax."""


_INF_TOKENS = {"∞", "inf", "infinity", "*"}


def _parse_tags(text: str) -> TagExpression:
    parts = [p.strip() for p in re.split(r"∧|&", text)]
    if any(not p for p in parts):
        raise ConstraintSyntaxError(f"empty tag in conjunction: {text!r}")
    try:
        return TagExpression(parts)
    except ValueError as exc:
        raise ConstraintSyntaxError(str(exc)) from exc


def _parse_bound(text: str, *, allow_inf: bool) -> int:
    token = text.strip().lower()
    if token in _INF_TOKENS:
        if not allow_inf:
            raise ConstraintSyntaxError("cmin cannot be infinite")
        return UNBOUNDED
    if not re.fullmatch(r"\d+", token):
        raise ConstraintSyntaxError(f"invalid cardinality bound {text!r}")
    return int(token)


def _parse_tag_constraint(text: str) -> TagConstraint:
    inner = text.strip()
    if not (inner.startswith("{") and inner.endswith("}")):
        raise ConstraintSyntaxError(f"tag constraint must be braced: {text!r}")
    fields = _split_top_level(inner[1:-1])
    if len(fields) != 3:
        raise ConstraintSyntaxError(
            f"tag constraint needs exactly (c_tag, cmin, cmax): {text!r}"
        )
    c_tag = _parse_tags(fields[0])
    cmin = _parse_bound(fields[1], allow_inf=False)
    cmax = _parse_bound(fields[2], allow_inf=True)
    try:
        return TagConstraint(c_tag, cmin, cmax)
    except ValueError as exc:
        raise ConstraintSyntaxError(str(exc)) from exc


def _split_top_level(text: str, separator: str = ",") -> list[str]:
    """Split on ``separator`` at brace depth zero."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                raise ConstraintSyntaxError(f"unbalanced braces in {text!r}")
        if ch == separator and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ConstraintSyntaxError(f"unbalanced braces in {text!r}")
    parts.append("".join(current))
    return parts


def parse_constraint(
    text: str,
    *,
    weight: float = 1.0,
    hard: bool = False,
    origin: str = "application",
) -> PlacementConstraint:
    """Parse ``{subject, {c_tag, cmin, cmax}[ and {...}], node_group}``."""
    stripped = text.strip()
    # Tolerate a leading "C =" / "Caf =" label as the paper writes it.
    stripped = re.sub(r"^\w+\s*=\s*", "", stripped)
    if not (stripped.startswith("{") and stripped.endswith("}")):
        raise ConstraintSyntaxError(f"constraint must be braced: {text!r}")
    fields = _split_top_level(stripped[1:-1])
    if len(fields) < 3:
        raise ConstraintSyntaxError(
            f"constraint needs (subject, tag_constraint, node_group): {text!r}"
        )
    subject = _parse_tags(fields[0])
    node_group = fields[-1].strip()
    if not node_group or "{" in node_group:
        raise ConstraintSyntaxError(f"invalid node group in {text!r}")
    middle = ",".join(fields[1:-1]).strip()
    tag_constraints = tuple(
        _parse_tag_constraint(part)
        for part in re.split(r"\band\b", middle)
    )
    try:
        return PlacementConstraint(
            subject=subject,
            tag_constraints=tag_constraints,
            node_group=node_group,
            weight=weight,
            hard=hard,
            origin=origin,
        )
    except ValueError as exc:
        raise ConstraintSyntaxError(str(exc)) from exc


def format_constraint(constraint: PlacementConstraint) -> str:
    """Render a constraint in the paper's notation."""

    def tags(expr: TagExpression) -> str:
        return " ∧ ".join(sorted(expr.tags))

    def bound(value: int) -> str:
        return "∞" if value >= UNBOUNDED else str(value)

    tcs = " and ".join(
        f"{{{tags(tc.c_tag)}, {tc.cmin}, {bound(tc.cmax)}}}"
        for tc in constraint.tag_constraints
    )
    return f"{{{tags(constraint.subject)}, {tcs}, {constraint.node_group}}}"
