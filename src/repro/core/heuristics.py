"""Heuristic-based LRA schedulers (paper §5.3) and the YARN baseline.

All heuristics share one greedy loop: order the batch's containers, then for
each container pick the feasible node with the smallest *additional*
constraint-violation extent (ties broken toward the node with most free
memory, which nudges load balance).  They differ only in the ordering:

* **Serial** — no ordering; containers are placed in submission order.
* **Medea-TP (tag popularity)** — containers whose tags appear in the most
  constraints go first (they are the hardest to place).
* **Medea-NC (node candidates)** — the container with the fewest nodes on
  which it can be placed without violations goes first; Nc values are
  recalculated lazily, only for containers whose placement opportunities the
  previous placement may have affected.

:class:`ConstraintUnawareScheduler` reproduces the YARN baseline: it ignores
placement constraints entirely and picks nodes the way a heartbeat-driven
capacity scheduler would (effectively arbitrary among nodes with space),
which is why the paper observes constraints being "randomly satisfied" under
YARN.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..cluster.state import ClusterState
from ..obs.audit import (
    PRUNE_CAPACITY,
    PRUNE_CONSTRAINT,
    CandidatePruned,
    ContainerDecision,
    DecisionAudit,
)
from .constraint_manager import ConstraintManager
from .constraints import PlacementConstraint
from .dsl import format_constraint
from .requests import ContainerRequest, LRARequest
from .scheduler import (
    ContainerPlacement,
    LRAScheduler,
    PlacementResult,
    ScratchPlacements,
    feasible_nodes,
)

__all__ = [
    "GreedyScheduler",
    "SerialScheduler",
    "TagPopularityScheduler",
    "NodeCandidatesScheduler",
    "ConstraintUnawareScheduler",
]


def _gather_constraints(
    requests: Sequence[LRARequest], manager: ConstraintManager
) -> list[PlacementConstraint]:
    """Active constraints plus those of the incoming batch, deduplicated.

    Compound (DNF) constraints are approximated by their first conjunct —
    the greedy algorithms have no machinery to defer disjunct choice, which
    is exactly the quality gap the ILP exploits.
    """
    seen: set[PlacementConstraint] = set()
    out: list[PlacementConstraint] = []

    def _add(constraint: PlacementConstraint) -> None:
        if constraint not in seen:
            seen.add(constraint)
            out.append(constraint)

    for constraint in manager.active_constraints():
        _add(constraint)
    for compound in manager.active_compound_constraints():
        for constraint in compound.conjuncts[0]:
            _add(constraint)
    for request in requests:
        for constraint in request.constraints:
            _add(constraint)
        for compound in request.compound_constraints:
            for constraint in compound.conjuncts[0]:
                _add(constraint)
    return out


def relevant_constraints(
    constraints: Sequence[PlacementConstraint], tags: frozenset[str]
) -> list[PlacementConstraint]:
    """Constraints a container with ``tags`` can interact with: those whose
    subject it matches (forward check) or whose target conjunction it
    carries (it changes existing subjects' counts).  Everything else is
    untouched by the placement and can be skipped in scoring loops."""
    return [
        c for c in constraints
        if c.applies_to(tags)
        or any(tc.c_tag.tags <= tags for tc in c.tag_constraints)
    ]


class GreedyScheduler(LRAScheduler):
    """Shared greedy placement loop; subclasses choose the container order.

    ``audit=True`` attaches a :class:`~repro.obs.DecisionAudit` to every
    result: per container, the candidates considered, the nodes pruned by
    capacity, the constraint-violating candidates (with the responsible
    constraint in canonical notation and its Eq.-8 extent), and the chosen
    node's score terms.  Off by default — auditing does extra
    per-constraint scoring work inside the placement loop.
    """

    name = "greedy"

    def __init__(self, *, audit: bool = False) -> None:
        # tags -> relevant constraint subset, valid for one place() call.
        self._relevant_cache: dict[frozenset[str], list[PlacementConstraint]] = {}
        self.audit_enabled = audit
        self._audit: DecisionAudit | None = None

    def _relevant(
        self, constraints: Sequence[PlacementConstraint], tags: frozenset[str]
    ) -> list[PlacementConstraint]:
        cached = self._relevant_cache.get(tags)
        if cached is None:
            cached = relevant_constraints(constraints, tags)
            self._relevant_cache[tags] = cached
        return cached

    def place(
        self,
        requests: Sequence[LRARequest],
        state: ClusterState,
        manager: ConstraintManager,
        *,
        now: float = 0.0,
    ) -> PlacementResult:
        result = PlacementResult()
        if not requests:
            return result
        self._relevant_cache = {}
        self._audit = DecisionAudit(self.name) if self.audit_enabled else None
        constraints = _gather_constraints(requests, manager)
        # (request index, container) work items, in the subclass's order;
        # select_next allows dynamic re-prioritisation between placements
        # (Medea-NC refreshes candidate counts after every placement).
        pending = self.order_containers(requests, constraints, state)
        failed_apps: set[str] = set()
        with ScratchPlacements(state) as scratch:
            while pending:
                req_index, container = pending.pop(self.select_next(pending))
                request = requests[req_index]
                if request.app_id in failed_apps:
                    continue
                decision = (
                    self._audit.new_decision(request.app_id, container.container_id)
                    if self._audit is not None
                    else None
                )
                node_id = self.pick_node(
                    container, constraints, state, decision=decision
                )
                if node_id is None:
                    failed_apps.add(request.app_id)
                    scratch.unplace_app(request.app_id)
                    continue
                scratch.place(container, node_id, request.app_id)
                self.after_placement(container, node_id)
            result.placements = list(scratch.placements)
        result.rejected_apps = sorted(failed_apps)
        result.audit = self._audit
        self._audit = None
        return result

    # -- extension points --------------------------------------------------

    def order_containers(
        self,
        requests: Sequence[LRARequest],
        constraints: Sequence[PlacementConstraint],
        state: ClusterState,
    ) -> list[tuple[int, ContainerRequest]]:
        """Submission order by default (the Serial behaviour)."""
        return [
            (i, container)
            for i, request in enumerate(requests)
            for container in request.containers
        ]

    def select_next(self, pending: list[tuple[int, ContainerRequest]]) -> int:
        """Index of the next work item to place (default: head of the list)."""
        return 0

    def after_placement(self, container: ContainerRequest, node_id: str) -> None:
        """Hook for subclasses that maintain incremental state (Medea-NC)."""

    # -- node selection -------------------------------------------------------

    def pick_node(
        self,
        container: ContainerRequest,
        constraints: Sequence[PlacementConstraint],
        state: ClusterState,
        *,
        decision: ContainerDecision | None = None,
    ) -> str | None:
        """Feasible node minimising additional violation extent; ties broken
        toward the node with the most free memory.

        When ``decision`` is given, every pruned/penalised candidate is
        recorded into it (capacity misfits, and constraint-violating nodes
        attributed to the specific responsible constraints).

        Selection runs through the candidate index (the audited path keeps
        the full scan, since the audit records every pruned node): capacity
        feasibility comes from the free-capacity buckets, and the violation
        delta is evaluated once per *constraint signature class* — nodes
        with identical (group, node-set) memberships necessarily score the
        same delta, because the γ counters the extent reads are per
        (group, set).  Both paths pick the identical node: candidates are
        enumerated in topology order with the same strict-``<`` first-wins
        tie-break.
        """
        relevant = self._relevant(constraints, container.tags)
        if decision is None:
            return self._pick_node_indexed(container, relevant, state)
        best_node: str | None = None
        best_key: tuple[float, float] | None = None
        for node in state.topology:
            if decision is not None:
                decision.considered += 1
            if not node.can_fit(container.resource):
                if decision is not None:
                    decision.pruned.append(
                        CandidatePruned(node.node_id, PRUNE_CAPACITY)
                    )
                continue
            delta = state.placement_delta_violations(
                relevant, node.node_id, container.tags
            )
            if decision is not None:
                if delta > 0:
                    self._audit_violating_candidate(
                        decision, relevant, node.node_id, container, state
                    )
                else:
                    decision.feasible += 1
            key = (delta, -node.free.memory_mb)
            if best_key is None or key < best_key:
                best_key = key
                best_node = node.node_id
        if decision is not None and best_node is not None:
            decision.chosen_node = best_node
            assert best_key is not None
            decision.score_terms = {
                "violation_delta": best_key[0],
                "free_memory_mb": -best_key[1],
            }
        return best_node

    def _pick_node_indexed(
        self,
        container: ContainerRequest,
        relevant: Sequence[PlacementConstraint],
        state: ClusterState,
    ) -> str | None:
        index = state.candidate_index()
        fit = index.fit_node_indices(container.resource)
        if not fit:
            return None
        nodes = index.nodes
        node_ids = index.node_ids
        if not relevant:
            # No constraint interacts with this container: the delta is 0
            # everywhere and the scan reduces to "most free memory wins".
            best_i = fit[0]
            best_mem = nodes[best_i].free.memory_mb
            for i in fit[1:]:
                mem = nodes[i].free.memory_mb
                if mem > best_mem:
                    best_mem = mem
                    best_i = i
            return node_ids[best_i]
        groups = tuple(sorted({c.node_group for c in relevant}))
        signatures = index.signatures(groups)
        deltas: dict[tuple, float] = {}
        best_i: int | None = None
        best_key: tuple[float, int] | None = None
        for i in fit:
            signature = signatures[i]
            delta = deltas.get(signature)
            if delta is None:
                delta = state.placement_delta_violations(
                    relevant, node_ids[i], container.tags
                )
                deltas[signature] = delta
            key = (delta, -nodes[i].free.memory_mb)
            if best_key is None or key < best_key:
                best_key = key
                best_i = i
        assert best_i is not None
        return node_ids[best_i]

    def _audit_violating_candidate(
        self,
        decision: ContainerDecision,
        relevant: Sequence[PlacementConstraint],
        node_id: str,
        container: ContainerRequest,
        state: ClusterState,
    ) -> None:
        """Attribute a positive violation delta to the responsible
        constraints (one audit entry per contributing constraint)."""
        for constraint in relevant:
            extent = state.placement_delta_violations(
                [constraint], node_id, container.tags
            )
            if extent > 0:
                decision.pruned.append(
                    CandidatePruned(
                        node_id,
                        PRUNE_CONSTRAINT,
                        constraint=format_constraint(constraint),
                        extent=extent,
                    )
                )


class SerialScheduler(GreedyScheduler):
    """Greedy with no request ordering (the paper's *Serial* baseline)."""

    name = "Serial"


class TagPopularityScheduler(GreedyScheduler):
    """Medea-TP: prioritise containers whose tags appear in most constraints."""

    name = "MEDEA-TP"

    def order_containers(
        self,
        requests: Sequence[LRARequest],
        constraints: Sequence[PlacementConstraint],
        state: ClusterState,
    ) -> list[tuple[int, ContainerRequest]]:
        popularity: dict[str, int] = {}
        for constraint in constraints:
            for tag in constraint.subject.tags:
                popularity[tag] = popularity.get(tag, 0) + 1
            for tc in constraint.tag_constraints:
                for tag in tc.c_tag.tags:
                    popularity[tag] = popularity.get(tag, 0) + 1

        def score(container: ContainerRequest) -> int:
            return sum(popularity.get(tag, 0) for tag in container.tags)

        items = [
            (i, container)
            for i, request in enumerate(requests)
            for container in request.containers
        ]
        # Stable sort keeps submission order among equally popular containers.
        items.sort(key=lambda item: -score(item[1]))
        return items


class NodeCandidatesScheduler(GreedyScheduler):
    """Medea-NC: place the container with the fewest candidate nodes first.

    ``Nc`` — the number of nodes on which a container can go without adding
    violations — is computed per container up front as an explicit
    candidate-node set, then maintained *incrementally*: a placement on
    node X only changes candidacy on X itself (capacity) and on nodes that
    share a constrained node set with X (its rack, service unit, ...), so
    only those entries are re-evaluated — the paper's "recalculating Nc
    only for containers whose placement opportunities were affected".
    """

    name = "MEDEA-NC"

    def __init__(self, *, audit: bool = False) -> None:
        super().__init__(audit=audit)
        self._pending: list[tuple[int, ContainerRequest]] = []
        self._constraints: Sequence[PlacementConstraint] = ()
        self._state: ClusterState | None = None
        #: container id -> set of violation-free feasible nodes.
        self._candidates: dict[str, set[str]] = {}

    def place(self, requests, state, manager, *, now=0.0):  # type: ignore[override]
        self._state = state
        try:
            return super().place(requests, state, manager, now=now)
        finally:
            self._state = None
            self._pending = []
            self._candidates = {}

    def order_containers(
        self,
        requests: Sequence[LRARequest],
        constraints: Sequence[PlacementConstraint],
        state: ClusterState,
    ) -> list[tuple[int, ContainerRequest]]:
        self._constraints = constraints
        self._pending = [
            (i, container)
            for i, request in enumerate(requests)
            for container in request.containers
        ]
        for _, container in self._pending:
            self._candidates[container.container_id] = self._compute_candidates(
                container
            )
        return list(self._pending)

    def select_next(self, pending: list[tuple[int, ContainerRequest]]) -> int:
        best_index = 0
        best_nc = None
        for index, (_, container) in enumerate(pending):
            nc = len(self._candidates.get(container.container_id, ()))
            if best_nc is None or nc < best_nc:
                best_nc = nc
                best_index = index
        return best_index

    def after_placement(self, container: ContainerRequest, node_id: str) -> None:
        if self._state is None:
            return
        affected = self._affected_nodes(container, node_id)
        placed_tags = container.tags
        for _, other in self._pending:
            if other.container_id == container.container_id:
                continue
            candidates = self._candidates.get(other.container_id)
            if candidates is None:
                continue
            relevant = self._relevant(self._constraints, other.tags)
            tag_related = any(
                (constraint.applies_to(other.tags)
                 and any(tc.c_tag.tags & placed_tags for tc in constraint.tag_constraints))
                or any(tc.c_tag.tags <= other.tags for tc in constraint.tag_constraints)
                for constraint in relevant
            )
            # Capacity on the placed node always needs a re-check; constraint
            # effects only when the containers' tags interact.
            nodes_to_check = affected if tag_related else {node_id}
            for check_node in nodes_to_check:
                if self._is_candidate(other, check_node, relevant):
                    candidates.add(check_node)
                else:
                    candidates.discard(check_node)

    def _affected_nodes(self, container: ContainerRequest, node_id: str) -> set[str]:
        """Nodes whose candidacy the placement may have changed: the node
        itself plus every node sharing a constrained node set with it."""
        assert self._state is not None
        affected = {node_id}
        groups = {
            c.node_group
            for c in self._relevant(self._constraints, container.tags)
        }
        for group_name in groups:
            for node_set in self._state.topology.sets_of_group_containing(
                group_name, node_id
            ):
                affected.update(node_set)
        return affected

    def _is_candidate(
        self,
        container: ContainerRequest,
        node_id: str,
        relevant: Sequence[PlacementConstraint],
    ) -> bool:
        assert self._state is not None
        node = self._state.topology.node(node_id)
        if not node.can_fit(container.resource):
            return False
        return (
            self._state.placement_delta_violations(
                relevant, node_id, container.tags
            )
            == 0
        )

    def _compute_candidates(self, container: ContainerRequest) -> set[str]:
        """Initial violation-free candidate set, via the candidate index:
        capacity feasibility from the free-capacity buckets, and the
        delta==0 test evaluated once per constraint signature class (same
        argument as :meth:`GreedyScheduler._pick_node_indexed`)."""
        assert self._state is not None
        state = self._state
        relevant = self._relevant(self._constraints, container.tags)
        index = state.candidate_index()
        fit = index.fit_node_indices(container.resource)
        node_ids = index.node_ids
        if not relevant:
            return {node_ids[i] for i in fit}
        groups = tuple(sorted({c.node_group for c in relevant}))
        signatures = index.signatures(groups)
        deltas: dict[tuple, float] = {}
        out: set[str] = set()
        for i in fit:
            signature = signatures[i]
            delta = deltas.get(signature)
            if delta is None:
                delta = state.placement_delta_violations(
                    relevant, node_ids[i], container.tags
                )
                deltas[signature] = delta
            if delta == 0:
                out.add(node_ids[i])
        return out


class ConstraintUnawareScheduler(LRAScheduler):
    """The YARN baseline: capacity-aware, constraint-blind placement.

    Nodes are chosen pseudo-randomly among those with room, emulating the
    arbitrariness of heartbeat-driven allocation; the seed makes experiments
    reproducible.
    """

    name = "YARN"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def place(
        self,
        requests: Sequence[LRARequest],
        state: ClusterState,
        manager: ConstraintManager,
        *,
        now: float = 0.0,
    ) -> PlacementResult:
        result = PlacementResult()
        failed: set[str] = set()
        with ScratchPlacements(state) as scratch:
            for request in requests:
                for container in request.containers:
                    if request.app_id in failed:
                        break
                    candidates = feasible_nodes(state, container.resource)
                    if not candidates:
                        failed.add(request.app_id)
                        scratch.unplace_app(request.app_id)
                        break
                    scratch.place(
                        container, self._rng.choice(candidates), request.app_id
                    )
            result.placements = list(scratch.placements)
        result.rejected_apps = sorted(failed)
        return result
