"""The Medea ILP formulation (paper §5.2, Fig. 5).

Given a batch of ``k`` newly submitted LRAs, the live cluster state, and the
set of active placement constraints, this module builds a mixed-integer
program whose solution maximises

    (w1/k)·Σ Si  −  (w2/m)·Σ v_lc  +  (w3/N)·Σ zn          (Eq. 1)

subject to the paper's constraints:

* each container placed at most once (Eq. 2);
* node capacities respected, one inequality per resource dimension (Eq. 3,
  extended to vectors per the paper's footnote 6);
* all-or-nothing placement per LRA (Eq. 4);
* fragmentation indicators ``zn`` = 1 iff a node retains at least ``rmin``
  free after placement (Eq. 5);
* per-constraint cardinality inequalities with violation slacks (Eqs. 6–7)
  and relative violation extents (Eq. 8).

Notes on fidelity:

* The paper states Eq. 1 as a sum of three maximised components while
  simultaneously *minimising* violations with ``w2``; we implement the only
  consistent reading — the violation component enters negatively.
* Eqs. 6–7 in the paper place the big-D activation term inside the sum over
  nodes of 𝒮, which would deactivate the inequality whenever |𝒮| > 1 even
  for subjects placed inside 𝒮.  We implement the evident intent: one
  activation term per (subject, node set), ``D·(1 − Σ_{n∈𝒮} X_sn)``.
* Violation slacks are grounded per (constraint, subject container, tag
  constraint) so the objective can count *containers* in violation — the
  metric Fig. 9 reports.
* The violation component's normalisation deviates from the literal Eq. 1:
  dividing by m (the total number of constraints) dilutes per-violation
  penalties without bound as deployed LRAs accumulate constraints, until
  the fragmentation reward — or the solver's MIP gap — can buy violations
  outright, contradicting the paper's own near-zero-violation results.  We
  average v_lc within each constraint with a capped denominator
  (``IlpFormulation.VIOLATION_DILUTION_CAP``) so one violated container
  always costs at least ``w2 * norm / CAP``.
* The subject container's own tags are excluded from target counts
  (``tij ≠ tisjs``), both for new and already-placed subjects.

Constraints of *already deployed* LRAs are grounded too: their subjects have
fixed placements, so their inequalities are unconditionally active on the
node sets containing them and constrain only the new ``X`` variables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..cluster.resources import Resource
from ..cluster.state import ClusterState
from ..solver import MilpModel, MilpSolution, Sense
from .constraint_manager import ConstraintManager
from .constraints import (
    UNBOUNDED,
    CompoundConstraint,
    PlacementConstraint,
    TagConstraint,
)
from .requests import ContainerRequest, LRARequest
from .scheduler import ContainerPlacement, PlacementResult

__all__ = ["IlpWeights", "IlpFormulation", "GroundedViolation"]

#: Weight multiplier used to emulate hard constraints with soft machinery
#: (paper §4.2: "Medea can emulate hard constraints through the use of
#: weight values").
HARD_CONSTRAINT_FACTOR = 1_000.0


@dataclass(frozen=True)
class IlpWeights:
    """Objective component weights (paper default: w1=1, w2=0.5, w3=0.25).

    ``w4`` activates the optional "minimise number of machines used"
    component mentioned in §2.4/§5.2 as an easy addition; it is off by
    default to match the evaluated configuration.
    """

    w1_placement: float = 1.0
    w2_violations: float = 0.5
    w3_fragmentation: float = 0.25
    w4_machines: float = 0.0


@dataclass
class GroundedViolation:
    """Diagnostics: one violated (constraint, subject, tag-constraint) triple."""

    constraint: PlacementConstraint
    subject_container: str
    extent: float


class IlpFormulation:
    """Builds and decodes the Fig. 5 MILP for one scheduling interval."""

    def __init__(
        self,
        requests: Sequence[LRARequest],
        state: ClusterState,
        manager: ConstraintManager,
        *,
        weights: IlpWeights | None = None,
        rmin: Resource = Resource(2048, 1),
        candidate_nodes: Sequence[str] | None = None,
    ) -> None:
        self.requests = list(requests)
        self.state = state
        self.manager = manager
        self.weights = weights or IlpWeights()
        self.rmin = rmin
        if candidate_nodes is None:
            self.nodes = [
                n.node_id for n in state.topology if n.available and not n.free.is_zero()
            ]
        else:
            self.nodes = list(candidate_nodes)
        self.model = MilpModel(Sense.MAXIMIZE, name="medea-lra-placement")
        # Index maps populated by build().
        self.x_vars: dict[tuple[int, int, str], int] = {}
        self.s_vars: dict[int, int] = {}
        self.z_vars: dict[str, int] = {}
        self.u_vars: dict[str, int] = {}
        # (constraint key) -> list of slack var metadata for diagnostics.
        self._slack_vars: list[tuple[PlacementConstraint, str, int, float]] = []
        self._built = False

    # -- helpers --------------------------------------------------------------

    def _new_containers(self) -> list[tuple[int, int, ContainerRequest]]:
        out = []
        for i, request in enumerate(self.requests):
            for j, container in enumerate(request.containers):
                out.append((i, j, container))
        return out

    def _matching_new(
        self, tags: frozenset[str], exclude: tuple[int, int] | None = None
    ) -> list[tuple[int, int, ContainerRequest]]:
        """New containers whose tag set contains the conjunction ``tags``."""
        return [
            (i, j, c)
            for (i, j, c) in self._new_containers()
            if (exclude is None or (i, j) != exclude) and tags <= c.tags
        ]

    def _active_constraints(self) -> list[PlacementConstraint]:
        """Union of manager-held constraints and those of the new requests
        (deduplicated — the facade registers requests before scheduling, but
        standalone use must work too)."""
        seen: set[PlacementConstraint] = set()
        out: list[PlacementConstraint] = []
        for constraint in self.manager.active_constraints():
            if constraint not in seen:
                seen.add(constraint)
                out.append(constraint)
        for request in self.requests:
            for constraint in request.constraints:
                if constraint not in seen:
                    seen.add(constraint)
                    out.append(constraint)
        return out

    def _active_compounds(self) -> list[CompoundConstraint]:
        seen: set[int] = set()
        out: list[CompoundConstraint] = []
        for compound in self.manager.active_compound_constraints():
            if id(compound) not in seen:
                seen.add(id(compound))
                out.append(compound)
        for request in self.requests:
            for compound in request.compound_constraints:
                if id(compound) not in seen:
                    seen.add(id(compound))
                    out.append(compound)
        return out

    # -- build -----------------------------------------------------------------

    def build(self) -> MilpModel:
        if self._built:
            return self.model
        self._built = True
        self._add_placement_variables()
        self._add_capacity_constraints()
        self._add_all_or_nothing()
        self._add_fragmentation()
        if self.weights.w4_machines > 0:
            self._add_machines_used()
        self._add_placement_constraints()
        self._add_compound_constraints()
        return self.model

    def _add_placement_variables(self) -> None:
        k = max(1, len(self.requests))
        for i, request in enumerate(self.requests):
            s_var = self.model.add_binary(f"S[{request.app_id}]")
            self.s_vars[i] = s_var
            self.model.add_objective_term(s_var, self.weights.w1_placement / k)
        for i, j, container in self._new_containers():
            free_ok = False
            for node_id in self.nodes:
                node = self.state.topology.node(node_id)
                if container.resource.fits(node.free):
                    self.x_vars[(i, j, node_id)] = self.model.add_binary(
                        f"X[{container.container_id}@{node_id}]"
                    )
                    free_ok = True
            if not free_ok:
                # Container fits nowhere: Eq. 4 will force S_i = 0.
                pass
        # Eq. 2: each container placed at most once.
        for i, j, container in self._new_containers():
            coeffs = {
                self.x_vars[(i, j, n)]: 1.0
                for n in self.nodes
                if (i, j, n) in self.x_vars
            }
            if coeffs:
                self.model.add_le(coeffs, 1.0, name=f"once[{container.container_id}]")

    def _add_capacity_constraints(self) -> None:
        # Eq. 3, one row per node per resource dimension.
        for node_id in self.nodes:
            node = self.state.topology.node(node_id)
            mem_coeffs: dict[int, float] = {}
            cpu_coeffs: dict[int, float] = {}
            for i, j, container in self._new_containers():
                var = self.x_vars.get((i, j, node_id))
                if var is None:
                    continue
                mem_coeffs[var] = float(container.resource.memory_mb)
                cpu_coeffs[var] = float(container.resource.vcores)
            if mem_coeffs:
                self.model.add_le(mem_coeffs, float(node.free.memory_mb), name=f"cap-mem[{node_id}]")
            if cpu_coeffs:
                self.model.add_le(cpu_coeffs, float(node.free.vcores), name=f"cap-cpu[{node_id}]")

    def _add_all_or_nothing(self) -> None:
        # Eq. 4: sum of X over an LRA's containers equals T_i * S_i.
        for i, request in enumerate(self.requests):
            coeffs: dict[int, float] = {}
            for j in range(len(request.containers)):
                for node_id in self.nodes:
                    var = self.x_vars.get((i, j, node_id))
                    if var is not None:
                        coeffs[var] = coeffs.get(var, 0.0) + 1.0
            coeffs[self.s_vars[i]] = -float(len(request.containers))
            self.model.add_eq(coeffs, 0.0, name=f"all-or-nothing[{request.app_id}]")

    def _add_fragmentation(self) -> None:
        # Eq. 5 on the memory dimension (scalar projection): z_n = 1 only if
        # the node keeps >= rmin free after the new placements.
        n_nodes = max(1, len(self.nodes))
        rmin_mem = float(self.rmin.memory_mb)
        big_b = rmin_mem + 1.0
        for node_id in self.nodes:
            node = self.state.topology.node(node_id)
            z_var = self.model.add_binary(f"z[{node_id}]")
            self.z_vars[node_id] = z_var
            self.model.add_objective_term(
                z_var, self.weights.w3_fragmentation / n_nodes
            )
            coeffs: dict[int, float] = {z_var: big_b}
            for i, j, container in self._new_containers():
                var = self.x_vars.get((i, j, node_id))
                if var is not None:
                    coeffs[var] = coeffs.get(var, 0.0) + float(container.resource.memory_mb)
            # used_new + B*z <= Rf - rmin + B   (equivalent to Eq. 5)
            self.model.add_le(
                coeffs,
                float(node.free.memory_mb) - rmin_mem + big_b,
                name=f"frag[{node_id}]",
            )

    def _add_machines_used(self) -> None:
        """Optional §2.4 objective: minimise the number of machines used for
        the *new* placements."""
        n_nodes = max(1, len(self.nodes))
        total_containers = sum(len(r.containers) for r in self.requests)
        for node_id in self.nodes:
            coeffs: dict[int, float] = {}
            for i, j, _ in self._new_containers():
                var = self.x_vars.get((i, j, node_id))
                if var is not None:
                    coeffs[var] = 1.0
            if not coeffs:
                continue
            u_var = self.model.add_binary(f"u[{node_id}]")
            self.u_vars[node_id] = u_var
            coeffs[u_var] = -float(total_containers)
            self.model.add_le(coeffs, 0.0, name=f"used[{node_id}]")
            self.model.add_objective_term(
                u_var, -self.weights.w4_machines / n_nodes
            )

    # -- Eqs. 6-8: placement constraints -----------------------------------------

    def _ground_constraint(
        self,
        constraint: PlacementConstraint,
        *,
        violation_terms: list[tuple[int, float]],
        activation_extra: int | None = None,
    ) -> int:
        """Ground one placement constraint; returns number of (subject,
        tag-constraint) slack pairs created.

        ``violation_terms`` collects ``(slack_var, normalised_weight)`` pairs
        for the objective.  ``activation_extra`` optionally names a
        compound-conjunct selection binary ``d``; each grounded inequality
        then gains a ``±D·(1-d)`` deactivation using the same big-D computed
        for that inequality (used for DNF support).
        """
        group = self.state.topology.group(constraint.node_group)
        created = 0
        # New subject containers.
        for i, j, container in self._new_containers():
            if not constraint.applies_to(container.tags):
                continue
            created += self._ground_for_new_subject(
                constraint, group.name, (i, j), container,
                violation_terms, activation_extra,
            )
        # Already-placed subjects, aggregated per node set: every existing
        # subject inside the same set sees the same target count, so one
        # inequality with an objective weight of n_subjects is equivalent to
        # n per-subject rows (and keeps the model small as the cluster
        # fills).
        created += self._ground_for_existing_subjects(
            constraint, group.name, violation_terms, activation_extra
        )
        return created

    def _target_terms(
        self,
        tc: TagConstraint,
        node_set: tuple[str, ...],
        exclude_new: tuple[int, int] | None,
    ) -> tuple[dict[int, float], int]:
        """Variable coefficients and constant count of c_tag matches in a
        node set (constant part = already-placed containers)."""
        coeffs: dict[int, float] = {}
        for i, j, _ in self._matching_new(tc.c_tag.tags, exclude=exclude_new):
            for node_id in node_set:
                var = self.x_vars.get((i, j, node_id))
                if var is not None:
                    coeffs[var] = coeffs.get(var, 0.0) + 1.0
        constant = 0
        multiset_total: dict[str, int] = {}
        for node_id in node_set:
            node = self.state.topology.node(node_id)
            dyn = node.dynamic_tags()
            for tag in tc.c_tag.tags:
                multiset_total[tag] = multiset_total.get(tag, 0) + dyn.cardinality(tag)
        if multiset_total:
            constant = min(multiset_total.get(tag, 0) for tag in tc.c_tag.tags)
        return coeffs, constant


    def _existing_matching(self, tags: frozenset[str]) -> int:
        """Already-placed containers matching a tag conjunction, cluster-wide."""
        return sum(
            1
            for placed in self.state.containers.values()
            if tags <= placed.allocation.tags
        )

    def _max_slack_norm(self, tc: TagConstraint) -> float:
        """Normaliser keeping a cmax-side violation in [0, 1] for the
        objective.  Eq. 8 divides by cmax, which is undefined for
        anti-affinity (cmax = 0); there we divide by the largest slack any
        placement could produce, so one fully-violated constraint never
        outweighs the w1 placement reward (which the paper's weight choice
        w1 > w2 presumes)."""
        if tc.cmax > 0:
            return 1.0 / float(tc.cmax)
        pool = len(self._matching_new(tc.c_tag.tags)) + self._existing_matching(
            tc.c_tag.tags
        )
        return 1.0 / float(max(1, pool - 1))

    def _objective_weight(self, constraint: PlacementConstraint) -> float:
        weight = constraint.weight
        if constraint.hard:
            weight *= HARD_CONSTRAINT_FACTOR
        return weight

    def _ground_for_new_subject(
        self,
        constraint: PlacementConstraint,
        group_name: str,
        subject_idx: tuple[int, int],
        container: ContainerRequest,
        violation_terms: list[tuple[int, float]],
        activation_extra: int | None,
    ) -> int:
        group = self.state.topology.group(group_name)
        i, j = subject_idx
        created = 0
        weight = self._objective_weight(constraint)
        for tc_index, tc in enumerate(constraint.tag_constraints):
            slack_min = slack_max = None
            if tc.cmin > 0:
                slack_min = self.model.add_continuous(
                    f"vmin[{container.container_id}/{tc_index}]", upper=float(tc.cmin)
                )
                norm = weight / float(tc.cmin)
                violation_terms.append((slack_min, norm))
                self._slack_vars.append((constraint, container.container_id, slack_min, 1.0 / tc.cmin))
            if tc.cmax < UNBOUNDED:
                slack_max = self.model.add_continuous(
                    f"vmax[{container.container_id}/{tc_index}]"
                )
                violation_terms.append((slack_max, weight * self._max_slack_norm(tc)))
                self._slack_vars.append(
                    (constraint, container.container_id, slack_max,
                     1.0 / tc.cmax if tc.cmax > 0 else 1.0)
                )
            if slack_min is None and slack_max is None:
                continue  # vacuous (0, UNBOUNDED) constraint
            for set_index, node_set in enumerate(group.node_sets):
                subject_x = {
                    self.x_vars[(i, j, n)]: 1.0
                    for n in node_set
                    if (i, j, n) in self.x_vars
                }
                if not subject_x:
                    continue  # subject cannot be placed inside this set
                target_coeffs, constant = self._target_terms(
                    tc, node_set, exclude_new=(i, j)
                )
                # The subject's own tags never count toward the target when
                # the subject is an existing container; for new subjects the
                # exclusion already removed its X variables from the sum.
                big_d = self._big_d(tc, constant)
                created += 1
                if slack_min is not None:
                    # targets + D(1-y) + slack >= cmin  (y = sum of subject X in set)
                    coeffs = dict(target_coeffs)
                    for var, coeff in subject_x.items():
                        coeffs[var] = coeffs.get(var, 0.0) - big_d * coeff
                    coeffs[slack_min] = coeffs.get(slack_min, 0.0) + 1.0
                    rhs = float(tc.cmin) - constant - big_d
                    if activation_extra is not None:
                        coeffs[activation_extra] = coeffs.get(activation_extra, 0.0) - big_d
                        rhs -= big_d
                    self.model.add_ge(
                        coeffs, rhs,
                        name=f"cmin[{container.container_id}/{group_name}/{set_index}]",
                    )
                if slack_max is not None:
                    # targets - D(1-y) - slack <= cmax
                    coeffs = dict(target_coeffs)
                    for var, coeff in subject_x.items():
                        coeffs[var] = coeffs.get(var, 0.0) + big_d * coeff
                    coeffs[slack_max] = coeffs.get(slack_max, 0.0) - 1.0
                    rhs = float(tc.cmax) - constant + big_d
                    if activation_extra is not None:
                        coeffs[activation_extra] = coeffs.get(activation_extra, 0.0) + big_d
                        rhs += big_d
                    self.model.add_le(
                        coeffs, rhs,
                        name=f"cmax[{container.container_id}/{group_name}/{set_index}]",
                    )
        return created

    def _ground_for_existing_subjects(
        self,
        constraint: PlacementConstraint,
        group_name: str,
        violation_terms: list[tuple[int, float]],
        activation_extra: int | None,
    ) -> int:
        group = self.state.topology.group(group_name)
        created = 0
        weight = self._objective_weight(constraint)
        subject_tags = constraint.subject.tags
        for set_index, node_set in enumerate(group.node_sets):
            n_subjects = self._gamma_constant(set_index, group_name, subject_tags)
            if n_subjects == 0:
                continue
            for tc_index, tc in enumerate(constraint.tag_constraints):
                if tc.cmin == 0 and tc.cmax >= UNBOUNDED:
                    continue
                target_coeffs, constant = self._target_terms(tc, node_set, exclude_new=None)
                if not target_coeffs:
                    # No new placement variable can change this count: the
                    # inequality is a constant and only dilutes the
                    # violation normalisation — skip it.
                    continue
                # Subjects whose tags imply the target conjunction count
                # toward it and must exclude themselves (tij != tisjs).
                if tc.c_tag.tags <= subject_tags:
                    constant = max(0, constant - 1)
                big_d = self._big_d(tc, constant)
                created += 1
                tag_name = f"dep[{group_name}/{set_index}/{tc_index}]"
                if tc.cmin > 0:
                    slack_min = self.model.add_continuous(
                        f"vmin{tag_name}", upper=float(tc.cmin)
                    )
                    violation_terms.append(
                        (slack_min, n_subjects * weight / float(tc.cmin))
                    )
                    self._slack_vars.append(
                        (constraint, tag_name, slack_min, 1.0 / tc.cmin)
                    )
                    coeffs = dict(target_coeffs)
                    coeffs[slack_min] = coeffs.get(slack_min, 0.0) + 1.0
                    rhs = float(tc.cmin) - constant
                    if activation_extra is not None:
                        coeffs[activation_extra] = coeffs.get(activation_extra, 0.0) - big_d
                        rhs -= big_d
                    self.model.add_ge(coeffs, rhs, name=f"cmin{tag_name}")
                if tc.cmax < UNBOUNDED:
                    slack_max = self.model.add_continuous(f"vmax{tag_name}")
                    violation_terms.append(
                        (slack_max, n_subjects * weight * self._max_slack_norm(tc))
                    )
                    self._slack_vars.append(
                        (constraint, tag_name, slack_max,
                         1.0 / tc.cmax if tc.cmax > 0 else 1.0)
                    )
                    coeffs = dict(target_coeffs)
                    coeffs[slack_max] = coeffs.get(slack_max, 0.0) - 1.0
                    rhs = float(tc.cmax) - constant
                    if activation_extra is not None:
                        coeffs[activation_extra] = coeffs.get(activation_extra, 0.0) + big_d
                        rhs += big_d
                    self.model.add_le(coeffs, rhs, name=f"cmax{tag_name}")
        return created

    def _gamma_constant(
        self, set_index: int, group_name: str, tags: frozenset[str]
    ) -> int:
        """γ of a conjunction over already-placed containers in one set."""
        gamma = None
        for tag in tags:
            count = self.state.group_tag_count(group_name, set_index, tag)
            gamma = count if gamma is None else min(gamma, count)
        return max(0, gamma or 0)

    def _big_d(self, tc: TagConstraint, constant: int) -> float:
        """A D large enough to deactivate either inequality."""
        matching_new = len(self._matching_new(tc.c_tag.tags))
        max_gamma = constant + matching_new
        bound = max(tc.cmin, max_gamma)
        if tc.cmax < UNBOUNDED:
            bound = max(bound, max_gamma - tc.cmax)
        return float(bound + 1)

    #: Dilution cap for per-constraint violation normalisation: a constraint
    #: grounded on many subjects still keeps a per-subject penalty of at
    #: least w2/(m * CAP), so the fragmentation reward (w3/N per node) can
    #: never buy constraint violations.
    VIOLATION_DILUTION_CAP = 8

    def _add_placement_constraints(self) -> None:
        per_constraint: list[list[tuple[int, float]]] = []
        for constraint in self._active_constraints():
            terms: list[tuple[int, float]] = []
            self._ground_constraint(constraint, violation_terms=terms)
            if terms:
                per_constraint.append(terms)
        # Deviation from the literal Eq. 1: the paper divides the violation
        # component by m (the number of constraints), which progressively
        # dilutes per-violation penalties as constraints accumulate until
        # the fragmentation reward — or the solver's MIP gap — can buy
        # violations outright.  We keep the per-constraint averaging of
        # v_lc but cap the denominator, so one violated container always
        # costs at least w2 * norm / CAP regardless of model size.
        for terms in per_constraint:
            denominator = min(len(terms), self.VIOLATION_DILUTION_CAP)
            for slack_var, norm in terms:
                self.model.add_objective_term(
                    slack_var, -self.weights.w2_violations * norm / denominator
                )

    def _add_compound_constraints(self) -> None:
        """DNF support (§5.2 "Compound constraints"): each conjunct gets a
        selection binary; at least one conjunct must be selected; only the
        selected conjunct's cardinality inequalities are active."""
        for comp_index, compound in enumerate(self._active_compounds()):
            violation_terms: list[tuple[int, float]] = []
            selection_vars = []
            for conj_index, conjunct in enumerate(compound.conjuncts):
                d_var = self.model.add_binary(f"dnf[{comp_index}/{conj_index}]")
                selection_vars.append(d_var)
                for constraint in conjunct:
                    self._ground_constraint(
                        constraint,
                        violation_terms=violation_terms,
                        activation_extra=d_var,
                    )
            self.model.add_ge(
                {var: 1.0 for var in selection_vars},
                1.0,
                name=f"dnf-select[{comp_index}]",
            )
            denominator = min(
                max(1, len(violation_terms)), self.VIOLATION_DILUTION_CAP
            )
            for slack_var, norm in violation_terms:
                self.model.add_objective_term(
                    slack_var,
                    -compound.weight * self.weights.w2_violations * norm / denominator,
                )

    # -- decoding -------------------------------------------------------------

    def extract(self, solution: MilpSolution) -> PlacementResult:
        """Decode a solver solution into a :class:`PlacementResult`."""
        result = PlacementResult()
        result.solver_stats = solution.stats
        if not solution.status.has_solution():
            result.rejected_apps = [r.app_id for r in self.requests]
            return result
        result.objective = solution.objective
        for i, request in enumerate(self.requests):
            if solution.rounded(self.s_vars[i]) != 1:
                result.rejected_apps.append(request.app_id)
                continue
            for j, container in enumerate(request.containers):
                placed_node = None
                for node_id in self.nodes:
                    var = self.x_vars.get((i, j, node_id))
                    if var is not None and solution.rounded(var) == 1:
                        placed_node = node_id
                        break
                if placed_node is None:
                    raise RuntimeError(
                        f"solver reported S=1 for {request.app_id} but container "
                        f"{container.container_id} has no node assignment"
                    )
                result.placements.append(
                    ContainerPlacement(
                        app_id=request.app_id,
                        container_id=container.container_id,
                        node_id=placed_node,
                        resource=container.resource,
                        tags=container.tags,
                    )
                )
        return result

    def violations(self, solution: MilpSolution) -> list[GroundedViolation]:
        """Non-zero violation slacks, for diagnostics and metrics."""
        out = []
        if not solution.status.has_solution():
            return out
        for constraint, container_id, var, norm in self._slack_vars:
            value = solution.value(var)
            if value > 1e-6:
                out.append(GroundedViolation(constraint, container_id, value * norm))
        return out

