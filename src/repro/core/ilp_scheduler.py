"""Medea-ILP: the optimisation-based LRA scheduler (paper §5.2).

Wraps :class:`repro.core.ilp.IlpFormulation` — builds the MILP for the batch
of LRAs submitted during the last scheduling interval, solves it with the
configured backend, and decodes placements.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..cluster.resources import Resource
from ..cluster.state import ClusterState
from ..obs.audit import PRUNE_CANDIDATE_POOL, CandidatePruned, DecisionAudit
from ..obs.metrics import SolverStats, get_metrics
from ..solver import BnBOptions, HighsOptions, solve
from .constraint_manager import ConstraintManager
from .ilp import IlpFormulation, IlpWeights
from .requests import LRARequest
from .scheduler import LRAScheduler, PlacementResult

__all__ = ["IlpScheduler"]


class IlpScheduler(LRAScheduler):
    """ILP-based batch placement with global objectives.

    Parameters
    ----------
    weights:
        Objective weights (defaults to the paper's w1=1, w2=0.5, w3=0.25).
    backend:
        ``"highs"`` (default) or ``"bnb"`` for the from-scratch
        branch-and-bound solver.
    rmin:
        Fragmentation threshold of Eq. 5.
    time_limit_s:
        Solver time limit; if it is hit, the best incumbent is used.
    mip_rel_gap:
        Relative optimality gap at which the solver may stop early; batch
        placement rarely benefits from proving the last fraction of a
        percent, so sweeps use a few percent here.
    bnb_options:
        Full :class:`~repro.solver.BnBOptions` for the ``"bnb"`` backend
        (presolve, pseudocost branching, rounding heuristic, node
        propagation).  When given, its ``time_limit_s``/``gap`` are
        overridden by this scheduler's ``time_limit_s``/``mip_rel_gap``;
        ``None`` uses the solver defaults (everything enabled).
    max_candidate_nodes:
        Optional pruning of the placement-variable space for large
        clusters: the MILP considers only a pool of roughly this many
        nodes, chosen to cover (a) nodes already hosting tags the batch's
        constraints refer to, (b) the emptiest racks taken whole (so rack
        affinity groups stay placeable), and (c) a stride sample across the
        cluster (so anti-affinity spreads stay placeable).  ``None`` (the
        default) keeps the paper's full formulation.
    """

    name = "MEDEA-ILP"

    def __init__(
        self,
        weights: IlpWeights | None = None,
        *,
        backend: str = "highs",
        rmin: Resource = Resource(2048, 1),
        time_limit_s: float = 60.0,
        mip_rel_gap: float = 1e-6,
        max_candidate_nodes: int | None = None,
        bnb_options: BnBOptions | None = None,
        audit: bool = False,
    ) -> None:
        self.weights = weights or IlpWeights()
        self.backend = backend
        self.rmin = rmin
        self.time_limit_s = time_limit_s
        self.mip_rel_gap = mip_rel_gap
        self.max_candidate_nodes = max_candidate_nodes
        self.bnb_options = bnb_options
        self.audit_enabled = audit
        #: Diagnostics from the last invocation.
        self.last_formulation: IlpFormulation | None = None
        #: Solver effort breakdown from the last invocation.
        self.last_stats: SolverStats | None = None

    def place(
        self,
        requests: Sequence[LRARequest],
        state: ClusterState,
        manager: ConstraintManager,
        *,
        now: float = 0.0,
    ) -> PlacementResult:
        if not requests:
            return PlacementResult()
        pool = self._candidate_pool(requests, state, manager)
        formulation = IlpFormulation(
            requests,
            state,
            manager,
            weights=self.weights,
            rmin=self.rmin,
            candidate_nodes=pool,
        )
        formulation.build()
        if self.backend == "bnb":
            base = self.bnb_options or BnBOptions()
            options = replace(
                base, time_limit_s=self.time_limit_s, gap=self.mip_rel_gap
            )
        else:
            options = HighsOptions(
                time_limit_s=self.time_limit_s, mip_rel_gap=self.mip_rel_gap
            )
        solution = solve(formulation.model, backend=self.backend, options=options)
        self.last_formulation = formulation
        self.last_stats = solution.stats
        result = formulation.extract(solution)
        # Fold the solve's effort breakdown into the generic metrics channel
        # (the PR-1 hand-threaded path lives on via result.solver_stats).
        if solution.stats is not None:
            solution.stats.record_to(get_metrics(), scheduler=self.name)
        if self.audit_enabled:
            result.audit = self._build_audit(
                requests, state, pool, formulation, solution, result
            )
        return result

    def _build_audit(
        self,
        requests: Sequence[LRARequest],
        state: ClusterState,
        pool: list[str] | None,
        formulation: IlpFormulation,
        solution,
        result: PlacementResult,
    ) -> DecisionAudit:
        """Explain the batch solve: candidate-pool pruning, the weighted
        objective, and the per-container node assignments."""
        audit = DecisionAudit(self.name)
        considered = len(formulation.nodes)
        audit.objective_terms = {
            "objective": float(result.objective or 0.0),
            "w1_placement": self.weights.w1_placement,
            "w2_violations": self.weights.w2_violations,
            "w3_fragmentation": self.weights.w3_fragmentation,
            "w4_machines": self.weights.w4_machines,
            "candidate_pool": float(considered),
            "milp_variables": float(formulation.model.num_variables),
            "milp_constraints": float(formulation.model.num_constraints),
        }
        pooled_out: list[CandidatePruned] = []
        if pool is not None:
            in_pool = set(pool)
            pooled_out = [
                CandidatePruned(node.node_id, PRUNE_CANDIDATE_POOL)
                for node in state.topology
                if node.node_id not in in_pool
            ]
        placed_node = {p.container_id: p.node_id for p in result.placements}
        for request in requests:
            for container in request.containers:
                decision = audit.new_decision(request.app_id, container.container_id)
                decision.considered = considered + len(pooled_out)
                decision.feasible = considered
                decision.pruned = list(pooled_out)
                decision.chosen_node = placed_node.get(container.container_id)
                if decision.chosen_node is not None and result.objective is not None:
                    decision.score_terms = {"objective": float(result.objective)}
        return audit

    def _candidate_pool(
        self,
        requests: Sequence[LRARequest],
        state: ClusterState,
        manager: ConstraintManager,
    ) -> list[str] | None:
        if self.max_candidate_nodes is None:
            return None
        limit = self.max_candidate_nodes
        nodes = [
            n for n in state.topology if n.available and not n.free.is_zero()
        ]
        if len(nodes) <= limit:
            return [n.node_id for n in nodes]

        # (a) Emptiest racks, taken whole, so rack-affinity groups fit.
        rack_free: dict[str, int] = {}
        rack_members: dict[str, list[str]] = {}
        for node in nodes:
            rack_free[node.rack] = rack_free.get(node.rack, 0) + node.free.memory_mb
            rack_members.setdefault(node.rack, []).append(node.node_id)
        pool: list[str] = []
        seen: set[str] = set()

        def push(node_id: str) -> None:
            if node_id not in seen:
                seen.add(node_id)
                pool.append(node_id)

        for rack in sorted(rack_free, key=rack_free.get, reverse=True):
            for node_id in rack_members[rack]:
                push(node_id)
            if len(pool) >= limit:
                break

        # (b) Nodes hosting tags the batch's constraints target (bounded so
        # they cannot crowd out the rack pool).
        target_tags: set[str] = set()
        constraints = list(manager.active_constraints())
        for request in requests:
            constraints.extend(request.all_simple_constraints())
        for constraint in constraints:
            for tc in constraint.tag_constraints:
                target_tags.update(tc.c_tag.tags)
        extra_budget = max(4, limit // 4)
        added = 0
        # The candidate index answers "which nodes host these tags" without
        # scanning every node's tag multiset; iteration stays over ``nodes``
        # (topology order) so the pool is unchanged.
        tagged = state.candidate_index().nodes_with_any_tag(
            target_tags, dynamic_only=True
        )
        for node in nodes:
            if added >= extra_budget:
                break
            if node.node_id in tagged and node.node_id not in seen:
                push(node.node_id)
                added += 1

        # (c) Stride sample for spread (anti-affinity) headroom.
        stride = max(1, len(nodes) // max(1, limit // 4))
        for node in nodes[::stride]:
            push(node.node_id)
        return pool
