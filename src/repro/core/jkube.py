"""J-Kube and J-Kube++: the Kubernetes scheduling algorithm inside Medea.

The paper (§7.1) implements Kubernetes' algorithm in Medea's LRA scheduler
to get an architecture-fair comparison:

* **J-Kube** considers *one container request at a time* (no batch
  optimisation) and supports affinity and anti-affinity constraints but
  **not cardinality** — cardinality constraints are approximated by their
  nearest supported form, mirroring what a Kubernetes user would have to do:
  ``cmin >= 1`` becomes affinity, ``cmax == 0`` anti-affinity, and anything
  else is dropped.
* **J-Kube++** is J-Kube extended with cardinality support: constraints are
  evaluated exactly, but still one container at a time.

Node selection follows Kubernetes' filter/score split: filter nodes by
resource feasibility, then score each feasible node with (a) constraint
satisfaction and (b) spreading priorities (least-requested and
balanced-resource), taking the highest-scoring node.
"""

from __future__ import annotations

from typing import Sequence

from ..cluster.node import Node
from ..cluster.state import ClusterState
from ..obs.audit import (
    PRUNE_CAPACITY,
    CandidatePruned,
    ContainerDecision,
    DecisionAudit,
)
from .constraint_manager import ConstraintManager
from .constraints import (
    UNBOUNDED,
    PlacementConstraint,
    TagConstraint,
)
from .heuristics import _gather_constraints, relevant_constraints
from .requests import ContainerRequest, LRARequest
from .scheduler import LRAScheduler, PlacementResult, ScratchPlacements

__all__ = ["JKubeScheduler", "JKubePlusPlusScheduler"]

#: Score weights roughly matching Kubernetes' default priority weights:
#: inter-pod (anti-)affinity dominates the spreading priorities.
_CONSTRAINT_WEIGHT = 10.0
_LEAST_REQUESTED_WEIGHT = 1.0
_BALANCED_RESOURCE_WEIGHT = 1.0


def _kube_supported(constraint: PlacementConstraint) -> PlacementConstraint | None:
    """Map a Medea constraint onto what vanilla Kubernetes can express.

    Pure affinity and anti-affinity pass through.  A cardinality constraint
    is *weakened*: a positive ``cmin`` keeps its affinity side (cmin=1), a
    zero-``cmax``-like bound cannot be expressed unless it is exactly 0, so
    finite non-zero ``cmax`` is dropped.  Returns ``None`` when nothing of
    the constraint survives.
    """
    kept: list[TagConstraint] = []
    for tc in constraint.tag_constraints:
        if tc.is_affinity() or tc.is_anti_affinity():
            kept.append(tc)
        elif tc.cmin >= 1:
            # Keep only the affinity flavour of the cardinality constraint.
            kept.append(TagConstraint(tc.c_tag, 1, UNBOUNDED))
        # A finite cmax > 0 has no Kubernetes equivalent: dropped.
    if not kept:
        return None
    return PlacementConstraint(
        subject=constraint.subject,
        tag_constraints=tuple(kept),
        node_group=constraint.node_group,
        weight=constraint.weight,
        hard=constraint.hard,
        origin=constraint.origin,
    )


class JKubeScheduler(LRAScheduler):
    """One-container-at-a-time scheduling with Kubernetes-style scoring."""

    name = "J-KUBE"

    #: Subclass knob: whether cardinality constraints are evaluated exactly.
    supports_cardinality = False

    def __init__(self, *, audit: bool = False) -> None:
        self.audit_enabled = audit

    def place(
        self,
        requests: Sequence[LRARequest],
        state: ClusterState,
        manager: ConstraintManager,
        *,
        now: float = 0.0,
    ) -> PlacementResult:
        result = PlacementResult()
        if not requests:
            return result
        audit = DecisionAudit(self.name) if self.audit_enabled else None
        constraints = self._effective_constraints(requests, manager)
        failed: set[str] = set()
        with ScratchPlacements(state) as scratch:
            for req_index, request in enumerate(requests):
                for container in request.containers:
                    if request.app_id in failed:
                        break
                    decision = (
                        audit.new_decision(request.app_id, container.container_id)
                        if audit is not None
                        else None
                    )
                    node_id = self._schedule_one(
                        container, constraints, state, decision=decision
                    )
                    if node_id is None:
                        failed.add(request.app_id)
                        scratch.unplace_app(request.app_id)
                        break
                    scratch.place(container, node_id, request.app_id)
            result.placements = list(scratch.placements)
        result.rejected_apps = sorted(failed)
        result.audit = audit
        return result

    def _effective_constraints(
        self, requests: Sequence[LRARequest], manager: ConstraintManager
    ) -> list[PlacementConstraint]:
        constraints = _gather_constraints(requests, manager)
        if self.supports_cardinality:
            return constraints
        mapped = []
        for constraint in constraints:
            supported = _kube_supported(constraint)
            if supported is not None:
                mapped.append(supported)
        return mapped

    # -- the filter/score pipeline ------------------------------------------

    def _schedule_one(
        self,
        container: ContainerRequest,
        constraints: Sequence[PlacementConstraint],
        state: ClusterState,
        *,
        decision: ContainerDecision | None = None,
    ) -> str | None:
        constraints = relevant_constraints(constraints, container.tags)
        best_node: str | None = None
        best_score = float("-inf")
        for node in state.topology:
            if decision is not None:
                decision.considered += 1
            if not node.can_fit(container.resource):
                if decision is not None:
                    decision.pruned.append(
                        CandidatePruned(node.node_id, PRUNE_CAPACITY)
                    )
                continue  # filter phase
            if decision is not None:
                decision.feasible += 1
            score = self._score(node, container, constraints, state)
            if score > best_score:
                best_score = score
                best_node = node.node_id
        if decision is not None and best_node is not None:
            decision.chosen_node = best_node
            decision.score_terms = {"kube_score": best_score}
        return best_node

    def _score(
        self,
        node: Node,
        container: ContainerRequest,
        constraints: Sequence[PlacementConstraint],
        state: ClusterState,
    ) -> float:
        violation = state.placement_delta_violations(
            constraints, node.node_id, container.tags
        )
        free_after = node.free - container.resource
        least_requested = 0.0
        if node.capacity.memory_mb > 0:
            least_requested += free_after.memory_mb / node.capacity.memory_mb
        if node.capacity.vcores > 0:
            least_requested += free_after.vcores / node.capacity.vcores
        least_requested /= 2.0
        mem_frac = (
            1.0 - free_after.memory_mb / node.capacity.memory_mb
            if node.capacity.memory_mb
            else 0.0
        )
        cpu_frac = (
            1.0 - free_after.vcores / node.capacity.vcores
            if node.capacity.vcores
            else 0.0
        )
        balanced = 1.0 - abs(mem_frac - cpu_frac)
        return (
            -_CONSTRAINT_WEIGHT * violation
            + _LEAST_REQUESTED_WEIGHT * least_requested
            + _BALANCED_RESOURCE_WEIGHT * balanced
        )


class JKubePlusPlusScheduler(JKubeScheduler):
    """J-Kube extended with exact cardinality evaluation (still greedy,
    one container at a time)."""

    name = "J-KUBE++"
    supports_cardinality = True
