"""The Medea two-scheduler facade (paper §3, Fig. 4).

Ties together the four design components: the LRA interface (submission
routing), the dedicated LRA scheduler invoked at a configurable interval,
the constraint manager, and the task-based scheduler that performs every
actual allocation.

Flow per scheduling cycle (Fig. 4 steps 1–3):

1. the LRA scheduler computes placements for the LRAs submitted during the
   last interval, reading the live cluster state and the constraint manager;
2. placements are handed, per application, to the task-based scheduler;
3. the task-based scheduler performs the allocation.  If the state changed
   in between (task containers grabbed the resources) the allocation raises
   a conflict and Medea *resubmits the LRA* — the paper's chosen conflict
   policy (§5.4).

The ``ilp_all`` mode removes the two-scheduler split: task requests are
wrapped as single-container LRAs and pushed through the LRA scheduler,
reproducing the ILP-ALL baseline of Fig. 11b.

Observability: the facade emits the LRA lifecycle trace (``lra.submit`` /
``lra.place`` / ``lra.reject`` / ``lra.conflict`` / ``lra.resubmit`` /
``lra.drop`` / ``lra.complete``) and the cycle envelope (``cycle.start`` /
``cycle.end``), and keeps lifecycle counters in the ambient metrics
registry.  Clock arguments follow the unified convention — keyword-only
``now: float`` — with a deprecation shim accepting the legacy positional
form.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..cluster.state import ClusterState
from ..obs.events import EventKind
from ..obs.log import get_run_logger
from ..obs.metrics import Metrics, get_metrics
from ..obs.spans import span
from ..obs.trace import Tracer, get_tracer
from ..taskscheduler.base import PlacementConflictError, TaskBasedScheduler
from .constraint_manager import ConstraintManager
from .requests import ContainerRequest, LRARequest, TaskRequest
from .scheduler import LRAScheduler, PlacementResult

__all__ = ["MedeaScheduler", "LraOutcome"]


def _shim_now(method: str, args: tuple, now: float) -> float:
    """Deprecation shim: accept the legacy positional clock argument."""
    if not args:
        return now
    if len(args) > 1:
        raise TypeError(
            f"{method}() takes at most one positional clock argument "
            f"({len(args)} extra given)"
        )
    warnings.warn(
        f"passing 'now' positionally to {method}() is deprecated; "
        "use the keyword-only form now=<time>",
        DeprecationWarning,
        stacklevel=3,
    )
    return float(args[0])


@dataclass
class LraOutcome:
    """Fate of one submitted LRA."""

    app_id: str
    submit_time: float
    placed_time: float | None = None
    attempts: int = 0
    dropped: bool = False

    @property
    def scheduling_latency_s(self) -> float | None:
        if self.placed_time is None:
            return None
        return self.placed_time - self.submit_time


class MedeaScheduler:
    """Orchestrates the LRA scheduler and the task-based scheduler."""

    def __init__(
        self,
        state: ClusterState,
        lra_scheduler: LRAScheduler,
        task_scheduler: TaskBasedScheduler,
        *,
        scheduling_interval_s: float = 10.0,
        max_attempts: int = 3,
        ilp_all: bool = False,
        max_batch_size: int | None = None,
        tracer: Tracer | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        if task_scheduler.state is not state:
            raise ValueError("task scheduler must share the Medea cluster state")
        self.state = state
        self.lra_scheduler = lra_scheduler
        self.task_scheduler = task_scheduler
        self.manager = ConstraintManager(state.topology)
        self.scheduling_interval_s = scheduling_interval_s
        self.max_attempts = max_attempts
        self.ilp_all = ilp_all
        #: Optional cap on LRAs considered per cycle (the paper's
        #: "periodicity" — how many applications one scheduling interval
        #: accumulates).  ``None`` takes everything pending.
        self.max_batch_size = max_batch_size
        self._pending: list[LRARequest] = []
        self.outcomes: dict[str, LraOutcome] = {}
        #: Wall-clock solve time of each LRA scheduling cycle.
        self.cycle_solve_times: list[float] = []
        self._last_cycle_time: float = 0.0
        #: Explicit tracer/metrics; ``None`` falls back to the ambient ones.
        self._tracer = tracer
        self._metrics = metrics

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def metrics(self) -> Metrics:
        return self._metrics if self._metrics is not None else get_metrics()

    # -- submission routing (the LRA interface, §3) -----------------------------

    def submit_lra(self, request: LRARequest, *args, now: float = 0.0) -> None:
        """Queue an LRA for the next scheduling cycle and register its
        constraints with the constraint manager."""
        now = _shim_now("submit_lra", args, now)
        self.manager.register_application(request)
        self._pending.append(request)
        self.outcomes.setdefault(request.app_id, LraOutcome(request.app_id, now))
        self.metrics.counter("lra_submitted_total").inc()
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.LRA_SUBMIT,
                time=now,
                data={
                    "app_id": request.app_id,
                    "containers": len(request.containers),
                    "constraints": len(request.constraints)
                    + len(request.compound_constraints),
                },
            )

    def submit_task(self, task: TaskRequest, *args, now: float = 0.0) -> None:
        """Route a plain task request.

        Normally it goes straight to the task-based scheduler; under
        ``ilp_all`` it is wrapped as a constraint-free single-container LRA
        and waits for the optimisation cycle like everything else.
        """
        now = _shim_now("submit_task", args, now)
        if not self.ilp_all:
            self.task_scheduler.submit(task, now)
            return
        wrapped = LRARequest(
            app_id=f"task-wrap-{task.task_id}",
            containers=[
                ContainerRequest(
                    container_id=task.task_id,
                    resource=task.resource,
                    tags=frozenset({"task"}),
                )
            ],
        )
        self.submit_lra(wrapped, now=now)

    def pending_lras(self) -> int:
        return len(self._pending)

    # -- the scheduling cycle -----------------------------------------------------

    def run_cycle(self, *args, now: float = 0.0) -> PlacementResult:
        """Invoke the LRA scheduler on everything queued since the last
        cycle, then allocate through the task-based scheduler."""
        now = _shim_now("run_cycle", args, now)
        self._last_cycle_time = now
        tracer = self.tracer
        pending_lras = len(self._pending)
        self.metrics.gauge("medea_pending_lras").set(pending_lras)
        if tracer.enabled:
            tracer.emit(
                EventKind.SCHEDULER_QUEUE,
                time=now,
                data={
                    "scheduler": self.lra_scheduler.name,
                    "pending_lras": pending_lras,
                    "pending_tasks": self.task_scheduler.pending_tasks(),
                },
            )
        if not self._pending:
            return PlacementResult()
        if self.max_batch_size is None:
            batch, self._pending = self._pending, []
        else:
            batch = self._pending[: self.max_batch_size]
            self._pending = self._pending[self.max_batch_size:]
        with span(
            "medea.cycle",
            tracer=tracer,
            time=now,
            scheduler=self.lra_scheduler.name,
        ):
            return self._run_cycle_batch(batch, now, tracer)

    def _run_cycle_batch(
        self, batch: list[LRARequest], now: float, tracer: Tracer
    ) -> PlacementResult:
        if tracer.enabled:
            tracer.emit(
                EventKind.CYCLE_START,
                time=now,
                data={
                    "scheduler": self.lra_scheduler.name,
                    "batch": sorted(r.app_id for r in batch),
                    "still_pending": len(self._pending),
                },
            )
        result = self.lra_scheduler.timed_place(
            batch, self.state, self.manager, now=now, metrics=self.metrics,
            tracer=tracer,
        )
        self.cycle_solve_times.append(result.solve_time_s)
        metrics = self.metrics
        metrics.timer("medea_cycle_seconds").observe(result.solve_time_s)

        by_app: dict[str, list] = {}
        for placement in result.placements:
            by_app.setdefault(placement.app_id, []).append(placement)

        requests_by_id = {r.app_id: r for r in batch}
        placed_apps: list[str] = []
        conflicted_apps: list[str] = []
        for app_id, placements in by_app.items():
            outcome = self.outcomes[app_id]
            outcome.attempts += 1
            try:
                self.task_scheduler.apply_lra_placements(placements)
            except PlacementConflictError:
                conflicted_apps.append(app_id)
                metrics.counter("lra_conflicts_total").inc()
                if tracer.enabled:
                    tracer.emit(
                        EventKind.LRA_CONFLICT,
                        time=now,
                        data={"app_id": app_id, "attempt": outcome.attempts},
                    )
                log = get_run_logger()
                if log.enabled:
                    log.warning(
                        "medea", "lra placement conflict", tick=now,
                        app=app_id, attempt=outcome.attempts,
                    )
                self._resubmit(requests_by_id[app_id], outcome, now)
            else:
                outcome.placed_time = now
                placed_apps.append(app_id)
                metrics.counter("lra_placed_total").inc()
                if tracer.enabled:
                    tracer.emit(
                        EventKind.LRA_PLACE,
                        time=now,
                        data={
                            "app_id": app_id,
                            "attempt": outcome.attempts,
                            "nodes": sorted({p.node_id for p in placements}),
                            "containers": len(placements),
                            # Full container → node map so the trace alone
                            # suffices to reconstruct cluster state (replay).
                            "placements": sorted(
                                [p.container_id, p.node_id] for p in placements
                            ),
                        },
                    )

        for app_id in result.rejected_apps:
            outcome = self.outcomes[app_id]
            outcome.attempts += 1
            metrics.counter("lra_rejected_total").inc()
            if tracer.enabled:
                tracer.emit(
                    EventKind.LRA_REJECT,
                    time=now,
                    data={"app_id": app_id, "attempt": outcome.attempts},
                )
            self._resubmit(requests_by_id[app_id], outcome, now)
        if tracer.enabled:
            # Audit the live state against the active constraints so every
            # cycle's trace carries the paper's Fig. 9 signal.
            from ..obs.violations import evaluate_violations

            violation_report = evaluate_violations(
                self.state, manager=self.manager, metrics=metrics
            )
            tracer.emit(
                EventKind.CYCLE_END,
                time=now,
                data={
                    "scheduler": self.lra_scheduler.name,
                    "placed": sorted(placed_apps),
                    "rejected": sorted(result.rejected_apps),
                    "conflicted": sorted(conflicted_apps),
                    "violations": violation_report.violating_containers,
                    "violation_subjects": violation_report.subject_containers,
                },
                wall={"solve_time_s": result.solve_time_s},
            )
        return result

    def _resubmit(
        self, request: LRARequest, outcome: LraOutcome, now: float = 0.0
    ) -> None:
        tracer = self.tracer
        if outcome.attempts >= self.max_attempts:
            outcome.dropped = True
            self.manager.unregister_application(request.app_id)
            self.metrics.counter("lra_dropped_total").inc()
            if tracer.enabled:
                tracer.emit(
                    EventKind.LRA_DROP,
                    time=now,
                    data={"app_id": request.app_id, "attempts": outcome.attempts},
                )
            log = get_run_logger()
            if log.enabled:
                log.warning(
                    "medea", "lra dropped after max attempts", tick=now,
                    app=request.app_id, attempts=outcome.attempts,
                )
            return
        self._pending.append(request)
        self.metrics.counter("lra_resubmitted_total").inc()
        if tracer.enabled:
            tracer.emit(
                EventKind.LRA_RESUBMIT,
                time=now,
                data={"app_id": request.app_id, "attempt": outcome.attempts},
            )

    # -- LRA teardown -----------------------------------------------------------

    def complete_lra(self, app_id: str, *, now: float = 0.0) -> None:
        """Release an LRA's containers and drop its constraints."""
        released = self.state.release_application(app_id)
        self.manager.unregister_application(app_id)
        self.metrics.counter("lra_completed_total").inc()
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.LRA_COMPLETE,
                time=now,
                data={
                    "app_id": app_id,
                    "containers": len(released),
                    "released": sorted(c.container_id for c in released),
                },
            )

    # -- heartbeats --------------------------------------------------------------

    def heartbeat(self, node_id: str, now: float):
        """Forward a node heartbeat to the task-based scheduler (task
        containers are allocated here, never in the LRA path)."""
        return self.task_scheduler.handle_heartbeat(node_id, now)

    def heartbeat_all(self, now: float):
        """Heartbeat every available node, in topology order.

        Three equivalence-preserving fast paths keep this O(cluster size)
        loop off the hot path at 10k nodes:

        * nothing queued → return immediately (a heartbeat with empty
          queues is a strict no-op);
        * once the queues drain mid-loop, the remaining heartbeats are
          skipped for the same reason;
        * when the task scheduler reports the skip is side-effect-free
          (no delay scheduling in play), nodes whose free vector is below
          the element-wise minimum queue-head demand are skipped — no head
          can fit there, so their heartbeat could not allocate.  With the
          array state backend the skip test is one vectorised compare over
          the free matrices; the bound is re-derived whenever an
          allocation changes the queue heads.
        """
        allocations = []
        task_scheduler = self.task_scheduler
        if task_scheduler.pending_tasks() == 0:
            return allocations
        state = self.state
        if not task_scheduler.demand_bound_safe():
            for node in state.topology:
                if node.available:
                    allocs = self.heartbeat(node.node_id, now)
                    if allocs:
                        allocations.extend(allocs)
                        if task_scheduler.pending_tasks() == 0:
                            break
            return allocations
        bound = task_scheduler.min_head_demand()
        arrays = state.arrays
        if arrays is None:
            for node in state.topology:
                if not node.available:
                    continue
                free = node.free
                if free.memory_mb < bound[0] or free.vcores < bound[1]:
                    continue
                allocs = self.heartbeat(node.node_id, now)
                if allocs:
                    allocations.extend(allocs)
                    if task_scheduler.pending_tasks() == 0:
                        break
                    bound = task_scheduler.min_head_demand()
            return allocations
        node_ids = arrays.node_ids
        total = len(node_ids)
        start = 0
        while start < total:
            mask = (
                arrays.avail[start:]
                & (arrays.free_mem[start:] >= bound[0])
                & (arrays.free_vc[start:] >= bound[1])
            )
            rescan = False
            for offset in mask.nonzero()[0]:
                idx = start + int(offset)
                allocs = self.heartbeat(node_ids[idx], now)
                if allocs:
                    allocations.extend(allocs)
                    if task_scheduler.pending_tasks() == 0:
                        return allocations
                    new_bound = task_scheduler.min_head_demand()
                    if new_bound != bound:
                        # The queue heads changed; nodes after this one
                        # must be re-screened against the new bound.
                        bound = new_bound
                        start = idx + 1
                        rescan = True
                        break
            if not rescan:
                break
        return allocations

    # -- introspection ---------------------------------------------------------------

    def placed_lra_latencies(self) -> list[float]:
        return [
            outcome.scheduling_latency_s
            for outcome in self.outcomes.values()
            if outcome.scheduling_latency_s is not None
        ]
