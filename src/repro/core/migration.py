"""Container migration — the paper's §5.4 extension, implemented.

Medea's published design is purely proactive: placements are chosen well
once and never revisited.  §5.4 sketches the natural extension — combine
proactive placement with *reactive* container migration when LRAs enter and
leave at high rates, accounting for migration cost in the objective.  This
module provides that extension as an optional, standalone planner.

The planner walks the cluster's currently-violating LRA containers (worst
extent first) and greedily relocates each to the feasible node that most
reduces total violation extent, charging a configurable per-move cost so
marginal improvements do not trigger churn.  It proposes a
:class:`MigrationPlan`; applying it is a separate, explicit step, because a
real cluster must drain/restart the container.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..cluster.state import ClusterState
from .constraint_manager import ConstraintManager
from .constraints import PlacementConstraint
from .heuristics import relevant_constraints

__all__ = ["Migration", "MigrationPlan", "MigrationPlanner"]


@dataclass(frozen=True)
class Migration:
    """One proposed container move."""

    container_id: str
    from_node: str
    to_node: str
    #: Violation extent removed by this move (net of what it creates).
    extent_gain: float


@dataclass
class MigrationPlan:
    moves: list[Migration] = field(default_factory=list)

    @property
    def total_gain(self) -> float:
        return sum(m.extent_gain for m in self.moves)

    def __len__(self) -> int:
        return len(self.moves)


class MigrationPlanner:
    """Greedy reactive repair of constraint violations via migration.

    Parameters
    ----------
    migration_cost:
        Extent-equivalent cost of one move; a move is proposed only when
        its net violation-extent gain exceeds this (the §5.4 "migration
        cost in the objective function").
    max_moves:
        Upper bound on moves per plan, limiting churn per repair round.
    """

    def __init__(self, *, migration_cost: float = 0.25, max_moves: int = 10) -> None:
        if migration_cost < 0:
            raise ValueError("migration_cost must be non-negative")
        if max_moves < 1:
            raise ValueError("max_moves must be positive")
        self.migration_cost = migration_cost
        self.max_moves = max_moves

    # -- planning ---------------------------------------------------------------

    def plan(self, state: ClusterState, manager: ConstraintManager) -> MigrationPlan:
        """Compute a migration plan against the live state.

        The state is mutated tentatively while planning (so successive moves
        see each other) and fully restored before returning.
        """
        constraints = manager.active_constraints()
        plan = MigrationPlan()
        applied: list[Migration] = []
        try:
            for _ in range(self.max_moves):
                move = self._best_single_move(state, constraints)
                if move is None:
                    break
                self._apply(state, move)
                applied.append(move)
                plan.moves.append(move)
        finally:
            for move in reversed(applied):
                self._apply(state, Migration(
                    move.container_id, move.to_node, move.from_node, 0.0
                ))
        return plan

    def apply(self, state: ClusterState, plan: MigrationPlan) -> None:
        """Execute a plan for real (release + reallocate each container)."""
        for move in plan.moves:
            self._apply(state, move)

    # -- internals -----------------------------------------------------------------

    def _apply(self, state: ClusterState, move: Migration) -> None:
        placed = state.release(move.container_id)
        state.allocate(
            move.container_id,
            move.to_node,
            placed.allocation.resource,
            placed.allocation.tags,
            placed.allocation.app_id,
            long_running=placed.allocation.long_running,
        )

    def _violating_containers(
        self, state: ClusterState, constraints: Sequence[PlacementConstraint]
    ) -> list[tuple[float, str]]:
        """(extent, container_id) for every violating LRA container, worst
        first."""
        out = []
        for placed in state.containers.values():
            if not placed.allocation.long_running:
                continue
            tags = placed.allocation.tags
            extent = 0.0
            for constraint in constraints:
                if not constraint.applies_to(tags):
                    continue
                ok, e = state.check_placement(
                    constraint, placed.node_id, tags, placed=True
                )
                if not ok:
                    extent += e
            if extent > 0:
                out.append((extent, placed.container_id))
        out.sort(reverse=True)
        return out

    def _best_single_move(
        self, state: ClusterState, constraints: Sequence[PlacementConstraint]
    ) -> Migration | None:
        """The highest-gain single migration, or None if nothing clears the
        migration cost."""
        for extent, container_id in self._violating_containers(state, constraints):
            placed = state.container(container_id)
            tags = placed.allocation.tags
            resource = placed.allocation.resource
            relevant = relevant_constraints(constraints, frozenset(tags))
            # Evaluate candidate nodes with the container *removed*, so its
            # own tags do not poison the hypothetical counts.
            removal = state.release(container_id)
            try:
                base_delta = state.placement_delta_violations(
                    relevant, placed.node_id, tags
                )
                best_node, best_delta = None, base_delta
                for node in state.topology:
                    if node.node_id == placed.node_id:
                        continue
                    if not node.can_fit(resource):
                        continue
                    delta = state.placement_delta_violations(
                        relevant, node.node_id, tags
                    )
                    if delta < best_delta:
                        best_delta = delta
                        best_node = node.node_id
            finally:
                state.allocate(
                    container_id, placed.node_id, removal.allocation.resource,
                    removal.allocation.tags, removal.allocation.app_id,
                    long_running=removal.allocation.long_running,
                )
            if best_node is None:
                continue
            gain = base_delta - best_delta
            if gain > self.migration_cost:
                return Migration(container_id, placed.node_id, best_node, gain)
        return None
