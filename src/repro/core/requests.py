"""Application submission API (paper §3, "LRA interface").

Two request flavours mirror Medea's routing rule:

* :class:`LRARequest` — containers plus placement constraints; handled by the
  LRA scheduler.
* :class:`TaskRequest` — plain resource ask (optionally with data-locality
  preferences); handled directly by the task-based scheduler.

Each LRA container request carries a tag set 𝒯r; the ``appID:<id>`` tag is
attached automatically (paper §4.2 footnote 5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..cluster.resources import Resource
from .constraints import CompoundConstraint, PlacementConstraint
from ..tags import app_id_tag, validate_tag

__all__ = ["ContainerRequest", "LRARequest", "TaskRequest", "next_app_id"]

_app_counter = itertools.count(1)


def next_app_id(prefix: str = "app") -> str:
    """Generate a process-unique application id."""
    return f"{prefix}-{next(_app_counter):05d}"


@dataclass(frozen=True)
class ContainerRequest:
    """One LRA container: resources plus its tag set 𝒯r."""

    container_id: str
    resource: Resource
    tags: frozenset[str]

    def __post_init__(self) -> None:
        for tag in self.tags:
            validate_tag(tag)

    def with_extra_tags(self, extra: Iterable[str]) -> "ContainerRequest":
        return ContainerRequest(self.container_id, self.resource, self.tags | frozenset(extra))


class LRARequest:
    """A long-running application submission.

    ``constraints`` are simple placement constraints; ``compound_constraints``
    are DNF combinations.  Container ids are namespaced by the application id
    and every container automatically receives the ``appID:`` tag.
    """

    def __init__(
        self,
        app_id: str,
        containers: Sequence[ContainerRequest],
        constraints: Sequence[PlacementConstraint] = (),
        compound_constraints: Sequence[CompoundConstraint] = (),
        *,
        priority: int = 0,
        queue: str = "default",
    ) -> None:
        if not app_id:
            raise ValueError("app_id must be non-empty")
        if not containers:
            raise ValueError(f"LRA {app_id} has no containers")
        self.app_id = app_id
        auto_tag = app_id_tag(app_id)
        self.containers: tuple[ContainerRequest, ...] = tuple(
            c.with_extra_tags([auto_tag]) for c in containers
        )
        seen: set[str] = set()
        for container in self.containers:
            if container.container_id in seen:
                raise ValueError(
                    f"duplicate container id {container.container_id!r} in LRA {app_id}"
                )
            seen.add(container.container_id)
        self.constraints: tuple[PlacementConstraint, ...] = tuple(constraints)
        self.compound_constraints: tuple[CompoundConstraint, ...] = tuple(
            compound_constraints
        )
        self.priority = priority
        self.queue = queue

    def total_resource(self) -> Resource:
        total = Resource(0, 0)
        for container in self.containers:
            total = total + container.resource
        return total

    def all_simple_constraints(self) -> tuple[PlacementConstraint, ...]:
        """Simple constraints plus every constraint inside compound DNFs
        (used for tag-popularity counting and validation)."""
        out = list(self.constraints)
        for compound in self.compound_constraints:
            out.extend(compound.all_constraints())
        return tuple(out)

    def __len__(self) -> int:
        return len(self.containers)

    def __repr__(self) -> str:
        return (
            f"LRARequest({self.app_id}, {len(self.containers)} containers, "
            f"{len(self.constraints)} constraints)"
        )


@dataclass(frozen=True)
class TaskRequest:
    """A short-running (task-based) container request.

    ``locality`` optionally lists preferred nodes/racks in YARN's
    node→rack→any relaxation order; no placement constraints are allowed —
    requests with constraints must go through the LRA API (§3).
    """

    task_id: str
    app_id: str
    resource: Resource
    locality: tuple[str, ...] = ()
    duration_s: float = 10.0
    queue: str = "default"
    priority: int = 0
