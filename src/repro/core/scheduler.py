"""LRA scheduler interface and shared result types.

Every LRA placement algorithm in this repo — Medea-ILP, the Medea-NC /
Medea-TP / Serial heuristics, J-Kube and J-Kube++ — implements
:class:`LRAScheduler`.  A scheduler *proposes* placements; it never performs
the actual allocation (that is the task-based scheduler's job, step 2→3 in
Fig. 4).  To let greedy algorithms see their own in-flight decisions, the
:class:`ScratchPlacements` helper tentatively applies placements to the live
cluster state and rolls every one of them back on exit.
"""

from __future__ import annotations

import abc
import inspect
import itertools
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..cluster.resources import Resource
from ..cluster.state import ClusterState
from ..obs.audit import DecisionAudit
from ..obs.events import EventKind
from ..obs.metrics import Metrics, SolverStats, get_metrics
from ..obs.spans import span
from ..obs.trace import get_tracer, request_context
from .constraint_manager import ConstraintManager
from .requests import ContainerRequest, LRARequest

__all__ = [
    "ContainerPlacement",
    "PlacementResult",
    "PlacementResponse",
    "PlacementService",
    "LRAScheduler",
    "ScratchPlacements",
    "feasible_nodes",
]


def feasible_nodes(state: ClusterState, demand: Resource) -> list[str]:
    """Ids of available nodes that can fit ``demand``, in topology order.

    The shared candidate-enumeration entry point for LRA schedulers: served
    by the state's incrementally-maintained
    :class:`~repro.cluster.index.CandidateIndex` (free-capacity buckets)
    instead of a full topology scan, but returning exactly the list the
    scan ``[n.node_id for n in state.topology if n.can_fit(demand)]``
    would — order included — so selection tie-breaks are unchanged.
    """
    return state.candidate_index().fit_node_ids(demand)


@dataclass(frozen=True)
class ContainerPlacement:
    """A proposed (container → node) decision."""

    app_id: str
    container_id: str
    node_id: str
    resource: Resource
    tags: frozenset[str]


@dataclass
class PlacementResult:
    """Outcome of one scheduler invocation over a batch of LRAs."""

    placements: list[ContainerPlacement] = field(default_factory=list)
    #: Applications that could not be fully placed this round (all-or-nothing
    #: semantics: none of their containers appear in ``placements``).
    rejected_apps: list[str] = field(default_factory=list)
    solve_time_s: float = 0.0
    #: Scheduler-reported objective value, if the algorithm computes one.
    objective: float | None = None
    #: MILP effort breakdown when an ILP backend produced this result
    #: (``None`` for the heuristic schedulers).
    solver_stats: SolverStats | None = None
    #: Decision audit (candidates considered, constraints that pruned them,
    #: objective terms) when the scheduler ran with auditing enabled.
    audit: DecisionAudit | None = None

    def placed_apps(self) -> set[str]:
        return {p.app_id for p in self.placements}

    def placements_of(self, app_id: str) -> list[ContainerPlacement]:
        return [p for p in self.placements if p.app_id == app_id]

    def __len__(self) -> int:
        return len(self.placements)


class LRAScheduler(abc.ABC):
    """Base class for LRA placement algorithms."""

    #: Human-readable algorithm name used in benchmark tables.
    name: str = "abstract"

    #: When True, :meth:`place` implementations that support auditing attach
    #: a :class:`~repro.obs.DecisionAudit` to their result.
    audit_enabled: bool = False

    #: "does this ``place`` accept ``now``?", cached per implementation
    #: function (not per class — a subclass may override with the legacy
    #: signature); supports the positional-compat shim.
    _place_accepts_now_cache: dict[object, bool] = {}

    @abc.abstractmethod
    def place(
        self,
        requests: Sequence[LRARequest],
        state: ClusterState,
        manager: ConstraintManager,
        *,
        now: float = 0.0,
    ) -> PlacementResult:
        """Compute placements for a batch of newly submitted LRAs.

        ``now`` is the logical submission clock of the invoking cycle,
        keyword-only by the unified clock-argument convention; pure batch
        algorithms may ignore it (it stamps trace events).

        Implementations must not leave any tentative allocation behind in
        ``state``; the returned placements are applied later by the
        task-based scheduler.
        """

    @classmethod
    def _accepts_now(cls) -> bool:
        func = cls.place
        cached = LRAScheduler._place_accepts_now_cache.get(func)
        if cached is None:
            try:
                parameters = inspect.signature(func).parameters
            except (TypeError, ValueError):  # pragma: no cover - exotic callables
                cached = False
            else:
                cached = "now" in parameters or any(
                    p.kind is inspect.Parameter.VAR_KEYWORD
                    for p in parameters.values()
                )
            LRAScheduler._place_accepts_now_cache[func] = cached
        return cached

    def _call_place(
        self,
        requests: Sequence[LRARequest],
        state: ClusterState,
        manager: ConstraintManager,
        now: float,
    ) -> PlacementResult:
        """Invoke :meth:`place`, tolerating pre-redesign overrides that do
        not yet accept the keyword-only ``now`` (deprecation shim)."""
        if type(self)._accepts_now():
            return self.place(requests, state, manager, now=now)
        warnings.warn(
            f"{type(self).__name__}.place() without the keyword-only 'now' "
            "parameter is deprecated; add '*, now: float = 0.0'",
            DeprecationWarning,
            stacklevel=3,
        )
        return self.place(requests, state, manager)

    def timed_place(
        self,
        requests: Sequence[LRARequest],
        state: ClusterState,
        manager: ConstraintManager,
        *,
        now: float = 0.0,
        metrics: Metrics | None = None,
        tracer=None,
    ) -> PlacementResult:
        """:meth:`place` wrapped with wall-clock measurement.

        The measurement is also recorded into the ambient (or given)
        :class:`~repro.obs.Metrics` registry under the
        ``scheduler_place_seconds`` timer, labelled with the algorithm name
        — the uniform channel Fig. 11a-style latency studies read — and a
        ``scheduler.place`` trace event is emitted when tracing is on
        (through ``tracer``, or the ambient one).
        """
        start = time.perf_counter()
        with span(f"place:{self.name}", tracer=tracer, time=now):
            result = self._call_place(requests, state, manager, now)
        result.solve_time_s = time.perf_counter() - start
        registry = metrics if metrics is not None else get_metrics()
        registry.timer("scheduler_place_seconds").observe(
            result.solve_time_s, scheduler=self.name
        )
        if result.placements:
            registry.counter("scheduler_containers_placed_total").inc(
                len(result.placements), scheduler=self.name
            )
        if result.rejected_apps:
            registry.counter("scheduler_apps_rejected_total").inc(
                len(result.rejected_apps), scheduler=self.name
            )
        if tracer is None:
            tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(
                EventKind.SCHEDULER_PLACE,
                time=now,
                data={
                    "scheduler": self.name,
                    "batch": len(requests),
                    "placements": len(result.placements),
                    "rejected": sorted(result.rejected_apps),
                },
                wall={"solve_time_s": result.solve_time_s},
            )
            if result.audit is not None:
                # The full decision audit rides the trace so post-hoc
                # forensics (repro diff's causal placement axis) can
                # explain why a placement flipped between two runs.  The
                # payload is deterministic: candidates, prune reasons,
                # and score terms all derive from simulated state.
                tracer.emit(
                    EventKind.SCHEDULER_AUDIT,
                    time=now,
                    data=result.audit.to_dict(),
                )
        return result


#: Reason strings :class:`PlacementService` reports for refused requests.
REJECT_OVERLOAD = "overload"
REJECT_UNPLACEABLE = "unplaceable"

#: Metric names the placement-request path records (the latency-under-load
#: plane's gated series come from the histogram).
PLACE_REQUEST_HISTOGRAM = "place_request_seconds"
PLACE_REQUEST_COUNTER = "place_requests_total"


@dataclass
class PlacementResponse:
    """Outcome of one placement request through :class:`PlacementService`."""

    request_id: str
    app_id: str
    placed: bool
    #: ``container_id -> node_id`` for a placed request (empty otherwise).
    nodes: dict[str, str] = field(default_factory=dict)
    #: Why the request was refused (``None`` when placed):
    #: :data:`REJECT_OVERLOAD` at admission, :data:`REJECT_UNPLACEABLE`
    #: when the scheduler could not fit it.
    reason: str | None = None
    #: End-to-end wall latency (admission -> response), seconds.
    latency_s: float = 0.0
    #: Phase breakdown: ``queue_s`` (waiting for the placement lock) and
    #: ``place_s`` (inside the scheduler).
    queue_s: float = 0.0
    place_s: float = 0.0

    def to_obj(self) -> dict[str, Any]:
        """JSON-safe dict (the ``POST /place`` response body)."""
        return {
            "request_id": self.request_id,
            "app_id": self.app_id,
            "placed": self.placed,
            "nodes": {k: self.nodes[k] for k in sorted(self.nodes)},
            "reason": self.reason,
            "latency_s": self.latency_s,
            "queue_s": self.queue_s,
            "place_s": self.place_s,
        }


class PlacementService:
    """The placement-request hot path: admission → queue → placement.

    The seed of the Medea-as-a-service daemon (ROADMAP item 2): one
    request = one LRA submission placed synchronously by an
    :class:`LRAScheduler` over a shared :class:`ClusterState`.  Placement
    is serialized by a lock (the paper's hot path is a single heuristic
    pass; queue time under contention is part of the latency being
    measured), admission refuses work beyond ``max_pending`` waiters, and
    every request runs inside a :func:`~repro.obs.trace.request_context`
    so its ``request.*`` lifecycle events and nested spans (placement →
    solver) all carry the request id.

    Latency telemetry goes to the ``place_request_seconds``
    :class:`~repro.obs.metrics.Histogram` (per-outcome label) and the
    ``place_requests_total`` counter; ``/metrics`` exposes the histogram
    as Prometheus cumulative buckets.

    ``retain=False`` (default) measures placement latency over a static
    cluster: proposals are not applied, so offered load can run
    indefinitely without filling the cluster.  ``retain=True`` commits
    each placement (fill-up experiments).  ``extra_place_delay_s`` injects
    an artificial slowdown into the placement section — the knob the
    bench-compare regression gate is validated against.
    """

    def __init__(
        self,
        state: ClusterState,
        scheduler: LRAScheduler,
        manager: ConstraintManager | None = None,
        *,
        max_pending: int = 128,
        retain: bool = False,
        metrics: Metrics | None = None,
        tracer=None,
        extra_place_delay_s: float = 0.0,
    ) -> None:
        self.state = state
        self.scheduler = scheduler
        self.manager = (
            manager if manager is not None else ConstraintManager(state.topology)
        )
        self.max_pending = max_pending
        self.retain = retain
        self.metrics = metrics
        self.tracer = tracer
        self.extra_place_delay_s = extra_place_delay_s
        self._place_lock = threading.Lock()
        self._meta_lock = threading.Lock()
        self._pending = 0
        self._ids = itertools.count(1)
        self._start = time.perf_counter()
        self.requests_seen = 0
        self.requests_placed = 0
        self.requests_rejected = 0

    def _registry(self) -> Metrics:
        return self.metrics if self.metrics is not None else get_metrics()

    def _tracer(self):
        return self.tracer if self.tracer is not None else get_tracer()

    def _finish(
        self,
        response: PlacementResponse,
        *,
        now: float,
        tracer,
        t_admitted: float,
    ) -> PlacementResponse:
        response.latency_s = time.perf_counter() - t_admitted
        registry = self._registry()
        outcome = "placed" if response.placed else (response.reason or "rejected")
        registry.histogram(PLACE_REQUEST_HISTOGRAM).observe(
            response.latency_s, outcome=outcome
        )
        registry.counter(PLACE_REQUEST_COUNTER).inc(outcome=outcome)
        if tracer.enabled:
            tracer.emit(
                EventKind.REQUEST_DONE,
                time=now,
                data={
                    "app_id": response.app_id,
                    "placed": response.placed,
                    "reason": response.reason,
                },
                wall={
                    "latency_s": response.latency_s,
                    "queue_s": response.queue_s,
                    "place_s": response.place_s,
                },
            )
        return response

    def handle(
        self, request: LRARequest, *, now: float | None = None
    ) -> PlacementResponse:
        """Admit, queue, and place one request; never raises for
        placement-level failures (the response carries the outcome).

        ``now`` is the request's logical arrival clock (the load
        generator passes its deterministic scheduled arrival time);
        defaults to wall seconds since service start.
        """
        t_admitted = time.perf_counter()
        if now is None:
            now = t_admitted - self._start
        with self._meta_lock:
            self.requests_seen += 1
            request_id = f"req-{next(self._ids):08d}"
            admitted = self._pending < self.max_pending
            if admitted:
                self._pending += 1
        tracer = self._tracer()
        with request_context(request_id):
            if not admitted:
                with self._meta_lock:
                    self.requests_rejected += 1
                if tracer.enabled:
                    tracer.emit(
                        EventKind.REQUEST_REJECT,
                        time=now,
                        data={
                            "app_id": request.app_id,
                            "reason": REJECT_OVERLOAD,
                            "pending": self.max_pending,
                        },
                    )
                return self._finish(
                    PlacementResponse(
                        request_id=request_id,
                        app_id=request.app_id,
                        placed=False,
                        reason=REJECT_OVERLOAD,
                    ),
                    now=now,
                    tracer=tracer,
                    t_admitted=t_admitted,
                )
            try:
                if tracer.enabled:
                    tracer.emit(
                        EventKind.REQUEST_SUBMIT,
                        time=now,
                        data={
                            "app_id": request.app_id,
                            "containers": len(request.containers),
                        },
                    )
                t_queue = time.perf_counter()
                with self._place_lock:
                    queue_s = time.perf_counter() - t_queue
                    t_place = time.perf_counter()
                    placed = False
                    with span("request", tracer=tracer, time=now):
                        self.manager.register_application(request)
                        try:
                            if self.extra_place_delay_s > 0.0:
                                time.sleep(self.extra_place_delay_s)
                            result = self.scheduler.timed_place(
                                [request],
                                self.state,
                                self.manager,
                                now=now,
                                metrics=self.metrics,
                                tracer=self.tracer,
                            )
                            placed = request.app_id in result.placed_apps()
                            if placed and self.retain:
                                for p in result.placements:
                                    self.state.allocate(
                                        p.container_id,
                                        p.node_id,
                                        p.resource,
                                        p.tags,
                                        p.app_id,
                                        long_running=True,
                                    )
                        finally:
                            # Retained+placed apps keep their constraints
                            # registered (they now occupy the cluster);
                            # everything else leaves no residue.
                            if not (placed and self.retain):
                                self.manager.unregister_application(
                                    request.app_id
                                )
                    place_s = time.perf_counter() - t_place
            finally:
                with self._meta_lock:
                    self._pending -= 1
            nodes = {
                p.container_id: p.node_id
                for p in result.placements
                if p.app_id == request.app_id
            }
            with self._meta_lock:
                if placed:
                    self.requests_placed += 1
                else:
                    self.requests_rejected += 1
            if tracer.enabled:
                tracer.emit(
                    EventKind.REQUEST_PLACE,
                    time=now,
                    data={
                        "app_id": request.app_id,
                        "placed": placed,
                        "nodes": {k: nodes[k] for k in sorted(nodes)},
                    },
                    wall={"queue_s": queue_s, "place_s": place_s},
                )
            return self._finish(
                PlacementResponse(
                    request_id=request_id,
                    app_id=request.app_id,
                    placed=placed,
                    nodes=nodes,
                    reason=None if placed else REJECT_UNPLACEABLE,
                    queue_s=queue_s,
                    place_s=place_s,
                ),
                now=now,
                tracer=tracer,
                t_admitted=t_admitted,
            )

    def stats(self) -> dict[str, int]:
        with self._meta_lock:
            return {
                "seen": self.requests_seen,
                "placed": self.requests_placed,
                "rejected": self.requests_rejected,
                "pending": self._pending,
            }


class ScratchPlacements:
    """Tentative allocations on the live state, rolled back on exit.

    Greedy schedulers place containers one at a time and need each decision
    to be visible to the next (tag cardinalities, free resources).  Rather
    than duplicating the cluster's incremental tag bookkeeping in an overlay,
    they apply decisions directly to the state under this guard::

        with ScratchPlacements(state) as scratch:
            scratch.place(request_container, node_id, app_id)
            ...
        # state is pristine again here

    ``commit=False`` is unconditional: even on success the allocations are
    rolled back, and the caller re-derives the proposal list from
    :attr:`placements`.
    """

    def __init__(self, state: ClusterState) -> None:
        self._state = state
        self.placements: list[ContainerPlacement] = []

    def __enter__(self) -> "ScratchPlacements":
        return self

    def place(self, container: ContainerRequest, node_id: str, app_id: str) -> None:
        self._state.allocate(
            container.container_id,
            node_id,
            container.resource,
            container.tags,
            app_id,
            long_running=True,
        )
        self.placements.append(
            ContainerPlacement(
                app_id=app_id,
                container_id=container.container_id,
                node_id=node_id,
                resource=container.resource,
                tags=container.tags,
            )
        )

    def unplace_app(self, app_id: str) -> None:
        """Roll back every tentative placement of one application (used when
        all-or-nothing placement fails midway)."""
        keep = []
        for placement in self.placements:
            if placement.app_id == app_id:
                self._state.release(placement.container_id)
            else:
                keep.append(placement)
        self.placements = keep

    def __exit__(self, exc_type, exc, tb) -> None:
        for placement in self.placements:
            self._state.release(placement.container_id)
