"""LRA scheduler interface and shared result types.

Every LRA placement algorithm in this repo — Medea-ILP, the Medea-NC /
Medea-TP / Serial heuristics, J-Kube and J-Kube++ — implements
:class:`LRAScheduler`.  A scheduler *proposes* placements; it never performs
the actual allocation (that is the task-based scheduler's job, step 2→3 in
Fig. 4).  To let greedy algorithms see their own in-flight decisions, the
:class:`ScratchPlacements` helper tentatively applies placements to the live
cluster state and rolls every one of them back on exit.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..cluster.resources import Resource
from ..cluster.state import ClusterState
from ..solver import SolverStats
from .constraint_manager import ConstraintManager
from .requests import ContainerRequest, LRARequest

__all__ = [
    "ContainerPlacement",
    "PlacementResult",
    "LRAScheduler",
    "ScratchPlacements",
]


@dataclass(frozen=True)
class ContainerPlacement:
    """A proposed (container → node) decision."""

    app_id: str
    container_id: str
    node_id: str
    resource: Resource
    tags: frozenset[str]


@dataclass
class PlacementResult:
    """Outcome of one scheduler invocation over a batch of LRAs."""

    placements: list[ContainerPlacement] = field(default_factory=list)
    #: Applications that could not be fully placed this round (all-or-nothing
    #: semantics: none of their containers appear in ``placements``).
    rejected_apps: list[str] = field(default_factory=list)
    solve_time_s: float = 0.0
    #: Scheduler-reported objective value, if the algorithm computes one.
    objective: float | None = None
    #: MILP effort breakdown when an ILP backend produced this result
    #: (``None`` for the heuristic schedulers).
    solver_stats: SolverStats | None = None

    def placed_apps(self) -> set[str]:
        return {p.app_id for p in self.placements}

    def placements_of(self, app_id: str) -> list[ContainerPlacement]:
        return [p for p in self.placements if p.app_id == app_id]

    def __len__(self) -> int:
        return len(self.placements)


class LRAScheduler(abc.ABC):
    """Base class for LRA placement algorithms."""

    #: Human-readable algorithm name used in benchmark tables.
    name: str = "abstract"

    @abc.abstractmethod
    def place(
        self,
        requests: Sequence[LRARequest],
        state: ClusterState,
        manager: ConstraintManager,
    ) -> PlacementResult:
        """Compute placements for a batch of newly submitted LRAs.

        Implementations must not leave any tentative allocation behind in
        ``state``; the returned placements are applied later by the
        task-based scheduler.
        """

    def timed_place(
        self,
        requests: Sequence[LRARequest],
        state: ClusterState,
        manager: ConstraintManager,
    ) -> PlacementResult:
        """:meth:`place` wrapped with wall-clock measurement."""
        start = time.perf_counter()
        result = self.place(requests, state, manager)
        result.solve_time_s = time.perf_counter() - start
        return result


class ScratchPlacements:
    """Tentative allocations on the live state, rolled back on exit.

    Greedy schedulers place containers one at a time and need each decision
    to be visible to the next (tag cardinalities, free resources).  Rather
    than duplicating the cluster's incremental tag bookkeeping in an overlay,
    they apply decisions directly to the state under this guard::

        with ScratchPlacements(state) as scratch:
            scratch.place(request_container, node_id, app_id)
            ...
        # state is pristine again here

    ``commit=False`` is unconditional: even on success the allocations are
    rolled back, and the caller re-derives the proposal list from
    :attr:`placements`.
    """

    def __init__(self, state: ClusterState) -> None:
        self._state = state
        self.placements: list[ContainerPlacement] = []

    def __enter__(self) -> "ScratchPlacements":
        return self

    def place(self, container: ContainerRequest, node_id: str, app_id: str) -> None:
        self._state.allocate(
            container.container_id,
            node_id,
            container.resource,
            container.tags,
            app_id,
            long_running=True,
        )
        self.placements.append(
            ContainerPlacement(
                app_id=app_id,
                container_id=container.container_id,
                node_id=node_id,
                resource=container.resource,
                tags=container.tags,
            )
        )

    def unplace_app(self, app_id: str) -> None:
        """Roll back every tentative placement of one application (used when
        all-or-nothing placement fails midway)."""
        keep = []
        for placement in self.placements:
            if placement.app_id == app_id:
                self._state.release(placement.container_id)
            else:
                keep.append(placement)
        self.placements = keep

    def __exit__(self, exc_type, exc, tb) -> None:
        for placement in self.placements:
            self._state.release(placement.container_id)
