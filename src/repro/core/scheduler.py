"""LRA scheduler interface and shared result types.

Every LRA placement algorithm in this repo — Medea-ILP, the Medea-NC /
Medea-TP / Serial heuristics, J-Kube and J-Kube++ — implements
:class:`LRAScheduler`.  A scheduler *proposes* placements; it never performs
the actual allocation (that is the task-based scheduler's job, step 2→3 in
Fig. 4).  To let greedy algorithms see their own in-flight decisions, the
:class:`ScratchPlacements` helper tentatively applies placements to the live
cluster state and rolls every one of them back on exit.
"""

from __future__ import annotations

import abc
import inspect
import time
import warnings
from dataclasses import dataclass, field
from typing import Sequence

from ..cluster.resources import Resource
from ..cluster.state import ClusterState
from ..obs.audit import DecisionAudit
from ..obs.events import EventKind
from ..obs.metrics import Metrics, SolverStats, get_metrics
from ..obs.spans import span
from ..obs.trace import get_tracer
from .constraint_manager import ConstraintManager
from .requests import ContainerRequest, LRARequest

__all__ = [
    "ContainerPlacement",
    "PlacementResult",
    "LRAScheduler",
    "ScratchPlacements",
    "feasible_nodes",
]


def feasible_nodes(state: ClusterState, demand: Resource) -> list[str]:
    """Ids of available nodes that can fit ``demand``, in topology order.

    The shared candidate-enumeration entry point for LRA schedulers: served
    by the state's incrementally-maintained
    :class:`~repro.cluster.index.CandidateIndex` (free-capacity buckets)
    instead of a full topology scan, but returning exactly the list the
    scan ``[n.node_id for n in state.topology if n.can_fit(demand)]``
    would — order included — so selection tie-breaks are unchanged.
    """
    return state.candidate_index().fit_node_ids(demand)


@dataclass(frozen=True)
class ContainerPlacement:
    """A proposed (container → node) decision."""

    app_id: str
    container_id: str
    node_id: str
    resource: Resource
    tags: frozenset[str]


@dataclass
class PlacementResult:
    """Outcome of one scheduler invocation over a batch of LRAs."""

    placements: list[ContainerPlacement] = field(default_factory=list)
    #: Applications that could not be fully placed this round (all-or-nothing
    #: semantics: none of their containers appear in ``placements``).
    rejected_apps: list[str] = field(default_factory=list)
    solve_time_s: float = 0.0
    #: Scheduler-reported objective value, if the algorithm computes one.
    objective: float | None = None
    #: MILP effort breakdown when an ILP backend produced this result
    #: (``None`` for the heuristic schedulers).
    solver_stats: SolverStats | None = None
    #: Decision audit (candidates considered, constraints that pruned them,
    #: objective terms) when the scheduler ran with auditing enabled.
    audit: DecisionAudit | None = None

    def placed_apps(self) -> set[str]:
        return {p.app_id for p in self.placements}

    def placements_of(self, app_id: str) -> list[ContainerPlacement]:
        return [p for p in self.placements if p.app_id == app_id]

    def __len__(self) -> int:
        return len(self.placements)


class LRAScheduler(abc.ABC):
    """Base class for LRA placement algorithms."""

    #: Human-readable algorithm name used in benchmark tables.
    name: str = "abstract"

    #: When True, :meth:`place` implementations that support auditing attach
    #: a :class:`~repro.obs.DecisionAudit` to their result.
    audit_enabled: bool = False

    #: "does this ``place`` accept ``now``?", cached per implementation
    #: function (not per class — a subclass may override with the legacy
    #: signature); supports the positional-compat shim.
    _place_accepts_now_cache: dict[object, bool] = {}

    @abc.abstractmethod
    def place(
        self,
        requests: Sequence[LRARequest],
        state: ClusterState,
        manager: ConstraintManager,
        *,
        now: float = 0.0,
    ) -> PlacementResult:
        """Compute placements for a batch of newly submitted LRAs.

        ``now`` is the logical submission clock of the invoking cycle,
        keyword-only by the unified clock-argument convention; pure batch
        algorithms may ignore it (it stamps trace events).

        Implementations must not leave any tentative allocation behind in
        ``state``; the returned placements are applied later by the
        task-based scheduler.
        """

    @classmethod
    def _accepts_now(cls) -> bool:
        func = cls.place
        cached = LRAScheduler._place_accepts_now_cache.get(func)
        if cached is None:
            try:
                parameters = inspect.signature(func).parameters
            except (TypeError, ValueError):  # pragma: no cover - exotic callables
                cached = False
            else:
                cached = "now" in parameters or any(
                    p.kind is inspect.Parameter.VAR_KEYWORD
                    for p in parameters.values()
                )
            LRAScheduler._place_accepts_now_cache[func] = cached
        return cached

    def _call_place(
        self,
        requests: Sequence[LRARequest],
        state: ClusterState,
        manager: ConstraintManager,
        now: float,
    ) -> PlacementResult:
        """Invoke :meth:`place`, tolerating pre-redesign overrides that do
        not yet accept the keyword-only ``now`` (deprecation shim)."""
        if type(self)._accepts_now():
            return self.place(requests, state, manager, now=now)
        warnings.warn(
            f"{type(self).__name__}.place() without the keyword-only 'now' "
            "parameter is deprecated; add '*, now: float = 0.0'",
            DeprecationWarning,
            stacklevel=3,
        )
        return self.place(requests, state, manager)

    def timed_place(
        self,
        requests: Sequence[LRARequest],
        state: ClusterState,
        manager: ConstraintManager,
        *,
        now: float = 0.0,
        metrics: Metrics | None = None,
        tracer=None,
    ) -> PlacementResult:
        """:meth:`place` wrapped with wall-clock measurement.

        The measurement is also recorded into the ambient (or given)
        :class:`~repro.obs.Metrics` registry under the
        ``scheduler_place_seconds`` timer, labelled with the algorithm name
        — the uniform channel Fig. 11a-style latency studies read — and a
        ``scheduler.place`` trace event is emitted when tracing is on
        (through ``tracer``, or the ambient one).
        """
        start = time.perf_counter()
        with span(f"place:{self.name}", tracer=tracer, time=now):
            result = self._call_place(requests, state, manager, now)
        result.solve_time_s = time.perf_counter() - start
        registry = metrics if metrics is not None else get_metrics()
        registry.timer("scheduler_place_seconds").observe(
            result.solve_time_s, scheduler=self.name
        )
        if result.placements:
            registry.counter("scheduler_containers_placed_total").inc(
                len(result.placements), scheduler=self.name
            )
        if result.rejected_apps:
            registry.counter("scheduler_apps_rejected_total").inc(
                len(result.rejected_apps), scheduler=self.name
            )
        if tracer is None:
            tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(
                EventKind.SCHEDULER_PLACE,
                time=now,
                data={
                    "scheduler": self.name,
                    "batch": len(requests),
                    "placements": len(result.placements),
                    "rejected": sorted(result.rejected_apps),
                },
                wall={"solve_time_s": result.solve_time_s},
            )
            if result.audit is not None:
                # The full decision audit rides the trace so post-hoc
                # forensics (repro diff's causal placement axis) can
                # explain why a placement flipped between two runs.  The
                # payload is deterministic: candidates, prune reasons,
                # and score terms all derive from simulated state.
                tracer.emit(
                    EventKind.SCHEDULER_AUDIT,
                    time=now,
                    data=result.audit.to_dict(),
                )
        return result


class ScratchPlacements:
    """Tentative allocations on the live state, rolled back on exit.

    Greedy schedulers place containers one at a time and need each decision
    to be visible to the next (tag cardinalities, free resources).  Rather
    than duplicating the cluster's incremental tag bookkeeping in an overlay,
    they apply decisions directly to the state under this guard::

        with ScratchPlacements(state) as scratch:
            scratch.place(request_container, node_id, app_id)
            ...
        # state is pristine again here

    ``commit=False`` is unconditional: even on success the allocations are
    rolled back, and the caller re-derives the proposal list from
    :attr:`placements`.
    """

    def __init__(self, state: ClusterState) -> None:
        self._state = state
        self.placements: list[ContainerPlacement] = []

    def __enter__(self) -> "ScratchPlacements":
        return self

    def place(self, container: ContainerRequest, node_id: str, app_id: str) -> None:
        self._state.allocate(
            container.container_id,
            node_id,
            container.resource,
            container.tags,
            app_id,
            long_running=True,
        )
        self.placements.append(
            ContainerPlacement(
                app_id=app_id,
                container_id=container.container_id,
                node_id=node_id,
                resource=container.resource,
                tags=container.tags,
            )
        )

    def unplace_app(self, app_id: str) -> None:
        """Roll back every tentative placement of one application (used when
        all-or-nothing placement fails midway)."""
        keep = []
        for placement in self.placements:
            if placement.app_id == app_id:
                self._state.release(placement.container_id)
            else:
                keep.append(placement)
        self.placements = keep

    def __exit__(self, exc_type, exc, tb) -> None:
        for placement in self.placements:
            self._state.release(placement.container_id)
