"""Machine-unavailability traces and placement replay (resilience study)."""

from __future__ import annotations

from .replay import max_unavailability_series, replay_trace, su_distribution
from .sutrace import TraceConfig, UnavailabilityTrace, generate_trace

__all__ = [
    "max_unavailability_series",
    "replay_trace",
    "su_distribution",
    "TraceConfig",
    "UnavailabilityTrace",
    "generate_trace",
]
