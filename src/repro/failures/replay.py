"""Replay an unavailability trace against LRA placements (§7.3, Fig. 8).

Given where each LRA's containers landed (which service unit each container
is in) and an hourly per-service-unit unavailability trace, compute — for
every hour — each LRA's expected fraction of unavailable containers, and
report the paper's metric: the per-hour *maximum* unavailability across
LRAs, whose CDF over hours is Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..cluster.state import ClusterState
from .sutrace import UnavailabilityTrace

__all__ = ["su_distribution", "replay_trace", "max_unavailability_series"]


def su_distribution(
    state: ClusterState, app_id: str, group_name: str = "service_unit"
) -> dict[int, int]:
    """How many of ``app_id``'s containers sit in each service unit
    (service-unit index -> container count)."""
    distribution: dict[int, int] = {}
    for placed in state.containers_of_app(app_id):
        indices = state.topology.set_indices_for_node(group_name, placed.node_id)
        if not indices:
            raise ValueError(
                f"node {placed.node_id} belongs to no set of group {group_name!r}"
            )
        su = indices[0]
        distribution[su] = distribution.get(su, 0) + 1
    return distribution


def replay_trace(
    app_distributions: Mapping[str, Mapping[int, int]],
    trace: UnavailabilityTrace,
) -> dict[str, list[float]]:
    """Per-app hourly expected container-unavailability fractions.

    For app *a* with ``n_s`` containers in service unit *s*, the expected
    unavailable fraction at hour *h* is ``Σ_s n_s·f[h][s] / Σ_s n_s``.
    """
    out: dict[str, list[float]] = {}
    for app_id, distribution in app_distributions.items():
        total = sum(distribution.values())
        if total == 0:
            raise ValueError(f"app {app_id} has no containers")
        series = []
        for hour in range(trace.hours):
            unavailable = sum(
                count * trace.fraction(hour, su)
                for su, count in distribution.items()
            )
            series.append(unavailable / total)
        out[app_id] = series
    return out


def max_unavailability_series(
    app_distributions: Mapping[str, Mapping[int, int]],
    trace: UnavailabilityTrace,
) -> list[float]:
    """The Fig. 8 series: for each hour, the highest unavailability fraction
    across all LRAs."""
    per_app = replay_trace(app_distributions, trace)
    series = []
    for hour in range(trace.hours):
        series.append(max(values[hour] for values in per_app.values()))
    return series
