"""Service-unit unavailability trace generator (Fig. 3 substitute).

The paper plots machine unavailability in a Microsoft cluster over days:
per-service-unit unavailability is usually below 3% but spikes to 25% or
even 100%, unavailability is strongly correlated *within* a service unit,
and service units fail *asynchronously*.  Those three observations are the
invariants of this generator: each service unit follows an independent
three-state Markov chain (healthy / degraded / down) sampled hourly, and
all machines of a unit share the unit's hourly unavailability fraction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["TraceConfig", "UnavailabilityTrace", "generate_trace"]

_HEALTHY, _DEGRADED, _DOWN = 0, 1, 2


@dataclass(frozen=True)
class TraceConfig:
    """Markov-chain parameters (per-hour transition probabilities)."""

    p_healthy_to_degraded: float = 0.02
    p_healthy_to_down: float = 0.003
    p_degraded_to_healthy: float = 0.30
    p_degraded_to_down: float = 0.05
    p_down_to_healthy: float = 0.50
    #: Unavailability fraction ranges per state.
    healthy_range: tuple[float, float] = (0.0, 0.03)
    degraded_range: tuple[float, float] = (0.05, 0.30)
    down_range: tuple[float, float] = (0.60, 1.00)


@dataclass
class UnavailabilityTrace:
    """Hourly unavailability fractions, one row per hour, one column per
    service unit."""

    service_units: int
    hours: int
    #: fractions[hour][su] in [0, 1].
    fractions: list[list[float]]
    #: Machines per service unit (for weighting the cluster-wide total).
    unit_sizes: list[int] = field(default_factory=list)

    def fraction(self, hour: int, su: int) -> float:
        return self.fractions[hour][su]

    def total(self, hour: int) -> float:
        """Cluster-wide unavailable-machine fraction at ``hour``."""
        sizes = self.unit_sizes or [1] * self.service_units
        weight = sum(sizes)
        return sum(
            self.fractions[hour][su] * sizes[su] for su in range(self.service_units)
        ) / weight

    def series_for_unit(self, su: int) -> list[float]:
        return [self.fractions[h][su] for h in range(self.hours)]

    def total_series(self) -> list[float]:
        return [self.total(h) for h in range(self.hours)]


def generate_trace(
    service_units: int = 25,
    hours: int = 15 * 24,
    *,
    seed: int = 0,
    config: TraceConfig = TraceConfig(),
    unit_sizes: Sequence[int] | None = None,
) -> UnavailabilityTrace:
    """Generate an hourly unavailability trace for ``service_units`` units."""
    if service_units < 1 or hours < 1:
        raise ValueError("need at least one service unit and one hour")
    rng = random.Random(seed)
    states = [_HEALTHY] * service_units
    fractions: list[list[float]] = []
    ranges = {
        _HEALTHY: config.healthy_range,
        _DEGRADED: config.degraded_range,
        _DOWN: config.down_range,
    }
    for _hour in range(hours):
        row: list[float] = []
        for su in range(service_units):
            states[su] = _step(states[su], rng, config)
            low, high = ranges[states[su]]
            row.append(rng.uniform(low, high))
        fractions.append(row)
    sizes = list(unit_sizes) if unit_sizes is not None else [1] * service_units
    if len(sizes) != service_units:
        raise ValueError("unit_sizes length must equal service_units")
    return UnavailabilityTrace(service_units, hours, fractions, sizes)


def _step(state: int, rng: random.Random, config: TraceConfig) -> int:
    roll = rng.random()
    if state == _HEALTHY:
        if roll < config.p_healthy_to_down:
            return _DOWN
        if roll < config.p_healthy_to_down + config.p_healthy_to_degraded:
            return _DEGRADED
        return _HEALTHY
    if state == _DEGRADED:
        if roll < config.p_degraded_to_down:
            return _DOWN
        if roll < config.p_degraded_to_down + config.p_degraded_to_healthy:
            return _HEALTHY
        return _DEGRADED
    # down
    if roll < config.p_down_to_healthy:
        return _HEALTHY
    return _DOWN
