"""Evaluation metrics: violations, fragmentation, load balance, latency stats."""

from __future__ import annotations

# The statistics helpers live in repro.obs.stats since the metrics worlds
# were unified; this package re-exports them (repro.metrics.stats is the
# warning deprecation shim for the old submodule path).
from ..obs.stats import (
    BoxStats,
    EmptyDataError,
    cdf_points,
    coefficient_of_variation,
    percentile,
)
from .violations import ViolationReport, evaluate_violations

__all__ = [
    "BoxStats",
    "EmptyDataError",
    "cdf_points",
    "coefficient_of_variation",
    "percentile",
    "ViolationReport",
    "evaluate_violations",
]
