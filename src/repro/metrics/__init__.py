"""Deprecated package: everything here moved into ``repro.obs``.

The statistics helpers live in :mod:`repro.obs.stats` and the violation
auditor in :mod:`repro.obs.violations` since the metrics worlds were
unified.  This package is a pure re-export shim with no logic of its own:
each attribute access emits one :class:`DeprecationWarning` naming the new
home and forwards to the very same object.  Import from ``repro`` (the
root re-exports ``BoxStats`` / ``evaluate_violations``) or from
``repro.obs`` instead.
"""

from __future__ import annotations

import importlib
import warnings

#: old name -> new module path (all under repro.obs).
_MOVED = {
    "BoxStats": "repro.obs.stats",
    "EmptyDataError": "repro.obs.stats",
    "percentile": "repro.obs.stats",
    "cdf_points": "repro.obs.stats",
    "coefficient_of_variation": "repro.obs.stats",
    "ViolationRecord": "repro.obs.violations",
    "ViolationReport": "repro.obs.violations",
    "evaluate_violations": "repro.obs.violations",
}

__all__ = sorted(_MOVED)


def __getattr__(name: str):
    new_home = _MOVED.get(name)
    if new_home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"repro.metrics.{name} has moved to {new_home}; "
        f"import it from repro or {new_home}",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(new_home), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_MOVED))
