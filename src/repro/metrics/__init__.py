"""Evaluation metrics: violations, fragmentation, load balance, latency stats."""

from __future__ import annotations

from .stats import (
    BoxStats,
    EmptyDataError,
    cdf_points,
    coefficient_of_variation,
    percentile,
)
from .violations import ViolationReport, evaluate_violations

__all__ = [
    "BoxStats",
    "EmptyDataError",
    "cdf_points",
    "coefficient_of_variation",
    "percentile",
    "ViolationReport",
    "evaluate_violations",
]
