"""Deprecated location: the statistics helpers moved to ``repro.obs.stats``.

This shim keeps ``from repro.metrics.stats import BoxStats`` working (with a
:class:`DeprecationWarning`); import from :mod:`repro.metrics` or
:mod:`repro.obs.stats` instead.
"""

from __future__ import annotations

import warnings

from ..obs import stats as _stats

_MOVED = (
    "BoxStats",
    "EmptyDataError",
    "percentile",
    "cdf_points",
    "coefficient_of_variation",
)

__all__ = list(_MOVED)


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.metrics.stats.{name} has moved to repro.obs.stats; "
            "import it from repro.metrics or repro.obs.stats",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_stats, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_MOVED))
