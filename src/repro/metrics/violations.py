"""Deprecated location: the violation auditor moved to
``repro.obs.violations``.

This shim keeps ``from repro.metrics.violations import evaluate_violations``
working (with a :class:`DeprecationWarning`); import from ``repro`` or
:mod:`repro.obs.violations` instead.
"""

from __future__ import annotations

import warnings

_MOVED = ("ViolationRecord", "ViolationReport", "evaluate_violations")

__all__ = list(_MOVED)


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.metrics.violations.{name} has moved to "
            "repro.obs.violations; import it from repro or "
            "repro.obs.violations",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..obs import violations as _violations

        return getattr(_violations, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_MOVED))
