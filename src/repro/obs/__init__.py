"""``repro.obs`` — the unified observability layer.

One subsystem, three capabilities (ISSUE 2 / the paper's §7 evaluation
substrate):

* **Tracing** — :class:`Tracer` emits typed, deterministic
  :class:`TraceEvent` records (simulated-time ordered, volatile wall-clock
  fields segregated under ``"wall"``) to :class:`JsonlSink` /
  :class:`MemorySink` sinks.  Zero-cost when disabled: call sites guard on
  ``tracer.enabled``.
* **Metrics** — a :class:`Metrics` registry of labelled counters, gauges,
  and timers with a deterministic :meth:`~Metrics.snapshot` API.
  :class:`SolverStats` (formerly ``repro.solver.SolverStats``) is one of
  its record types.
* **Decision audit** — :class:`DecisionAudit` attached to
  ``PlacementResult`` explains each placement: candidates considered,
  constraints that pruned them, and the winning score/objective terms.

Built on top of those (ISSUE 3 / the paper's §7 evaluation signals):

* **Timeline** — :class:`TimelineAggregator` folds a trace (live sink or
  post-hoc JSONL) into bounded-memory per-tick series: utilization,
  queue depths, container churn, solver latency, violations.
* **SLO monitor** — :class:`SLOMonitor` judges declarative
  :class:`SLORule` thresholds against a timeline, emitting typed
  ``slo.breach`` events and a run-level verdict.
* **Replay** — :func:`replay_jsonl` reconstructs cluster state from the
  event stream and cross-checks every recorded ``sim.state_hash``,
  reporting the first divergent tick.

The **live plane** (ISSUE 5) — the same signals while the run is still
in flight, zero-cost when disabled like everything else:

* **Telemetry endpoint** — :class:`TelemetryServer` (``repro.obs.serve``)
  serves ``/metrics`` (Prometheus text exposition of the live
  :class:`Metrics` registry), ``/healthz`` (503 once run progress stalls
  past a wall-clock deadline) and ``/snapshot`` (the dashboard JSON from a
  live :class:`TimelineAggregator` sink); ``MEDEA_SERVE=port`` /
  ``--serve``, polled by ``repro watch``.
* **Watchdog** — :class:`Watchdog` (``repro.obs.watchdog``) re-derives
  conservation invariants (node resources, container counts, placement
  fingerprints, violation-audit consistency) on every engine heartbeat and
  emits typed ``watchdog.trip`` events — replay's corruption detection
  moved to the moment of corruption; ``abort`` mode exits non-zero.
* **Run log** — :class:`RunLogger` (``repro.obs.log``) is the structured
  JSON-lines narrative (run id, tick, component, span path) engine / sim /
  medea / solver write instead of ad-hoc prints; ``MEDEA_LOG=file``.

And the profiling layer (ISSUE 4 / the paper's §7.3–§7.5 latency
attribution):

* **Spans** — :func:`span` / :func:`span_phase` record hierarchical,
  zero-cost-when-disabled phase timings as ``span`` trace events;
  :func:`build_profile` aggregates them into a :class:`ProfileReport`
  (self/total time per path, collapsed-stack export for flamegraphs).
* **Critical paths** — :func:`critical_paths` attributes each placed app's
  end-to-end latency to queue wait → constraint retries → solver time.
* **Bench gate** — :func:`compare_bench` diffs a ``BENCH_*.json`` run
  against a committed baseline (median/p95, noise-tolerant) so CI can fail
  on perf regressions (``repro bench-compare``).

The **scale plane** (ISSUE 8) — observing 10k-node runs without the
telemetry dominating the run:

* **Sampling tracer** — :class:`SamplingPolicy` / :class:`TraceSampler`
  (``repro.obs.sample``): deterministic head-based per-event-type
  sampling keyed on app/task identity, so kept lifecycles stay complete
  and same-seed canonical traces stay byte-identical
  (``MEDEA_TRACE_SAMPLE`` / ``--trace-sample``).
* **Columnar traces** — the ``.mtrc`` container (``repro.obs.mtrc``):
  chunked, struct-packed, zlib-compressed columns; ≥10× smaller and much
  faster to ingest than JSONL.  :func:`iter_trace` / :func:`read_trace`
  and every consumer accept both formats; ``repro trace-convert``
  translates.
* **Streaming rollups** — :class:`RollupState` / :class:`RollupSink`
  (``repro.obs.rollup``): live bounded aggregates periodically flushed to
  an atomic ``ROLLUP_*.json``; the dashboard renders from a rollup alone
  and ``/snapshot`` serves from the same state (``MEDEA_ROLLUP`` /
  ``--rollup``).
* **Self-telemetry** — the tracer accounts its own cost
  (``events_seen/emitted/dropped``, ``overhead_s``); the
  ``benchmarks/test_obs_overhead.py`` gate keeps total observability
  overhead within budget via ``repro bench-compare``.

The **diff plane** (ISSUE 9) — cross-run differential observability:

* **Trace diff** — :func:`diff_traces` / :func:`diff_events`
  (``repro.obs.diff``) compare two recorded runs in one streaming pass
  per side: structural alignment of the deterministic decision stream
  with first-divergence localization, replay-backed placement-fingerprint
  cross-checks, causal placement-flip explanations from the recorded
  ``scheduler.audit`` payloads, and statistical series/span deltas under
  the bench-compare noise model.  Four-way verdict
  (``IDENTICAL`` / ``EQUIVALENT`` / ``DIVERGED`` / ``INCOMPARABLE``),
  rendered by :func:`render_diff` / :func:`render_diff_html`;
  ``repro diff A B --fail-on-divergence`` gates CI on it.

Ambient configuration::

    from repro import obs
    tracer = obs.configure(jsonl_path="trace.jsonl")   # or MEDEA_TRACE=1
    ... run a simulation ...
    tracer.close()
    print(obs.report.render_metrics(obs.get_metrics().snapshot()))
"""

from __future__ import annotations

from . import report, stats
from .log import (
    RunLogger,
    configure_log,
    configure_log_from_env,
    get_run_logger,
    set_run_logger,
)
from .audit import (
    PRUNE_CANDIDATE_POOL,
    PRUNE_CAPACITY,
    PRUNE_CONSTRAINT,
    PRUNE_UNAVAILABLE,
    CandidatePruned,
    ContainerDecision,
    DecisionAudit,
    explain_placement_flip,
)
from .diff import (
    STRUCTURAL_KINDS,
    VERDICT_DIVERGED,
    VERDICT_EQUIVALENT,
    VERDICT_IDENTICAL,
    VERDICT_INCOMPARABLE,
    DiffReport,
    PlacementFlip,
    StructuralDivergence,
    diff_events,
    diff_rollups,
    diff_traces,
    render_diff,
    render_diff_html,
)
from .bench import (
    BenchCheck,
    BenchComparison,
    compare_bench,
    compare_bench_files,
    load_bench,
    series_stats,
)
from .events import WALL_KEY, EventKind, TraceEvent, canonical
from .hist import (
    DEFAULT_MIN_VALUE_S,
    DEFAULT_SUBBUCKETS,
    LatencyHistogram,
    merge_histograms,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    SolverStats,
    Timer,
    TimerStat,
    get_metrics,
    set_metrics,
    use_reservoir_percentiles,
)
from .profile import (
    AppCriticalPath,
    ProfileReport,
    SpanStat,
    build_profile,
    critical_paths,
    span_deltas,
)
from .mtrc import MtrcFormatError, MtrcReader, MtrcSink, read_mtrc, write_mtrc
from .replay import (
    ReplayDivergence,
    ReplayReport,
    ReplayState,
    replay_events,
    replay_jsonl,
)
from .report import (
    TraceFileError,
    TraceReader,
    build_dashboard,
    iter_trace,
    read_trace,
)
from .rollup import (
    ROLLUP_SCHEMA,
    RollupSink,
    RollupState,
    build_dashboard_from_rollup,
    get_rollup,
    install_rollup,
    load_rollup,
    rollup_from_env,
    shutdown_rollup,
    summary_series,
)
from .sample import SamplingPolicy, TraceSampler, parse_sample_spec
from .serve import (
    HealthState,
    TelemetryServer,
    get_server,
    install as install_server,
    render_prometheus,
    serve_from_env,
    shutdown_server,
)
from .slo import (
    SLOBreach,
    SLOMonitor,
    SLOReport,
    SLOResult,
    SLORule,
    default_smoke_slos,
    load_slo_rules,
)
from .spans import Span, current_span_path, span, span_phase
from .timeline import TimelineAggregator, TimeSeries
from .violations import ViolationRecord, ViolationReport, evaluate_violations
from .watchdog import Watchdog, WatchdogError, WatchdogTrip, watchdog_from_env
from .trace import (
    JsonlSink,
    MemorySink,
    Tracer,
    TraceSink,
    configure,
    configure_from_env,
    current_request_id,
    get_tracer,
    open_trace_sink,
    request_context,
    set_tracer,
)

__all__ = [
    # events
    "EventKind",
    "TraceEvent",
    "canonical",
    "WALL_KEY",
    # tracer + sinks
    "Tracer",
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "get_tracer",
    "set_tracer",
    "configure",
    "configure_from_env",
    "open_trace_sink",
    "request_context",
    "current_request_id",
    # latency histograms
    "DEFAULT_MIN_VALUE_S",
    "DEFAULT_SUBBUCKETS",
    "LatencyHistogram",
    "merge_histograms",
    # sampling
    "SamplingPolicy",
    "TraceSampler",
    "parse_sample_spec",
    # columnar traces
    "MtrcFormatError",
    "MtrcReader",
    "MtrcSink",
    "read_mtrc",
    "write_mtrc",
    # streaming rollups
    "ROLLUP_SCHEMA",
    "RollupState",
    "RollupSink",
    "install_rollup",
    "shutdown_rollup",
    "get_rollup",
    "rollup_from_env",
    "load_rollup",
    "summary_series",
    "build_dashboard_from_rollup",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "TimerStat",
    "use_reservoir_percentiles",
    "Metrics",
    "SolverStats",
    "get_metrics",
    "set_metrics",
    # decision audit
    "DecisionAudit",
    "ContainerDecision",
    "CandidatePruned",
    "PRUNE_CAPACITY",
    "PRUNE_UNAVAILABLE",
    "PRUNE_CONSTRAINT",
    "PRUNE_CANDIDATE_POOL",
    "explain_placement_flip",
    # cross-run diff plane
    "VERDICT_IDENTICAL",
    "VERDICT_EQUIVALENT",
    "VERDICT_DIVERGED",
    "VERDICT_INCOMPARABLE",
    "STRUCTURAL_KINDS",
    "DiffReport",
    "PlacementFlip",
    "StructuralDivergence",
    "diff_traces",
    "diff_events",
    "diff_rollups",
    "render_diff",
    "render_diff_html",
    # timeline
    "TimeSeries",
    "TimelineAggregator",
    # SLO monitor
    "SLORule",
    "SLOBreach",
    "SLOResult",
    "SLOReport",
    "SLOMonitor",
    "default_smoke_slos",
    "load_slo_rules",
    # replay
    "ReplayDivergence",
    "ReplayReport",
    "ReplayState",
    "replay_events",
    "replay_jsonl",
    # spans + profiles
    "span",
    "span_phase",
    "Span",
    "current_span_path",
    "SpanStat",
    "ProfileReport",
    "build_profile",
    "span_deltas",
    "AppCriticalPath",
    "critical_paths",
    # bench gate
    "series_stats",
    "load_bench",
    "BenchCheck",
    "BenchComparison",
    "compare_bench",
    "compare_bench_files",
    # trace files + dashboard
    "TraceFileError",
    "TraceReader",
    "iter_trace",
    "read_trace",
    "build_dashboard",
    # violations audit
    "ViolationRecord",
    "ViolationReport",
    "evaluate_violations",
    # live telemetry endpoint
    "TelemetryServer",
    "HealthState",
    "render_prometheus",
    "install_server",
    "serve_from_env",
    "get_server",
    "shutdown_server",
    # online watchdog
    "Watchdog",
    "WatchdogError",
    "WatchdogTrip",
    "watchdog_from_env",
    # structured run log
    "RunLogger",
    "get_run_logger",
    "set_run_logger",
    "configure_log",
    "configure_log_from_env",
    # renderers + moved stats helpers
    "report",
    "stats",
]
