"""``repro.obs`` — the unified observability layer.

One subsystem, three capabilities (ISSUE 2 / the paper's §7 evaluation
substrate):

* **Tracing** — :class:`Tracer` emits typed, deterministic
  :class:`TraceEvent` records (simulated-time ordered, volatile wall-clock
  fields segregated under ``"wall"``) to :class:`JsonlSink` /
  :class:`MemorySink` sinks.  Zero-cost when disabled: call sites guard on
  ``tracer.enabled``.
* **Metrics** — a :class:`Metrics` registry of labelled counters, gauges,
  and timers with a deterministic :meth:`~Metrics.snapshot` API.
  :class:`SolverStats` (formerly ``repro.solver.SolverStats``) is one of
  its record types.
* **Decision audit** — :class:`DecisionAudit` attached to
  ``PlacementResult`` explains each placement: candidates considered,
  constraints that pruned them, and the winning score/objective terms.

Built on top of those (ISSUE 3 / the paper's §7 evaluation signals):

* **Timeline** — :class:`TimelineAggregator` folds a trace (live sink or
  post-hoc JSONL) into bounded-memory per-tick series: utilization,
  queue depths, container churn, solver latency, violations.
* **SLO monitor** — :class:`SLOMonitor` judges declarative
  :class:`SLORule` thresholds against a timeline, emitting typed
  ``slo.breach`` events and a run-level verdict.
* **Replay** — :func:`replay_jsonl` reconstructs cluster state from the
  event stream and cross-checks every recorded ``sim.state_hash``,
  reporting the first divergent tick.

And the profiling layer (ISSUE 4 / the paper's §7.3–§7.5 latency
attribution):

* **Spans** — :func:`span` / :func:`span_phase` record hierarchical,
  zero-cost-when-disabled phase timings as ``span`` trace events;
  :func:`build_profile` aggregates them into a :class:`ProfileReport`
  (self/total time per path, collapsed-stack export for flamegraphs).
* **Critical paths** — :func:`critical_paths` attributes each placed app's
  end-to-end latency to queue wait → constraint retries → solver time.
* **Bench gate** — :func:`compare_bench` diffs a ``BENCH_*.json`` run
  against a committed baseline (median/p95, noise-tolerant) so CI can fail
  on perf regressions (``repro bench-compare``).

Ambient configuration::

    from repro import obs
    tracer = obs.configure(jsonl_path="trace.jsonl")   # or MEDEA_TRACE=1
    ... run a simulation ...
    tracer.close()
    print(obs.report.render_metrics(obs.get_metrics().snapshot()))
"""

from __future__ import annotations

from . import report, stats
from .audit import (
    PRUNE_CANDIDATE_POOL,
    PRUNE_CAPACITY,
    PRUNE_CONSTRAINT,
    PRUNE_UNAVAILABLE,
    CandidatePruned,
    ContainerDecision,
    DecisionAudit,
)
from .bench import (
    BenchCheck,
    BenchComparison,
    compare_bench,
    compare_bench_files,
    load_bench,
    series_stats,
)
from .events import WALL_KEY, EventKind, TraceEvent, canonical
from .metrics import (
    Counter,
    Gauge,
    Metrics,
    SolverStats,
    Timer,
    TimerStat,
    get_metrics,
    set_metrics,
)
from .profile import (
    AppCriticalPath,
    ProfileReport,
    SpanStat,
    build_profile,
    critical_paths,
)
from .replay import ReplayDivergence, ReplayReport, replay_events, replay_jsonl
from .report import TraceFileError, build_dashboard, read_trace
from .slo import (
    SLOBreach,
    SLOMonitor,
    SLOReport,
    SLOResult,
    SLORule,
    default_smoke_slos,
    load_slo_rules,
)
from .spans import Span, current_span_path, span, span_phase
from .timeline import TimelineAggregator, TimeSeries
from .trace import (
    JsonlSink,
    MemorySink,
    Tracer,
    TraceSink,
    configure,
    configure_from_env,
    get_tracer,
    set_tracer,
)

__all__ = [
    # events
    "EventKind",
    "TraceEvent",
    "canonical",
    "WALL_KEY",
    # tracer + sinks
    "Tracer",
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "get_tracer",
    "set_tracer",
    "configure",
    "configure_from_env",
    # metrics
    "Counter",
    "Gauge",
    "Timer",
    "TimerStat",
    "Metrics",
    "SolverStats",
    "get_metrics",
    "set_metrics",
    # decision audit
    "DecisionAudit",
    "ContainerDecision",
    "CandidatePruned",
    "PRUNE_CAPACITY",
    "PRUNE_UNAVAILABLE",
    "PRUNE_CONSTRAINT",
    "PRUNE_CANDIDATE_POOL",
    # timeline
    "TimeSeries",
    "TimelineAggregator",
    # SLO monitor
    "SLORule",
    "SLOBreach",
    "SLOResult",
    "SLOReport",
    "SLOMonitor",
    "default_smoke_slos",
    "load_slo_rules",
    # replay
    "ReplayDivergence",
    "ReplayReport",
    "replay_events",
    "replay_jsonl",
    # spans + profiles
    "span",
    "span_phase",
    "Span",
    "current_span_path",
    "SpanStat",
    "ProfileReport",
    "build_profile",
    "AppCriticalPath",
    "critical_paths",
    # bench gate
    "series_stats",
    "load_bench",
    "BenchCheck",
    "BenchComparison",
    "compare_bench",
    "compare_bench_files",
    # trace files + dashboard
    "TraceFileError",
    "read_trace",
    "build_dashboard",
    # renderers + moved stats helpers
    "report",
    "stats",
]
