"""Scheduler decision audit: *why* a placement decision was made.

Every LRA scheduler can attach a :class:`DecisionAudit` to its
:class:`~repro.core.scheduler.PlacementResult`.  The audit records, per
container, which candidate nodes were considered, which were pruned and by
what (capacity, unavailability, or a specific constraint with its violation
extent), the chosen node, and the score/objective terms behind the choice.
Batch-level objective terms (the ILP's weighted objective value, candidate
pool size) live on the audit itself.

Audit collection costs extra work inside the placement loops, so it is
opt-in per scheduler (``audit=True``) and off by default — the disabled
path adds a single attribute check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "PRUNE_CAPACITY",
    "PRUNE_UNAVAILABLE",
    "PRUNE_CONSTRAINT",
    "PRUNE_CANDIDATE_POOL",
    "CandidatePruned",
    "ContainerDecision",
    "DecisionAudit",
    "explain_placement_flip",
]

#: Reasons a candidate node was pruned / penalised.
PRUNE_CAPACITY = "capacity"
PRUNE_UNAVAILABLE = "unavailable"
PRUNE_CONSTRAINT = "constraint"
PRUNE_CANDIDATE_POOL = "candidate-pool"


@dataclass(frozen=True)
class CandidatePruned:
    """One candidate node ruled out (or penalised) for one container."""

    node_id: str
    reason: str
    #: Canonical form of the responsible constraint (``reason=constraint``).
    constraint: str | None = None
    #: Violation extent the placement would have incurred (Eq. 8 units).
    extent: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        obj: dict[str, Any] = {"node": self.node_id, "reason": self.reason}
        if self.constraint is not None:
            obj["constraint"] = self.constraint
        if self.extent:
            obj["extent"] = self.extent
        return obj

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "CandidatePruned":
        return cls(
            node_id=obj.get("node", "?"),
            reason=obj.get("reason", "?"),
            constraint=obj.get("constraint"),
            extent=float(obj.get("extent", 0.0)),
        )


@dataclass
class ContainerDecision:
    """The candidate evaluation for one container."""

    app_id: str
    container_id: str
    #: Nodes evaluated (before any pruning).
    considered: int = 0
    #: Nodes that passed every filter (could host without new violations).
    feasible: int = 0
    pruned: list[CandidatePruned] = field(default_factory=list)
    chosen_node: str | None = None
    #: Score terms behind the choice (algorithm-specific keys, e.g.
    #: ``violation_delta`` / ``free_memory_mb`` for the greedy family).
    score_terms: dict[str, float] = field(default_factory=dict)

    @property
    def rejected(self) -> bool:
        return self.chosen_node is None

    def pruned_by(self, reason: str) -> list[CandidatePruned]:
        return [p for p in self.pruned if p.reason == reason]

    def pruning_constraints(self) -> list[str]:
        """Canonical constraints that ruled out at least one candidate."""
        seen: dict[str, None] = {}
        for p in self.pruned:
            if p.constraint is not None:
                seen.setdefault(p.constraint)
        return list(seen)

    def to_dict(self) -> dict[str, Any]:
        return {
            "app": self.app_id,
            "container": self.container_id,
            "considered": self.considered,
            "feasible": self.feasible,
            "pruned": [p.to_dict() for p in self.pruned],
            "chosen": self.chosen_node,
            "score_terms": dict(self.score_terms),
        }

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "ContainerDecision":
        return cls(
            app_id=obj.get("app", "?"),
            container_id=obj.get("container", "?"),
            considered=int(obj.get("considered", 0)),
            feasible=int(obj.get("feasible", 0)),
            pruned=[CandidatePruned.from_dict(p) for p in obj.get("pruned", ())],
            chosen_node=obj.get("chosen"),
            score_terms=dict(obj.get("score_terms") or {}),
        )


@dataclass
class DecisionAudit:
    """Audit of one scheduler invocation over a batch of LRAs."""

    scheduler: str
    decisions: list[ContainerDecision] = field(default_factory=list)
    #: Batch-level objective terms (e.g. the ILP's objective value and
    #: per-weight contributions, or candidate-pool sizing).
    objective_terms: dict[str, float] = field(default_factory=dict)

    def new_decision(self, app_id: str, container_id: str) -> ContainerDecision:
        decision = ContainerDecision(app_id, container_id)
        self.decisions.append(decision)
        return decision

    def decision_for(self, container_id: str) -> ContainerDecision | None:
        for decision in self.decisions:
            if decision.container_id == container_id:
                return decision
        return None

    def decisions_of(self, app_id: str) -> list[ContainerDecision]:
        return [d for d in self.decisions if d.app_id == app_id]

    def rejections(self) -> list[ContainerDecision]:
        return [d for d in self.decisions if d.rejected]

    def to_dict(self) -> dict[str, Any]:
        return {
            "scheduler": self.scheduler,
            "objective_terms": dict(self.objective_terms),
            "decisions": [d.to_dict() for d in self.decisions],
        }

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "DecisionAudit":
        """Rebuild an audit from a recorded ``scheduler.audit`` payload
        (the inverse of :meth:`to_dict`; used by trace forensics)."""
        return cls(
            scheduler=obj.get("scheduler", "?"),
            decisions=[
                ContainerDecision.from_dict(d) for d in obj.get("decisions", ())
            ],
            objective_terms=dict(obj.get("objective_terms") or {}),
        )


def _describe_pruned(pruned: Mapping[str, Any]) -> str:
    reason = pruned.get("reason", "?")
    text = f"pruned ({reason}"
    if pruned.get("constraint"):
        text += f": {pruned['constraint']}"
    if pruned.get("extent"):
        text += f", extent {pruned['extent']:g}"
    return text + ")"


def explain_placement_flip(
    container_id: str,
    node_a: str,
    node_b: str,
    decision_a: Mapping[str, Any] | None,
    decision_b: Mapping[str, Any] | None,
    *,
    label_a: str = "A",
    label_b: str = "B",
) -> list[str]:
    """Explain why one container landed on different nodes in two runs.

    ``decision_a`` / ``decision_b`` are recorded :class:`ContainerDecision`
    payloads (the dict shape of ``scheduler.audit`` events) for the
    container on each side, or ``None`` when that run carried no audit.
    Returns human-readable lines: which side pruned the other side's
    chosen node (and the constraint responsible), the score terms that
    flipped the ranking, and candidate-pool size changes.
    """
    if decision_a is None and decision_b is None:
        return [
            "no scheduler.audit events recorded for this container; rerun "
            "with auditing enabled (--audit) for a causal explanation"
        ]
    lines: list[str] = []
    for label, other_node, decision in (
        (label_b, node_a, decision_b),
        (label_a, node_b, decision_a),
    ):
        if decision is None:
            lines.append(f"{label}: no audit recorded")
            continue
        hit = next(
            (p for p in decision.get("pruned", ()) if p.get("node") == other_node),
            None,
        )
        if hit is not None:
            lines.append(f"{label}: candidate {other_node} {_describe_pruned(hit)}")
    if decision_a is not None and decision_b is not None:
        terms_a = decision_a.get("score_terms") or {}
        terms_b = decision_b.get("score_terms") or {}
        flipped = sorted(
            key for key in set(terms_a) | set(terms_b)
            if terms_a.get(key) != terms_b.get(key)
        )
        if flipped:
            detail = ", ".join(
                f"{key} {terms_a.get(key, '-')} vs {terms_b.get(key, '-')}"
                for key in flipped
            )
            lines.append(f"score terms flipped: {detail}")
        if (
            decision_a.get("considered") != decision_b.get("considered")
            or decision_a.get("feasible") != decision_b.get("feasible")
        ):
            lines.append(
                "candidate pool changed: considered "
                f"{decision_a.get('considered')} vs "
                f"{decision_b.get('considered')}, feasible "
                f"{decision_a.get('feasible')} vs {decision_b.get('feasible')}"
            )
    if not lines:
        lines.append(
            f"both runs ranked their chosen node first ({node_a} vs {node_b}) "
            "with no recorded pruning of the other side's choice — an "
            "upstream decision (earlier placement or cluster state) diverged "
            "first"
        )
    return lines
