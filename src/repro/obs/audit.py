"""Scheduler decision audit: *why* a placement decision was made.

Every LRA scheduler can attach a :class:`DecisionAudit` to its
:class:`~repro.core.scheduler.PlacementResult`.  The audit records, per
container, which candidate nodes were considered, which were pruned and by
what (capacity, unavailability, or a specific constraint with its violation
extent), the chosen node, and the score/objective terms behind the choice.
Batch-level objective terms (the ILP's weighted objective value, candidate
pool size) live on the audit itself.

Audit collection costs extra work inside the placement loops, so it is
opt-in per scheduler (``audit=True``) and off by default — the disabled
path adds a single attribute check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "PRUNE_CAPACITY",
    "PRUNE_UNAVAILABLE",
    "PRUNE_CONSTRAINT",
    "PRUNE_CANDIDATE_POOL",
    "CandidatePruned",
    "ContainerDecision",
    "DecisionAudit",
]

#: Reasons a candidate node was pruned / penalised.
PRUNE_CAPACITY = "capacity"
PRUNE_UNAVAILABLE = "unavailable"
PRUNE_CONSTRAINT = "constraint"
PRUNE_CANDIDATE_POOL = "candidate-pool"


@dataclass(frozen=True)
class CandidatePruned:
    """One candidate node ruled out (or penalised) for one container."""

    node_id: str
    reason: str
    #: Canonical form of the responsible constraint (``reason=constraint``).
    constraint: str | None = None
    #: Violation extent the placement would have incurred (Eq. 8 units).
    extent: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        obj: dict[str, Any] = {"node": self.node_id, "reason": self.reason}
        if self.constraint is not None:
            obj["constraint"] = self.constraint
        if self.extent:
            obj["extent"] = self.extent
        return obj


@dataclass
class ContainerDecision:
    """The candidate evaluation for one container."""

    app_id: str
    container_id: str
    #: Nodes evaluated (before any pruning).
    considered: int = 0
    #: Nodes that passed every filter (could host without new violations).
    feasible: int = 0
    pruned: list[CandidatePruned] = field(default_factory=list)
    chosen_node: str | None = None
    #: Score terms behind the choice (algorithm-specific keys, e.g.
    #: ``violation_delta`` / ``free_memory_mb`` for the greedy family).
    score_terms: dict[str, float] = field(default_factory=dict)

    @property
    def rejected(self) -> bool:
        return self.chosen_node is None

    def pruned_by(self, reason: str) -> list[CandidatePruned]:
        return [p for p in self.pruned if p.reason == reason]

    def pruning_constraints(self) -> list[str]:
        """Canonical constraints that ruled out at least one candidate."""
        seen: dict[str, None] = {}
        for p in self.pruned:
            if p.constraint is not None:
                seen.setdefault(p.constraint)
        return list(seen)

    def to_dict(self) -> dict[str, Any]:
        return {
            "app": self.app_id,
            "container": self.container_id,
            "considered": self.considered,
            "feasible": self.feasible,
            "pruned": [p.to_dict() for p in self.pruned],
            "chosen": self.chosen_node,
            "score_terms": dict(self.score_terms),
        }


@dataclass
class DecisionAudit:
    """Audit of one scheduler invocation over a batch of LRAs."""

    scheduler: str
    decisions: list[ContainerDecision] = field(default_factory=list)
    #: Batch-level objective terms (e.g. the ILP's objective value and
    #: per-weight contributions, or candidate-pool sizing).
    objective_terms: dict[str, float] = field(default_factory=dict)

    def new_decision(self, app_id: str, container_id: str) -> ContainerDecision:
        decision = ContainerDecision(app_id, container_id)
        self.decisions.append(decision)
        return decision

    def decision_for(self, container_id: str) -> ContainerDecision | None:
        for decision in self.decisions:
            if decision.container_id == container_id:
                return decision
        return None

    def decisions_of(self, app_id: str) -> list[ContainerDecision]:
        return [d for d in self.decisions if d.app_id == app_id]

    def rejections(self) -> list[ContainerDecision]:
        return [d for d in self.decisions if d.rejected]

    def to_dict(self) -> dict[str, Any]:
        return {
            "scheduler": self.scheduler,
            "objective_terms": dict(self.objective_terms),
            "decisions": [d.to_dict() for d in self.decisions],
        }
