"""Benchmark baselines and the perf-regression gate.

The benchmark harness dumps per-experiment time series into a versioned
``BENCH_*.json`` document (:data:`SCHEMA_VERSION`); this module turns that
document into a *gate*: a committed baseline plus :func:`compare_bench`,
which diffs the median / p95 of each timing series against the baseline
with an explicit noise tolerance and reports regressions.  ``repro
bench-compare BASELINE CURRENT`` is the CLI wrapper CI runs — exit status
non-zero on any regression — so "as fast as the hardware allows" finally
has an enforcement point instead of an empty trajectory.

Schema (``schema: 2``)::

    {"schema": 2,
     "benchmarks": {
        "<label>": {"scheduler": ..., "nodes": ..., "apps": ...,
                    "series": {"<name>": {"t": [...], "v": [...]}},
                    "stats":  {"<name>": {"count": n, "median": m,
                                          "p95": p}}}}}

Schema 1 documents (no ``stats``) are accepted; stats are recomputed from
the raw series.  Comparison is tolerant by construction: a series counts as
regressed only when ``current > baseline * ratio + abs_floor_s``, so
machine-to-machine jitter below the floor never trips the gate while a
genuine 2× solver-latency regression always does (with the default 1.5×
ratio).  Benchmarks or series present on only one side are reported as
skips, never failures — baselines stay forward-compatible as experiments
are added.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..reporting import render_table
from .stats import percentile

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_RATIO",
    "DEFAULT_ABS_FLOOR_S",
    "DEFAULT_GATED_SERIES",
    "series_stats",
    "attach_stats",
    "load_bench",
    "BenchCheck",
    "BenchComparison",
    "compare_bench",
    "compare_bench_files",
    "render_comparison",
]

#: Current ``BENCH_*.json`` schema version.
SCHEMA_VERSION = 2

#: A series regresses when ``current > baseline * ratio + abs_floor_s``.
DEFAULT_RATIO = 1.5
#: Absolute slack in seconds (absorbs scheduler-noise on sub-ms medians).
DEFAULT_ABS_FLOOR_S = 0.02

#: Wall-time series gated by default; level series (utilisation, queue
#: depth) are quality signals, not perf, and stay out of the gate.
DEFAULT_GATED_SERIES = ("solver_latency_s", "queue_delay_s")

_GATED_STATS = ("median", "p95")


def series_stats(values: Sequence[float]) -> dict[str, float] | None:
    """Median / p95 / count of one series; ``None`` on zero observations
    (the defined-value guard — callers skip instead of raising)."""
    if not values:
        return None
    return {
        "count": len(values),
        "median": round(percentile(values, 50), 9),
        "p95": round(percentile(values, 95), 9),
    }


def attach_stats(document: dict[str, Any]) -> dict[str, Any]:
    """Fill the ``stats`` block of every benchmark in ``document`` (in
    place) from its raw series and stamp :data:`SCHEMA_VERSION`."""
    document["schema"] = SCHEMA_VERSION
    for entry in document.get("benchmarks", {}).values():
        stats: dict[str, Any] = {}
        for name, series in (entry.get("series") or {}).items():
            computed = series_stats(series.get("v") or [])
            if computed is not None:
                stats[name] = computed
        entry["stats"] = stats
    return document


def load_bench(path: str) -> dict[str, Any]:
    """Load a ``BENCH_*.json`` document, upgrading schema-1 files by
    computing their ``stats`` blocks on the fly."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "benchmarks" not in document:
        raise ValueError(f"{path}: not a BENCH json document (no 'benchmarks')")
    schema = document.get("schema", 1)
    if schema > SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema {schema} is newer than supported {SCHEMA_VERSION}"
        )
    needs_stats = any(
        "stats" not in entry for entry in document["benchmarks"].values()
    )
    if needs_stats:
        attach_stats(document)
    return document


@dataclass(frozen=True)
class BenchCheck:
    """One (benchmark, series, statistic) comparison."""

    benchmark: str
    series: str
    stat: str
    baseline: float
    current: float
    limit: float
    regressed: bool

    @property
    def ratio(self) -> float:
        if self.baseline <= 0:
            return float("inf") if self.current > 0 else 1.0
        return self.current / self.baseline


@dataclass
class BenchComparison:
    """Outcome of one baseline/current diff."""

    ratio: float
    abs_floor_s: float
    checks: list[BenchCheck] = field(default_factory=list)
    #: ``(benchmark, series, reason)`` triples that could not be compared.
    skipped: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def regressions(self) -> list[BenchCheck]:
        return [check for check in self.checks if check.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_obj(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "ratio": self.ratio,
            "abs_floor_s": self.abs_floor_s,
            "checks": [
                {
                    "benchmark": c.benchmark,
                    "series": c.series,
                    "stat": c.stat,
                    "baseline": c.baseline,
                    "current": c.current,
                    "limit": c.limit,
                    "regressed": c.regressed,
                }
                for c in self.checks
            ],
            "skipped": [list(item) for item in self.skipped],
        }


def compare_bench(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    ratio: float = DEFAULT_RATIO,
    abs_floor_s: float = DEFAULT_ABS_FLOOR_S,
    series: Sequence[str] = DEFAULT_GATED_SERIES,
) -> BenchComparison:
    """Diff two BENCH documents over the gated timing series."""
    comparison = BenchComparison(ratio=ratio, abs_floor_s=abs_floor_s)
    base_benchmarks = baseline.get("benchmarks", {})
    cur_benchmarks = current.get("benchmarks", {})
    for label in sorted(base_benchmarks):
        if label not in cur_benchmarks:
            comparison.skipped.append((label, "*", "missing from current run"))
            continue
        base_stats = base_benchmarks[label].get("stats") or {}
        cur_stats = cur_benchmarks[label].get("stats") or {}
        for name in series:
            if name not in base_stats:
                continue  # baseline never measured it; nothing to gate
            if name not in cur_stats:
                comparison.skipped.append(
                    (label, name, "series missing from current run")
                )
                continue
            for stat in _GATED_STATS:
                base_value = float(base_stats[name].get(stat, 0.0))
                cur_value = float(cur_stats[name].get(stat, 0.0))
                limit = base_value * ratio + abs_floor_s
                comparison.checks.append(
                    BenchCheck(
                        benchmark=label,
                        series=name,
                        stat=stat,
                        baseline=base_value,
                        current=cur_value,
                        limit=limit,
                        regressed=cur_value > limit,
                    )
                )
    for label in sorted(cur_benchmarks):
        if label not in base_benchmarks:
            comparison.skipped.append(
                (label, "*", "not in baseline (new benchmark)")
            )
    return comparison


def compare_bench_files(
    baseline_path: str,
    current_path: str,
    *,
    ratio: float = DEFAULT_RATIO,
    abs_floor_s: float = DEFAULT_ABS_FLOOR_S,
    series: Sequence[str] = DEFAULT_GATED_SERIES,
) -> BenchComparison:
    """File-level wrapper around :func:`compare_bench`."""
    return compare_bench(
        load_bench(baseline_path),
        load_bench(current_path),
        ratio=ratio,
        abs_floor_s=abs_floor_s,
        series=series,
    )


def render_comparison(comparison: BenchComparison) -> str:
    """Fixed-width report: one row per check, regressions flagged."""
    parts = []
    if comparison.checks:
        rows = []
        for check in comparison.checks:
            rows.append([
                check.benchmark,
                check.series,
                check.stat,
                f"{check.baseline * 1000:.2f}",
                f"{check.current * 1000:.2f}",
                f"{check.limit * 1000:.2f}",
                "REGRESSED" if check.regressed else "ok",
            ])
        parts.append(render_table(
            ["benchmark", "series", "stat", "base ms", "now ms", "limit ms",
             "status"],
            rows,
        ))
    else:
        parts.append("(no comparable series between baseline and current)")
    for benchmark, name, reason in comparison.skipped:
        parts.append(f"note: {benchmark}/{name}: {reason}")
    verdict = "PASS" if comparison.ok else "FAIL"
    parts.append(
        f"bench-compare verdict: {verdict} "
        f"({len(comparison.regressions)} regression(s) across "
        f"{len(comparison.checks)} checks; tolerance {comparison.ratio:g}x "
        f"+ {comparison.abs_floor_s * 1000:g}ms)"
    )
    return "\n".join(parts)
