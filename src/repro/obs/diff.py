"""Cross-run differential observability: the ``repro diff`` forensics plane.

Two recorded runs rarely need a human to eyeball ten thousand JSONL lines;
they need a *verdict* and, when the runs disagree, the first place and the
reason why.  This module compares two traces (JSONL or ``.mtrc``,
magic-sniffed by :func:`~repro.obs.report.iter_trace`) in one streaming
pass per side and reports along three axes:

* **Structural diff** — the deterministic decision stream (LRA/task
  lifecycle, scheduling cycles, node availability …) is aligned event by
  event on canonical identity (kind + simulated time + wall-stripped
  payload).  The first divergent event is localized with a context window
  of the common prefix and each side's following events.  Placement
  fingerprints are cross-checked through the existing replay machinery:
  common-time ``sim.state_hash`` checkpoints and the final reconstructed
  placement fingerprint must agree.
* **Causal placement diff** — for every container that landed on a
  different node, the recorded :class:`~repro.obs.audit.DecisionAudit`
  payloads (``scheduler.audit`` events) explain *why* the decision
  flipped: the candidate one side pruned (capacity / availability / the
  attributed constraint), or the score terms that ranked another node
  first.
* **Statistical diff** — per-path span-profile deltas and timeline series
  deltas.  Deterministic series compare exactly; wall-clock timings use
  the bench-compare noise model (``ratio`` × + ``abs_floor``) so runner
  jitter never reads as divergence.

The outcome is a four-way verdict:

* ``IDENTICAL`` — the canonical (wall-stripped) streams are byte-identical.
* ``EQUIVALENT`` — the structural streams and every placement fingerprint
  match; only non-structural cadence (heartbeats, queue samples, engine
  dispatch, spans) and wall-clock data differ.  This is the contract
  between the ``periodic`` and ``ondemand`` engines and between state
  backends: same decisions, different bookkeeping.
* ``DIVERGED`` — a structural event or a placement fingerprint differs;
  ``tick`` localizes the first divergence.
* ``INCOMPARABLE`` — the inputs cannot be meaningfully aligned (unreadable
  file, trace vs rollup, no shared structural vocabulary).

Rollup documents (``ROLLUP_*.json``) are also accepted — both sides must
then be rollups, and the diff is statistical-only (bounded series +
profile aggregates instead of an event stream).

Entry points: :func:`diff_traces` (two paths), :func:`diff_events` (two
decoded event iterables, e.g. :class:`~repro.obs.trace.MemorySink`
captures), and the renderers :func:`render_diff` /
:func:`render_diff_html`; ``repro diff A B`` wraps them.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from .audit import explain_placement_flip
from .bench import DEFAULT_ABS_FLOOR_S, DEFAULT_RATIO
from .events import WALL_KEY, EventKind, TraceEvent
from .profile import ProfileReport, span_deltas
from .replay import ReplayState
from .timeline import TimelineAggregator

__all__ = [
    "VERDICT_IDENTICAL",
    "VERDICT_EQUIVALENT",
    "VERDICT_DIVERGED",
    "VERDICT_INCOMPARABLE",
    "STRUCTURAL_KINDS",
    "DiffReport",
    "PlacementFlip",
    "StructuralDivergence",
    "diff_traces",
    "diff_events",
    "diff_rollups",
    "render_diff",
    "render_diff_html",
]

VERDICT_IDENTICAL = "IDENTICAL"
VERDICT_EQUIVALENT = "EQUIVALENT"
VERDICT_DIVERGED = "DIVERGED"
VERDICT_INCOMPARABLE = "INCOMPARABLE"

#: Event kinds that constitute the deterministic decision stream.  Two
#: same-seed runs must agree on these exactly, whatever the engine or
#: state backend; everything else is cadence/telemetry whose presence and
#: count legitimately vary (the ``ondemand`` engine skips idle heartbeats
#: and queue samples, sampling policies thin lifecycles, spans follow the
#: callbacks that actually fired).
STRUCTURAL_KINDS = frozenset({
    EventKind.LRA_SUBMIT,
    EventKind.LRA_PLACE,
    EventKind.LRA_REJECT,
    EventKind.LRA_CONFLICT,
    EventKind.LRA_RESUBMIT,
    EventKind.LRA_DROP,
    EventKind.LRA_COMPLETE,
    EventKind.CYCLE_START,
    EventKind.CYCLE_END,
    EventKind.TASK_SUBMIT,
    EventKind.TASK_ALLOCATE,
    EventKind.TASK_RELEASE,
    EventKind.TASK_FINISH,
    EventKind.SCHEDULER_PLACE,
    EventKind.SCHEDULER_AUDIT,
    EventKind.NODE_AVAILABILITY,
    EventKind.WATCHDOG_TRIP,
    EventKind.MIGRATION_PLAN,
    EventKind.BENCH_EXPERIMENT,
    EventKind.SOLVER_PRESOLVE,
    EventKind.SOLVER_SOLVE,
})

#: Structural events kept as post-divergence context per side.
DEFAULT_CONTEXT = 5

#: Placement flips explained in full before the report only counts them.
MAX_RECORDED_FLIPS = 12

#: Checkpoint mismatches recorded in full.
MAX_RECORDED_CHECKPOINT_MISMATCHES = 8


@dataclass(frozen=True)
class StructuralDivergence:
    """The first point where the two decision streams stop agreeing."""

    #: Position in the structural substream (0-based).
    index: int
    #: Simulated time of the divergence (first side that has an event).
    time: float | None
    #: The two canonical structural events (``None`` when a side's stream
    #: ended early — a missing-tail divergence).
    a: Mapping[str, Any] | None
    b: Mapping[str, Any] | None
    #: Common structural prefix immediately before the divergence.
    context: list[Mapping[str, Any]]
    #: Each side's next structural events after the divergence point.
    after_a: list[Mapping[str, Any]]
    after_b: list[Mapping[str, Any]]
    reason: str

    def to_obj(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "time": self.time,
            "reason": self.reason,
            "a": self.a,
            "b": self.b,
            "context": list(self.context),
            "after_a": list(self.after_a),
            "after_b": list(self.after_b),
        }


@dataclass(frozen=True)
class PlacementFlip:
    """One container that landed on different nodes in the two runs."""

    container_id: str
    app_id: str | None
    node_a: str
    node_b: str
    time_a: float | None
    time_b: float | None
    #: Human-readable causal explanation derived from the recorded
    #: decision audits (empty when neither run carried them).
    explanation: list[str]

    def to_obj(self) -> dict[str, Any]:
        return {
            "container": self.container_id,
            "app": self.app_id,
            "node_a": self.node_a,
            "node_b": self.node_b,
            "time_a": self.time_a,
            "time_b": self.time_b,
            "explanation": list(self.explanation),
        }


@dataclass
class DiffReport:
    """Outcome of comparing two runs."""

    verdict: str
    #: Simulated time of the first divergence (``DIVERGED`` only).
    tick: float | None = None
    #: One-line rationale for the verdict.
    reason: str = ""
    label_a: str = "A"
    label_b: str = "B"
    sides: dict[str, Any] = field(default_factory=dict)
    structural: dict[str, Any] = field(default_factory=dict)
    divergence: StructuralDivergence | None = None
    checkpoints: dict[str, Any] = field(default_factory=dict)
    placements: dict[str, Any] = field(default_factory=dict)
    flips: list[PlacementFlip] = field(default_factory=list)
    series: dict[str, Any] = field(default_factory=dict)
    profile: dict[str, Any] = field(default_factory=dict)
    thresholds: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the runs agree (identical or equivalent)."""
        return self.verdict in (VERDICT_IDENTICAL, VERDICT_EQUIVALENT)

    @property
    def comparable(self) -> bool:
        return self.verdict != VERDICT_INCOMPARABLE

    def headline(self) -> str:
        """``DIVERGED@12.0`` style one-token verdict."""
        if self.verdict == VERDICT_DIVERGED and self.tick is not None:
            return f"{VERDICT_DIVERGED}@{_fmt_tick(self.tick)}"
        return self.verdict

    def to_obj(self) -> dict[str, Any]:
        obj: dict[str, Any] = {
            "verdict": self.verdict,
            "headline": self.headline(),
            "tick": self.tick,
            "reason": self.reason,
            "labels": {"a": self.label_a, "b": self.label_b},
            "sides": dict(self.sides),
            "structural": dict(self.structural),
            "checkpoints": dict(self.checkpoints),
            "placements": dict(self.placements),
            "flips": [f.to_obj() for f in self.flips],
            "series": dict(self.series),
            "profile": dict(self.profile),
            "thresholds": dict(self.thresholds),
            "notes": list(self.notes),
        }
        if self.divergence is not None:
            obj["divergence"] = self.divergence.to_obj()
        return obj


def _fmt_tick(tick: float) -> str:
    return f"{tick:g}"


def _canonical_line(obj: Mapping[str, Any]) -> bytes:
    """Full canonical JSONL line (seq kept, ``wall`` stripped) — the
    byte-identity the determinism contract is stated over."""
    stripped = {k: v for k, v in obj.items() if k != WALL_KEY}
    return json.dumps(stripped, sort_keys=True, separators=(",", ":")).encode()


def _structural_identity(obj: Mapping[str, Any]) -> dict[str, Any]:
    """Equivalence identity of a structural event: kind + simulated time +
    deterministic payload.  ``seq`` is deliberately excluded — sequence
    numbers shift with non-structural traffic (engine cadence, sampling),
    which must not read as divergence."""
    ident: dict[str, Any] = {"kind": obj.get("kind")}
    if obj.get("time") is not None:
        ident["time"] = obj["time"]
    data = obj.get("data")
    if data:
        ident["data"] = dict(data)
    return ident


class _Side:
    """Single-pass accumulator for one trace: canonical hash, structural
    substream, replay reconstruction, checkpoints, placements, audits,
    timeline, span profile.  Memory is bounded by the aggregates plus the
    unmatched structural window, not the trace length."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.events = 0
        self.structural_events = 0
        self.kind_counts: dict[str, int] = {}
        self.sha = hashlib.sha256()
        self.replay = ReplayState()
        self.checkpoints: dict[float, str] = {}
        #: container → (node, simulated time), over the whole run (released
        #: containers stay; a flip anywhere in the run is still a flip).
        self.placements: dict[str, tuple[str, float | None]] = {}
        self.apps: dict[str, str] = {}
        #: container → latest recorded decision payload.
        self.audit: dict[str, Mapping[str, Any]] = {}
        self.audit_events = 0
        self.timeline = TimelineAggregator()
        self.profile = ProfileReport()
        self.pending: deque[dict[str, Any]] = deque()
        #: Set by the driver after the first divergence: cap the pending
        #: window to the context size instead of buffering the whole tail.
        self.pending_limit: int | None = None
        self.truncated = False

    def feed(self, obj: Mapping[str, Any]) -> None:
        self.events += 1
        kind = obj.get("kind")
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        self.sha.update(_canonical_line(obj))
        self.sha.update(b"\n")
        self.replay.feed(obj)
        self.timeline.consume(obj)
        data = obj.get("data") or {}
        if kind == EventKind.SPAN:
            self.profile.add(obj)
        elif kind == EventKind.SIM_STATE_HASH:
            digest = data.get("hash")
            t = obj.get("time")
            if digest is not None and t is not None:
                self.checkpoints[float(t)] = digest
        elif kind == EventKind.LRA_PLACE:
            app_id = data.get("app_id")
            for container_id, node_id in data.get("placements") or ():
                self.placements[container_id] = (node_id, obj.get("time"))
                if app_id is not None:
                    self.apps[container_id] = app_id
        elif kind == EventKind.TASK_ALLOCATE:
            task_id = data.get("task_id")
            node_id = data.get("node_id")
            if task_id is not None and node_id is not None:
                self.placements[task_id] = (node_id, obj.get("time"))
        elif kind == EventKind.SCHEDULER_AUDIT:
            self.audit_events += 1
            for decision in data.get("decisions") or ():
                container_id = decision.get("container")
                if container_id is not None:
                    self.audit[container_id] = decision
        if kind in STRUCTURAL_KINDS:
            self.structural_events += 1
            if self.pending_limit is None or len(self.pending) < self.pending_limit:
                self.pending.append(_structural_identity(obj))

    def structural_kinds(self) -> set[str]:
        return {k for k in self.kind_counts if k in STRUCTURAL_KINDS}

    def summary_obj(self, path: str | None) -> dict[str, Any]:
        replay = self.replay.finish().to_obj()
        obj: dict[str, Any] = {
            "label": self.label,
            "events": self.events,
            "structural_events": self.structural_events,
            "checkpoints": len(self.checkpoints),
            "placements": len(self.placements),
            "audited_containers": len(self.audit),
            "kinds": dict(sorted(self.kind_counts.items())),
            "replay": replay,
        }
        if path is not None:
            obj["path"] = path
        if self.truncated:
            obj["truncated_tail"] = True
        return obj


def _iter_objs(
    events: Iterable[Mapping[str, Any] | TraceEvent],
) -> Iterable[Mapping[str, Any]]:
    for event in events:
        yield event.to_obj() if isinstance(event, TraceEvent) else event


def diff_events(
    events_a: Iterable[Mapping[str, Any] | TraceEvent],
    events_b: Iterable[Mapping[str, Any] | TraceEvent],
    *,
    label_a: str = "A",
    label_b: str = "B",
    path_a: str | None = None,
    path_b: str | None = None,
    context: int = DEFAULT_CONTEXT,
    ratio: float = DEFAULT_RATIO,
    abs_floor_s: float = DEFAULT_ABS_FLOOR_S,
) -> DiffReport:
    """Diff two decoded event streams (dicts or :class:`TraceEvent`).

    Both streams are consumed exactly once, interleaved; see the module
    docstring for the verdict semantics.
    """
    side_a = _Side(label_a)
    side_b = _Side(label_b)
    iter_a = iter(_iter_objs(events_a))
    iter_b = iter(_iter_objs(events_b))
    context = max(1, int(context))

    divergence: StructuralDivergence | None = None
    matched = 0
    prefix: deque[dict[str, Any]] = deque(maxlen=context)
    done_a = done_b = False
    while not (done_a and done_b):
        if not done_a:
            try:
                side_a.feed(next(iter_a))
            except StopIteration:
                done_a = True
        if not done_b:
            try:
                side_b.feed(next(iter_b))
            except StopIteration:
                done_b = True
        if divergence is None:
            while side_a.pending and side_b.pending:
                ea = side_a.pending.popleft()
                eb = side_b.pending.popleft()
                if ea == eb:
                    matched += 1
                    prefix.append(ea)
                    continue
                divergence = StructuralDivergence(
                    index=matched,
                    time=ea.get("time", eb.get("time")),
                    a=ea,
                    b=eb,
                    context=list(prefix),
                    after_a=[],
                    after_b=[],
                    reason=(
                        "first structural event mismatch"
                        if ea.get("kind") == eb.get("kind")
                        else (
                            f"event kind flipped: {ea.get('kind')} vs "
                            f"{eb.get('kind')}"
                        )
                    ),
                )
                side_a.pending_limit = context
                side_b.pending_limit = context
                break

    # Structural tail imbalance: one stream ended while the other still
    # has decisions (only meaningful when no earlier divergence was found).
    extra_a = len(side_a.pending)
    extra_b = len(side_b.pending)
    if divergence is None and (side_a.pending or side_b.pending):
        longer, shorter = (
            (side_a, side_b) if side_a.pending else (side_b, side_a)
        )
        head = longer.pending.popleft()
        divergence = StructuralDivergence(
            index=matched,
            time=head.get("time"),
            a=head if longer is side_a else None,
            b=head if longer is side_b else None,
            context=list(prefix),
            after_a=list(side_a.pending)[:context],
            after_b=list(side_b.pending)[:context],
            reason=(
                f"{shorter.label} ended after {matched} structural events; "
                f"{longer.label} has "
                f"{max(extra_a, extra_b)} more"
            ),
        )
    elif divergence is not None:
        divergence = StructuralDivergence(
            index=divergence.index,
            time=divergence.time,
            a=divergence.a,
            b=divergence.b,
            context=divergence.context,
            after_a=list(side_a.pending)[:context],
            after_b=list(side_b.pending)[:context],
            reason=divergence.reason,
        )

    return _assemble(
        side_a, side_b, divergence, matched,
        path_a=path_a, path_b=path_b,
        ratio=ratio, abs_floor_s=abs_floor_s,
    )


def _checkpoint_section(side_a: _Side, side_b: _Side) -> dict[str, Any]:
    """Cross-check the recorded state fingerprints at every common tick,
    plus the final replay-reconstructed placement fingerprint."""
    common = sorted(set(side_a.checkpoints) & set(side_b.checkpoints))
    mismatches = [
        {
            "time": t,
            "hash_a": side_a.checkpoints[t],
            "hash_b": side_b.checkpoints[t],
        }
        for t in common
        if side_a.checkpoints[t] != side_b.checkpoints[t]
    ]
    section: dict[str, Any] = {
        "common": len(common),
        "only_a": len(side_a.checkpoints) - len(common),
        "only_b": len(side_b.checkpoints) - len(common),
        "mismatched": len(mismatches),
        "mismatches": mismatches[:MAX_RECORDED_CHECKPOINT_MISMATCHES],
    }
    final_a = side_a.replay.fingerprint()
    final_b = side_b.replay.fingerprint()
    section["final_fingerprint_a"] = final_a
    section["final_fingerprint_b"] = final_b
    section["final_match"] = final_a == final_b
    return section


def _placement_section(
    side_a: _Side, side_b: _Side
) -> tuple[dict[str, Any], list[PlacementFlip]]:
    a_map, b_map = side_a.placements, side_b.placements
    common = set(a_map) & set(b_map)
    flipped = sorted(
        (cid for cid in common if a_map[cid][0] != b_map[cid][0]),
        key=lambda cid: (
            a_map[cid][1] if a_map[cid][1] is not None else float("inf"),
            cid,
        ),
    )
    flips: list[PlacementFlip] = []
    for container_id in flipped[:MAX_RECORDED_FLIPS]:
        node_a, time_a = a_map[container_id]
        node_b, time_b = b_map[container_id]
        explanation = explain_placement_flip(
            container_id,
            node_a,
            node_b,
            side_a.audit.get(container_id),
            side_b.audit.get(container_id),
            label_a=side_a.label,
            label_b=side_b.label,
        )
        flips.append(PlacementFlip(
            container_id=container_id,
            app_id=side_a.apps.get(container_id) or side_b.apps.get(container_id),
            node_a=node_a,
            node_b=node_b,
            time_a=time_a,
            time_b=time_b,
            explanation=explanation,
        ))
    section = {
        "common": len(common),
        "flipped": len(flipped),
        "only_a": len(a_map) - len(common),
        "only_b": len(b_map) - len(common),
    }
    return section, flips


def _stat_delta(a: float, b: float, *, ratio: float, abs_floor_s: float) -> bool:
    """Symmetric bench-compare noise test: significant iff the larger
    value exceeds the smaller scaled by ``ratio`` plus the floor."""
    lo, hi = (a, b) if a <= b else (b, a)
    return hi > lo * ratio + abs_floor_s


def _series_section(
    side_a: _Side, side_b: _Side, *, ratio: float, abs_floor_s: float
) -> dict[str, Any]:
    sum_a = side_a.timeline.summary()
    sum_b = side_b.timeline.summary()
    det_a = sum_a.get("series", {})
    det_b = sum_b.get("series", {})
    wall_a = (sum_a.get(WALL_KEY) or {}).get("series", {})
    wall_b = (sum_b.get(WALL_KEY) or {}).get("series", {})
    return _series_deltas(
        det_a, det_b, wall_a, wall_b, ratio=ratio, abs_floor_s=abs_floor_s
    )


def _series_deltas(
    det_a: Mapping[str, Any],
    det_b: Mapping[str, Any],
    wall_a: Mapping[str, Any],
    wall_b: Mapping[str, Any],
    *,
    ratio: float,
    abs_floor_s: float,
) -> dict[str, Any]:
    """Deterministic series compare exactly (point streams included);
    wall series only beyond the noise threshold (mean-based)."""
    det_deltas: list[dict[str, Any]] = []
    matched = 0
    for name in sorted(set(det_a) | set(det_b)):
        a_obj, b_obj = det_a.get(name), det_b.get(name)
        if a_obj is None or b_obj is None:
            det_deltas.append({
                "series": name,
                "status": "only_a" if b_obj is None else "only_b",
            })
            continue
        if a_obj == b_obj:
            matched += 1
            continue
        delta: dict[str, Any] = {"series": name, "status": "delta"}
        for stat in ("mean", "max", "last"):
            if a_obj.get(stat) != b_obj.get(stat):
                delta[stat] = [a_obj.get(stat), b_obj.get(stat)]
        if len(a_obj.get("points", ())) != len(b_obj.get("points", ())):
            delta["points"] = [
                len(a_obj.get("points", ())), len(b_obj.get("points", ()))
            ]
        det_deltas.append(delta)
    wall_flagged: list[dict[str, Any]] = []
    wall_compared = 0
    for name in sorted(set(wall_a) & set(wall_b)):
        mean_a = wall_a[name].get("mean")
        mean_b = wall_b[name].get("mean")
        if mean_a is None or mean_b is None:
            continue
        wall_compared += 1
        if _stat_delta(float(mean_a), float(mean_b),
                       ratio=ratio, abs_floor_s=abs_floor_s):
            wall_flagged.append({
                "series": name, "mean": [mean_a, mean_b], "status": "flagged",
            })
    return {
        "deterministic_matched": matched,
        "deterministic_deltas": det_deltas,
        "wall_compared": wall_compared,
        "wall_flagged": wall_flagged,
    }


def _assemble(
    side_a: _Side,
    side_b: _Side,
    divergence: StructuralDivergence | None,
    matched: int,
    *,
    path_a: str | None,
    path_b: str | None,
    ratio: float,
    abs_floor_s: float,
) -> DiffReport:
    checkpoints = _checkpoint_section(side_a, side_b)
    placement_section, flips = _placement_section(side_a, side_b)
    report = DiffReport(
        verdict=VERDICT_INCOMPARABLE,
        label_a=side_a.label,
        label_b=side_b.label,
        sides={
            "a": side_a.summary_obj(path_a),
            "b": side_b.summary_obj(path_b),
        },
        structural={
            "matched": matched,
            "a_total": side_a.structural_events,
            "b_total": side_b.structural_events,
            "kinds_only_a": sorted(
                side_a.structural_kinds() - side_b.structural_kinds()
            ),
            "kinds_only_b": sorted(
                side_b.structural_kinds() - side_a.structural_kinds()
            ),
        },
        divergence=divergence,
        checkpoints=checkpoints,
        placements=placement_section,
        flips=flips,
        series=_series_section(
            side_a, side_b, ratio=ratio, abs_floor_s=abs_floor_s
        ),
        profile=span_deltas(
            side_a.profile, side_b.profile, ratio=ratio, abs_floor_s=abs_floor_s
        ),
        thresholds={"ratio": ratio, "abs_floor_s": abs_floor_s},
    )

    kinds_a, kinds_b = side_a.structural_kinds(), side_b.structural_kinds()
    identical = (
        side_a.sha.digest() == side_b.sha.digest()
        and side_a.events == side_b.events
    )
    if identical:
        report.verdict = VERDICT_IDENTICAL
        report.reason = (
            f"canonical streams are byte-identical "
            f"({side_a.events} events)"
        )
        return report
    if side_a.events == 0 or side_b.events == 0:
        report.verdict = VERDICT_INCOMPARABLE
        empty = side_a.label if side_a.events == 0 else side_b.label
        report.reason = f"side {empty} contains no events"
        return report
    if kinds_a and kinds_b and not (kinds_a & kinds_b):
        report.verdict = VERDICT_INCOMPARABLE
        report.reason = (
            "no shared structural event kinds — the traces come from "
            "different harnesses"
        )
        return report
    if not kinds_a and not kinds_b and not side_a.checkpoints:
        report.verdict = VERDICT_INCOMPARABLE
        report.reason = (
            "neither trace carries structural events or checkpoints to "
            "align on"
        )
        return report

    if divergence is not None:
        report.verdict = VERDICT_DIVERGED
        report.tick = divergence.time
        report.reason = divergence.reason
        return report
    if checkpoints["mismatched"]:
        first = checkpoints["mismatches"][0]
        report.verdict = VERDICT_DIVERGED
        report.tick = first["time"]
        report.reason = (
            "structural streams match but recorded state fingerprints "
            f"disagree at t={_fmt_tick(first['time'])}"
        )
        return report
    if not checkpoints["final_match"]:
        report.verdict = VERDICT_DIVERGED
        report.reason = (
            "structural streams match but the final reconstructed "
            "placement fingerprints disagree"
        )
        return report
    report.verdict = VERDICT_EQUIVALENT
    report.reason = (
        f"{matched} structural events and {checkpoints['common']} "
        "common-tick fingerprints match; only cadence/wall-clock data "
        "differ"
    )
    return report


# -- file-level entry ---------------------------------------------------------


def _sniff_rollup(path: str) -> Mapping[str, Any] | None:
    from .rollup import is_rollup_doc

    try:
        with open(path, "r", encoding="utf-8") as handle:
            head = handle.read(1)
            if head != "{":
                return None
            doc = json.loads(head + handle.read())
    except (OSError, ValueError):
        return None
    return doc if is_rollup_doc(doc) else None


def diff_traces(
    path_a: str,
    path_b: str,
    *,
    label_a: str | None = None,
    label_b: str | None = None,
    context: int = DEFAULT_CONTEXT,
    ratio: float = DEFAULT_RATIO,
    abs_floor_s: float = DEFAULT_ABS_FLOOR_S,
) -> DiffReport:
    """Diff two recorded runs by path.

    Accepts any pairing of JSONL and ``.mtrc`` traces (sniffed by magic,
    not extension).  Two rollup documents get the statistical-only diff
    (:func:`diff_rollups`); a rollup paired with a raw trace is
    ``INCOMPARABLE``.  Unreadable files raise
    :class:`~repro.obs.report.TraceFileError` — the CLI maps that to the
    data-error exit code.
    """
    from .report import iter_trace

    label_a = label_a if label_a is not None else path_a
    label_b = label_b if label_b is not None else path_b
    rollup_a = _sniff_rollup(path_a)
    rollup_b = _sniff_rollup(path_b)
    if rollup_a is not None or rollup_b is not None:
        if rollup_a is None or rollup_b is None:
            trace_side = path_a if rollup_a is None else path_b
            rollup_side = path_b if rollup_a is None else path_a
            report = DiffReport(
                verdict=VERDICT_INCOMPARABLE,
                label_a=label_a,
                label_b=label_b,
                reason=(
                    f"{rollup_side} is a rollup document but {trace_side} "
                    "is a raw trace; compare two traces or two rollups"
                ),
            )
            report.sides = {"a": {"path": path_a}, "b": {"path": path_b}}
            return report
        return diff_rollups(
            rollup_a, rollup_b,
            label_a=label_a, label_b=label_b,
            path_a=path_a, path_b=path_b,
            ratio=ratio, abs_floor_s=abs_floor_s,
        )

    reader_a = iter_trace(path_a)
    reader_b = iter_trace(path_b)
    report = diff_events(
        reader_a,
        reader_b,
        label_a=label_a,
        label_b=label_b,
        path_a=path_a,
        path_b=path_b,
        context=context,
        ratio=ratio,
        abs_floor_s=abs_floor_s,
    )
    for reader, key in ((reader_a, "a"), (reader_b, "b")):
        if reader.truncated:
            report.sides[key]["truncated_tail"] = True
            report.notes.append(
                f"side {report.sides[key]['label']}: trailing partial "
                "line/chunk ignored (crashed run?)"
            )
    return report


def diff_rollups(
    doc_a: Mapping[str, Any],
    doc_b: Mapping[str, Any],
    *,
    label_a: str = "A",
    label_b: str = "B",
    path_a: str | None = None,
    path_b: str | None = None,
    ratio: float = DEFAULT_RATIO,
    abs_floor_s: float = DEFAULT_ABS_FLOOR_S,
) -> DiffReport:
    """Statistical-only diff of two bounded rollup documents.

    Rollups carry aggregates, not the event stream, so there is no
    structural axis: the deterministic series and profile counts either
    match (``EQUIVALENT``; ``IDENTICAL`` when the stripped documents are
    byte-equal) or the first differing series localizes the divergence.
    """
    from .rollup import summary_series

    det_a, wall_a = summary_series(doc_a)
    det_b, wall_b = summary_series(doc_b)
    series = _series_deltas(
        det_a, det_b, wall_a, wall_b, ratio=ratio, abs_floor_s=abs_floor_s
    )
    prof_a = doc_a.get("profile", {})
    prof_b = doc_b.get("profile", {})
    report = DiffReport(
        verdict=VERDICT_EQUIVALENT,
        label_a=label_a,
        label_b=label_b,
        sides={
            "a": {"label": label_a, "path": path_a,
                  "events": (doc_a.get("meta") or {}).get("events", 0),
                  "rollup": True},
            "b": {"label": label_b, "path": path_b,
                  "events": (doc_b.get("meta") or {}).get("events", 0),
                  "rollup": True},
        },
        series=series,
        thresholds={"ratio": ratio, "abs_floor_s": abs_floor_s},
        notes=["rollup documents: statistical diff only (no event stream)"],
    )

    def _strip(doc: Mapping[str, Any]) -> str:
        kept = {k: v for k, v in doc.items() if k not in (WALL_KEY, "rollup")}
        return json.dumps(kept, sort_keys=True)

    prof_match = prof_a.get("spans") == prof_b.get("spans")
    det_broken = series["deterministic_deltas"]
    if _strip(doc_a) == _strip(doc_b):
        report.verdict = VERDICT_IDENTICAL
        report.reason = "deterministic rollup sections are identical"
    elif det_broken or not prof_match:
        report.verdict = VERDICT_DIVERGED
        first = det_broken[0]["series"] if det_broken else "span profile"
        report.tick = _first_delta_tick(det_a, det_b, det_broken)
        report.reason = f"deterministic rollup series differ (first: {first})"
        if not prof_match:
            report.profile = {"counts_match": False}
    else:
        report.reason = (
            f"{series['deterministic_matched']} deterministic series match; "
            "only wall-clock aggregates differ"
        )
    return report


def _first_delta_tick(
    det_a: Mapping[str, Any],
    det_b: Mapping[str, Any],
    deltas: list[Mapping[str, Any]],
) -> float | None:
    """Earliest tick at which a differing deterministic series disagrees."""
    best: float | None = None
    for delta in deltas:
        name = delta.get("series")
        pts_a = {p[0]: p[1] for p in (det_a.get(name) or {}).get("points", ())}
        pts_b = {p[0]: p[1] for p in (det_b.get(name) or {}).get("points", ())}
        for t in sorted(set(pts_a) | set(pts_b)):
            if pts_a.get(t) != pts_b.get(t):
                if best is None or t < best:
                    best = t
                break
    return best


# -- renderers ----------------------------------------------------------------


def _fmt_event(obj: Mapping[str, Any] | None) -> str:
    if obj is None:
        return "(stream ended)"
    t = obj.get("time")
    when = "t=?" if t is None else f"t={_fmt_tick(float(t))}"
    data = json.dumps(obj.get("data", {}), sort_keys=True)
    if len(data) > 120:
        data = data[:117] + "..."
    return f"{when} {obj.get('kind')} {data}"


def render_diff(report: DiffReport) -> str:
    """Terminal rendering of a :class:`DiffReport`."""
    from ..reporting import banner

    lines = [banner(f"repro diff — {report.label_a} vs {report.label_b}")]
    lines.append(f"verdict: {report.headline()}")
    if report.reason:
        lines.append(f"  {report.reason}")
    for note in report.notes:
        lines.append(f"  note: {note}")
    a = report.sides.get("a", {})
    b = report.sides.get("b", {})
    if a.get("events") is not None:
        lines.append(
            f"{report.label_a}: {a.get('events', 0)} events, "
            f"{a.get('structural_events', 0)} structural, "
            f"{a.get('checkpoints', 0)} checkpoints, "
            f"{a.get('placements', 0)} placements"
        )
        lines.append(
            f"{report.label_b}: {b.get('events', 0)} events, "
            f"{b.get('structural_events', 0)} structural, "
            f"{b.get('checkpoints', 0)} checkpoints, "
            f"{b.get('placements', 0)} placements"
        )
    div = report.divergence
    if div is not None:
        lines.append("")
        lines.append(
            f"first divergent structural event (#{div.index}): {div.reason}"
        )
        for ctx in div.context:
            lines.append(f"    = {_fmt_event(ctx)}")
        lines.append(f"  A > {_fmt_event(div.a)}")
        lines.append(f"  B > {_fmt_event(div.b)}")
        for after in div.after_a:
            lines.append(f"  A + {_fmt_event(after)}")
        for after in div.after_b:
            lines.append(f"  B + {_fmt_event(after)}")
    cp = report.checkpoints
    if cp:
        status = "match" if not cp.get("mismatched") else (
            f"{cp['mismatched']} MISMATCHED"
        )
        lines.append(
            f"fingerprints: {cp.get('common', 0)} common ticks ({status}); "
            f"final placement fingerprints "
            f"{'match' if cp.get('final_match') else 'DIFFER'}"
        )
        for mismatch in cp.get("mismatches", ()):
            lines.append(
                f"  t={_fmt_tick(mismatch['time'])}: {mismatch['hash_a']} vs "
                f"{mismatch['hash_b']}"
            )
    pl = report.placements
    if pl:
        lines.append(
            f"placements: {pl.get('common', 0)} common containers, "
            f"{pl.get('flipped', 0)} flipped, "
            f"{pl.get('only_a', 0)} only-{report.label_a}, "
            f"{pl.get('only_b', 0)} only-{report.label_b}"
        )
    if report.flips:
        lines.append("")
        lines.append("flipped placements (earliest first):")
        for flip in report.flips:
            when = "?" if flip.time_a is None else _fmt_tick(float(flip.time_a))
            lines.append(
                f"  {flip.container_id} ({flip.app_id or 'task'}) at t={when}: "
                f"{flip.node_a} vs {flip.node_b}"
            )
            for why in flip.explanation:
                lines.append(f"    - {why}")
        hidden = pl.get("flipped", 0) - len(report.flips)
        if hidden > 0:
            lines.append(f"  ... {hidden} more flips not shown")
    series = report.series
    if series:
        lines.append("")
        lines.append(
            f"series: {series.get('deterministic_matched', 0)} deterministic "
            f"match, {len(series.get('deterministic_deltas', ()))} differ; "
            f"{series.get('wall_compared', 0)} wall series compared, "
            f"{len(series.get('wall_flagged', ()))} beyond noise "
            f"(ratio {report.thresholds.get('ratio')}, "
            f"floor {report.thresholds.get('abs_floor_s')}s)"
        )
        for delta in series.get("deterministic_deltas", ())[:8]:
            parts = [f"  ~ {delta.get('series')}: {delta.get('status')}"]
            for stat in ("mean", "max", "last", "points"):
                if stat in delta:
                    parts.append(f"{stat} {delta[stat][0]} vs {delta[stat][1]}")
            lines.append(" ".join(parts))
        for flag in series.get("wall_flagged", ())[:8]:
            lines.append(
                f"  ! {flag['series']}: mean {flag['mean'][0]} vs "
                f"{flag['mean'][1]} (beyond noise threshold)"
            )
    prof = report.profile
    if prof.get("paths_flagged"):
        lines.append(
            f"span profile: {prof.get('paths_compared', 0)} common paths, "
            f"{len(prof['paths_flagged'])} beyond noise"
        )
        for flag in prof["paths_flagged"][:8]:
            lines.append(
                f"  ! {flag['path']}: self {flag['self_s'][0]}s vs "
                f"{flag['self_s'][1]}s"
            )
    return "\n".join(lines)


def render_diff_html(report: DiffReport, *, title: str | None = None) -> str:
    """Self-contained HTML diff report (same stylesheet as the dashboard:
    no external assets, light/dark via CSS custom properties)."""
    import html as _html

    from .report import HTML_STYLE

    if title is None:
        title = f"repro diff — {report.label_a} vs {report.label_b}"
    esc = lambda value: _html.escape(str(value))  # noqa: E731

    badge_class = {
        VERDICT_IDENTICAL: "pass",
        VERDICT_EQUIVALENT: "pass",
        VERDICT_DIVERGED: "fail",
        VERDICT_INCOMPARABLE: "fail",
    }[report.verdict]

    def table(headers: list[str], rows: list[list[Any]]) -> str:
        head = "".join(f"<th>{esc(h)}</th>" for h in headers)
        body = "".join(
            "<tr>" + "".join(
                f"<td><pre class='cell'>{esc(cell)}</pre></td>" for cell in row
            ) + "</tr>"
            for row in rows
        )
        return (
            f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{body}</tbody></table>"
        )

    sections: list[str] = []
    a = report.sides.get("a", {})
    b = report.sides.get("b", {})
    if a.get("events") is not None:
        sections.append("<h2>Runs</h2>" + table(
            ["side", "path", "events", "structural", "checkpoints",
             "placements"],
            [
                [report.label_a, a.get("path", "-"), a.get("events", 0),
                 a.get("structural_events", "-"), a.get("checkpoints", "-"),
                 a.get("placements", "-")],
                [report.label_b, b.get("path", "-"), b.get("events", 0),
                 b.get("structural_events", "-"), b.get("checkpoints", "-"),
                 b.get("placements", "-")],
            ],
        ))
    div = report.divergence
    if div is not None:
        rows = [["=", _fmt_event(ctx)] for ctx in div.context]
        rows.append([f"{report.label_a} >", _fmt_event(div.a)])
        rows.append([f"{report.label_b} >", _fmt_event(div.b)])
        rows.extend([f"{report.label_a} +", _fmt_event(e)] for e in div.after_a)
        rows.extend([f"{report.label_b} +", _fmt_event(e)] for e in div.after_b)
        sections.append(
            f"<h2>First divergent event (#{div.index})</h2>"
            f"<p class='note'>{esc(div.reason)}</p>"
            + table(["", "event"], rows)
        )
    if report.flips:
        rows = []
        for flip in report.flips:
            rows.append([
                flip.container_id,
                flip.app_id or "task",
                "?" if flip.time_a is None else _fmt_tick(float(flip.time_a)),
                flip.node_a,
                flip.node_b,
                "\n".join(flip.explanation) or "-",
            ])
        sections.append(
            "<h2>Flipped placements</h2>" + table(
                ["container", "app", "t", report.label_a, report.label_b,
                 "why"],
                rows,
            )
        )
    cp = report.checkpoints
    if cp.get("mismatches"):
        sections.append("<h2>Fingerprint mismatches</h2>" + table(
            ["t", report.label_a, report.label_b],
            [[_fmt_tick(m["time"]), m["hash_a"], m["hash_b"]]
             for m in cp["mismatches"]],
        ))
    series = report.series
    det_deltas = series.get("deterministic_deltas", ())
    if det_deltas:
        rows = []
        for delta in det_deltas:
            detail = "; ".join(
                f"{stat} {delta[stat][0]} vs {delta[stat][1]}"
                for stat in ("mean", "max", "last", "points") if stat in delta
            )
            rows.append([delta.get("series"), delta.get("status"), detail or "-"])
        sections.append("<h2>Deterministic series deltas</h2>" + table(
            ["series", "status", "detail"], rows))
    wall_flagged = series.get("wall_flagged", ())
    if wall_flagged:
        sections.append(
            "<h2>Wall-clock series beyond noise</h2>"
            f"<p class='note'>threshold: ratio "
            f"{esc(report.thresholds.get('ratio'))} + floor "
            f"{esc(report.thresholds.get('abs_floor_s'))}s</p>"
            + table(
                ["series", f"mean {report.label_a}", f"mean {report.label_b}"],
                [[f["series"], f["mean"][0], f["mean"][1]]
                 for f in wall_flagged],
            )
        )
    flagged_paths = report.profile.get("paths_flagged", ())
    if flagged_paths:
        sections.append("<h2>Span-profile paths beyond noise</h2>" + table(
            ["path", f"self s {report.label_a}", f"self s {report.label_b}"],
            [[f["path"], f["self_s"][0], f["self_s"][1]]
             for f in flagged_paths],
        ))
    notes = "".join(
        f"<p class='note'>note: {esc(note)}</p>" for note in report.notes
    )

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{esc(title)}</title>
<style>{HTML_STYLE}</style>
</head>
<body class="viz-root">
<h1>{esc(title)}</h1>
<p class="meta">verdict
<span class="badge {badge_class}">{esc(report.headline())}</span>
&middot; {esc(report.reason)}</p>
{notes}
{''.join(sections)}
</body>
</html>
"""
