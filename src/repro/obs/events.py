"""Typed trace events: the vocabulary of the observability layer.

Every instrumented component emits :class:`TraceEvent` records through a
:class:`~repro.obs.trace.Tracer`.  An event separates its payload into two
parts so traces stay *replayable*:

* ``data`` — deterministic fields (simulated time, ids, counts, decisions).
  Two runs with the same seed must produce byte-identical ``data``.
* ``wall`` — volatile wall-clock measurements (solve times, phase timings).
  These are carried in the JSONL output under the reserved ``"wall"`` key
  and stripped by :func:`canonical` / :meth:`TraceEvent.canonical_json` so
  determinism checks and trace diffs ignore them.

Event kinds are dotted strings namespaced by subsystem (``engine.*``,
``sim.*``, ``lra.*``, ``task.*``, ``cycle.*``, ``scheduler.*``,
``solver.*``); the full catalogue lives in :class:`EventKind`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["EventKind", "TraceEvent", "canonical", "WALL_KEY"]

#: Reserved JSON key holding volatile wall-clock fields.
WALL_KEY = "wall"


class EventKind:
    """Catalogue of event kinds emitted by the instrumented components."""

    # -- simulation engine ---------------------------------------------------
    ENGINE_DISPATCH = "engine.dispatch"

    # -- cluster simulation --------------------------------------------------
    SIM_HEARTBEAT = "sim.heartbeat"
    NODE_AVAILABILITY = "sim.node_availability"
    #: Periodic fingerprint of the authoritative cluster state (placement
    #: map + down nodes) plus utilisation aggregates; the anchor replay
    #: validation cross-checks against.
    SIM_STATE_HASH = "sim.state_hash"

    # -- LRA lifecycle (Medea facade) ----------------------------------------
    LRA_SUBMIT = "lra.submit"
    LRA_PLACE = "lra.place"
    LRA_REJECT = "lra.reject"
    LRA_CONFLICT = "lra.conflict"
    LRA_RESUBMIT = "lra.resubmit"
    LRA_DROP = "lra.drop"
    LRA_COMPLETE = "lra.complete"

    # -- scheduling cycles ---------------------------------------------------
    CYCLE_START = "cycle.start"
    CYCLE_END = "cycle.end"

    # -- task-based scheduler ------------------------------------------------
    TASK_SUBMIT = "task.submit"
    TASK_ALLOCATE = "task.allocate"
    TASK_RELEASE = "task.release"
    TASK_FINISH = "task.finish"

    # -- LRA schedulers ------------------------------------------------------
    SCHEDULER_PLACE = "scheduler.place"
    SCHEDULER_AUDIT = "scheduler.audit"
    #: Pending-queue depths sampled at the top of every scheduling cycle.
    SCHEDULER_QUEUE = "scheduler.queue"

    # -- placement requests (serve path, repro.core.scheduler.PlacementService)
    #: Request admitted into the placement queue (``data``: request_id,
    #: app_id, containers).  The whole ``request.*`` lifecycle carries the
    #: ``request_id`` the tracer's request context injects.
    REQUEST_SUBMIT = "request.submit"
    #: Request refused at admission (queue depth / malformed payload).
    REQUEST_REJECT = "request.reject"
    #: Placement outcome for one request (placed flag, node assignment).
    REQUEST_PLACE = "request.place"
    #: Lifecycle complete; ``wall`` carries the latency breakdown
    #: (admission/queue/place/total seconds).
    REQUEST_DONE = "request.done"

    # -- SLO monitor ---------------------------------------------------------
    SLO_BREACH = "slo.breach"

    # -- online invariant watchdog (repro.obs.watchdog) ----------------------
    #: An invariant monitor detected state corruption: ``data`` carries the
    #: check name and a deterministic structured diagnosis (nodes,
    #: containers, expected/actual values) at the corrupting tick.
    WATCHDOG_TRIP = "watchdog.trip"

    # -- hierarchical spans (repro.obs.spans) --------------------------------
    #: One closed span: ``data`` carries the deterministic identity (name,
    #: ``;``-joined ancestor path, depth, sample count), ``wall`` the
    #: volatile duration / self-time measurements.
    SPAN = "span"

    # -- benchmark harness ---------------------------------------------------
    #: Start of a fresh-cluster placement experiment; replay resets its
    #: reconstructed state here (experiments in one session share a trace).
    BENCH_EXPERIMENT = "bench.experiment"

    # -- MILP solver ---------------------------------------------------------
    SOLVER_PRESOLVE = "solver.presolve"
    SOLVER_SOLVE = "solver.solve"

    # -- migrations ----------------------------------------------------------
    MIGRATION_PLAN = "migration.plan"

    @classmethod
    def all_kinds(cls) -> list[str]:
        return sorted(
            value
            for name, value in vars(cls).items()
            if not name.startswith("_") and isinstance(value, str)
        )


@dataclass(frozen=True)
class TraceEvent:
    """One structured, deterministic trace record.

    ``time`` is the *simulated* clock when the emitter runs inside a
    simulation (or the logical cycle clock in batch experiments); ``None``
    for emitters with no meaningful logical clock.  ``seq`` is assigned by
    the tracer and totally orders the stream.
    """

    kind: str
    seq: int
    time: float | None = None
    data: Mapping[str, Any] = field(default_factory=dict)
    #: Volatile wall-clock measurements, excluded from canonical output.
    wall: Mapping[str, Any] | None = None

    def to_obj(self, *, include_wall: bool = True) -> dict[str, Any]:
        obj: dict[str, Any] = {"kind": self.kind, "seq": self.seq}
        if self.time is not None:
            obj["time"] = self.time
        if self.data:
            obj["data"] = dict(self.data)
        if include_wall and self.wall:
            obj[WALL_KEY] = dict(self.wall)
        return obj

    def to_json(self) -> str:
        """Full JSONL line (including wall-clock fields)."""
        return json.dumps(self.to_obj(), sort_keys=True, separators=(",", ":"))

    def canonical_json(self) -> str:
        """Deterministic JSONL line: the ``wall`` key is stripped."""
        return json.dumps(
            self.to_obj(include_wall=False), sort_keys=True, separators=(",", ":")
        )


def canonical(jsonl: str) -> str:
    """Strip volatile fields from raw JSONL text.

    Accepts the output of a :class:`~repro.obs.trace.JsonlSink` (one JSON
    object per line) and returns the same stream with every ``"wall"`` key
    removed — the form determinism assertions compare.
    """
    lines = []
    for line in jsonl.splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        obj.pop(WALL_KEY, None)
        lines.append(json.dumps(obj, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")
