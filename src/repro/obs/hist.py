"""Deterministic log-bucketed mergeable latency histograms.

The latency-under-load plane (ISSUE 10) needs one data structure every
consumer agrees on: bounded-memory, bounded-relative-error latency
distributions that merge *exactly* (bucket-count addition, associative and
commutative) so per-step / per-worker / per-process histograms compose
into cluster-wide percentiles without resampling bias — the property the
seeded reservoirs behind :class:`~repro.obs.metrics.TimerStat` never had.

:class:`LatencyHistogram` is HDR-histogram-shaped but built on
:func:`math.frexp`, which is exact IEEE-754 — bucket indices are pure
integer/float-exact arithmetic, so the same observation sequence produces
the same buckets on every platform:

* A value ``v`` (seconds) is scaled by ``1 / min_value_s`` and decomposed
  as ``m * 2**e`` (``m in [0.5, 1)``).  Each power-of-two octave is split
  into ``subbuckets`` linear sub-buckets; the index is
  ``(e - 1) * subbuckets + floor((2m - 1) * subbuckets)``.
* Reported quantiles use the bucket midpoint (clamped to the exact
  observed min/max), giving relative error ``<= 1 / (2 * subbuckets)``
  (~0.8% at the default 64) for values ``>= min_value_s``; smaller values
  collapse into bucket 0.
* Buckets live in a sparse dict — memory is O(occupied buckets), about
  ``subbuckets`` per decade of dynamic range, independent of count.

Closed-loop load generators suffer *coordinated omission*: a stalled
request delays the requests that would have been issued behind it, so the
recorded stream under-represents the stall.  :meth:`record_corrected`
applies the standard HDR back-fill — record the latency, then ``latency -
k * expected_interval_s`` for ``k = 1, 2, ...`` while positive — restoring
the samples the stall suppressed.

Serialization (:meth:`to_obj` / :meth:`to_json`) is byte-stable: sorted
``[index, count]`` pairs plus the bucket-geometry parameters, dumped with
sorted keys — the same histogram always serializes to the same bytes, and
a round trip through JSON (or a ``.mtrc`` event payload) is lossless.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, Mapping

__all__ = [
    "DEFAULT_MIN_VALUE_S",
    "DEFAULT_SUBBUCKETS",
    "LatencyHistogram",
    "merge_histograms",
]

#: Resolution floor (seconds): values below this collapse into bucket 0.
#: 1 microsecond — comfortably under any placement-path latency of note.
DEFAULT_MIN_VALUE_S = 1e-6

#: Linear sub-buckets per power-of-two octave.  64 bounds the midpoint
#: relative error at 1/128 (~0.8%) and keeps ~640 buckets per three decades.
DEFAULT_SUBBUCKETS = 64

#: Back-fill cap for :meth:`LatencyHistogram.record_corrected` — bounds the
#: work a pathological stall (or a bogus tiny interval) can inject.
_MAX_CORRECTION_FILLS = 100_000


class LatencyHistogram:
    """Sparse log-bucketed latency histogram (seconds domain).

    Two histograms are mergeable iff they share ``min_value_s`` and
    ``subbuckets``; :meth:`merge` is exact (integer bucket addition), so
    ``quantile`` over a merged histogram equals ``quantile`` over one
    histogram fed the concatenated observations.
    """

    __slots__ = (
        "min_value_s",
        "subbuckets",
        "count",
        "sum_s",
        "min_s",
        "max_s",
        "_buckets",
    )

    def __init__(
        self,
        *,
        min_value_s: float = DEFAULT_MIN_VALUE_S,
        subbuckets: int = DEFAULT_SUBBUCKETS,
    ) -> None:
        if min_value_s <= 0.0:
            raise ValueError(f"min_value_s must be > 0, got {min_value_s}")
        if subbuckets < 1:
            raise ValueError(f"subbuckets must be >= 1, got {subbuckets}")
        self.min_value_s = float(min_value_s)
        self.subbuckets = int(subbuckets)
        self.count = 0
        self.sum_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0
        self._buckets: dict[int, int] = {}

    # -- bucket geometry -----------------------------------------------------

    def bucket_index(self, seconds: float) -> int:
        """Deterministic bucket index for a value (clamped below at 0)."""
        x = seconds / self.min_value_s
        if x < 1.0:
            return 0
        m, e = math.frexp(x)  # x == m * 2**e, m in [0.5, 1)
        sub = int((m * 2.0 - 1.0) * self.subbuckets)
        if sub >= self.subbuckets:  # guard the m -> 1.0 rounding edge
            sub = self.subbuckets - 1
        return (e - 1) * self.subbuckets + sub

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        """``[lower, upper)`` value bounds of a bucket (seconds)."""
        if index < 0:
            raise ValueError(f"bucket index must be >= 0, got {index}")
        octave, sub = divmod(index, self.subbuckets)
        lower = math.ldexp(1.0 + sub / self.subbuckets, octave)
        upper = math.ldexp(1.0 + (sub + 1) / self.subbuckets, octave)
        return lower * self.min_value_s, upper * self.min_value_s

    def bucket_mid(self, index: int) -> float:
        """Representative (midpoint) value of a bucket (seconds)."""
        octave, sub = divmod(index, self.subbuckets)
        mid = math.ldexp(1.0 + (sub + 0.5) / self.subbuckets, octave)
        return mid * self.min_value_s

    @property
    def relative_error(self) -> float:
        """Worst-case relative error of reported quantiles for values
        ``>= min_value_s`` (midpoint vs true value within one bucket)."""
        return 1.0 / (2.0 * self.subbuckets)

    # -- recording -----------------------------------------------------------

    def record(self, seconds: float) -> None:
        """Record one latency observation (negative values clamp to 0)."""
        if seconds < 0.0:
            seconds = 0.0
        self.count += 1
        self.sum_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds
        idx = self.bucket_index(seconds)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    def record_corrected(
        self, seconds: float, expected_interval_s: float
    ) -> None:
        """Record with HDR coordinated-omission correction.

        For closed-loop measurement at a target inter-request interval:
        besides the observed latency, back-fill ``seconds - k *
        expected_interval_s`` for ``k = 1, 2, ...`` while positive — the
        samples the stalled client never got to issue.
        """
        self.record(seconds)
        if expected_interval_s <= 0.0 or seconds <= expected_interval_s:
            return
        # Fill count computed up front (not by repeated subtraction) so a
        # float residue like 1.0 - 10*0.1 == 1e-16 can't synthesize a
        # spurious ~zero sample.
        fills = min(
            int(math.ceil(seconds / expected_interval_s - 1.0 - 1e-9)),
            _MAX_CORRECTION_FILLS,
        )
        for k in range(1, fills + 1):
            self.record(seconds - k * expected_interval_s)

    # -- merging -------------------------------------------------------------

    def _check_compatible(self, other: "LatencyHistogram") -> None:
        if (
            self.min_value_s != other.min_value_s
            or self.subbuckets != other.subbuckets
        ):
            raise ValueError(
                "cannot merge histograms with different bucket geometry: "
                f"(min_value_s={self.min_value_s}, subbuckets="
                f"{self.subbuckets}) vs (min_value_s={other.min_value_s}, "
                f"subbuckets={other.subbuckets})"
            )

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram (exact; returns ``self``)."""
        self._check_compatible(other)
        self.count += other.count
        self.sum_s += other.sum_s
        if other.count:
            if other.min_s < self.min_s:
                self.min_s = other.min_s
            if other.max_s > self.max_s:
                self.max_s = other.max_s
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n
        return self

    def copy(self) -> "LatencyHistogram":
        dup = LatencyHistogram(
            min_value_s=self.min_value_s, subbuckets=self.subbuckets
        )
        dup.count = self.count
        dup.sum_s = self.sum_s
        dup.min_s = self.min_s
        dup.max_s = self.max_s
        dup._buckets = dict(self._buckets)
        return dup

    # -- reading -------------------------------------------------------------

    @property
    def mean_s(self) -> float:
        return self.sum_s / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """q-th percentile (``q`` in [0, 100]) as a bucket midpoint clamped
        to the exact observed min/max; 0.0 when nothing was recorded.

        Uses the nearest-rank definition (rank ``ceil(q/100 * count)``), so
        against an exact sorted-sample percentile the only extra error is
        the bucket's midpoint displacement — bounded by
        :attr:`relative_error` for values ``>= min_value_s``.
        """
        if not self.count:
            return 0.0
        if q <= 0.0:
            return self.min_s
        if q >= 100.0:
            return self.max_s
        target = math.ceil(q / 100.0 * self.count)
        cum = 0
        for idx in sorted(self._buckets):
            cum += self._buckets[idx]
            if cum >= target:
                value = self.bucket_mid(idx)
                return min(max(value, self.min_s), self.max_s)
        return self.max_s

    def percentiles(self) -> dict[str, float]:
        """The standard p50/p95/p99 triple (seconds)."""
        return {
            "p50_s": self.quantile(50),
            "p95_s": self.quantile(95),
            "p99_s": self.quantile(99),
        }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le_upper_bound_s, cumulative_count)`` per occupied bucket.

        The Prometheus cumulative-``_bucket`` view: counts at each occupied
        bucket's upper bound, monotonically non-decreasing; the implicit
        ``+Inf`` bucket is :attr:`count`.
        """
        out: list[tuple[float, int]] = []
        cum = 0
        for idx in sorted(self._buckets):
            cum += self._buckets[idx]
            out.append((self.bucket_bounds(idx)[1], cum))
        return out

    # -- serialization -------------------------------------------------------

    def to_obj(self) -> dict[str, Any]:
        """JSON-safe dict; byte-stable once dumped with sorted keys."""
        return {
            "buckets": [[idx, self._buckets[idx]] for idx in sorted(self._buckets)],
            "count": self.count,
            "max_s": self.max_s,
            "min_s": self.min_s if self.count else 0.0,
            "min_value_s": self.min_value_s,
            "subbuckets": self.subbuckets,
            "sum_s": self.sum_s,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_obj(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_obj(cls, obj: Mapping[str, Any]) -> "LatencyHistogram":
        hist = cls(
            min_value_s=obj["min_value_s"], subbuckets=obj["subbuckets"]
        )
        hist.count = int(obj["count"])
        hist.sum_s = float(obj["sum_s"])
        hist.max_s = float(obj["max_s"])
        hist.min_s = float(obj["min_s"]) if hist.count else math.inf
        hist._buckets = {int(idx): int(n) for idx, n in obj["buckets"]}
        return hist

    @classmethod
    def from_json(cls, text: str) -> "LatencyHistogram":
        return cls.from_obj(json.loads(text))

    def summary(self) -> dict[str, float]:
        """Flat stats dict (count/total/mean/min/max + percentiles) in the
        shape :meth:`~repro.obs.metrics.TimerStat.to_dict` snapshots use."""
        return {
            "count": self.count,
            "total_s": self.sum_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            **self.percentiles(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram(count={self.count}, mean_s={self.mean_s:.6f}, "
            f"buckets={len(self._buckets)})"
        )


def merge_histograms(
    histograms: Iterable[LatencyHistogram],
) -> LatencyHistogram:
    """Exact merge of any number of compatible histograms (empty input
    yields an empty default-geometry histogram)."""
    merged: LatencyHistogram | None = None
    for hist in histograms:
        if merged is None:
            merged = hist.copy()
        else:
            merged.merge(hist)
    return merged if merged is not None else LatencyHistogram()
