"""Deterministic load generation for the placement hot path.

ROADMAP item 2 ("Medea-as-a-service") is judged on p50/p99 placement
latency *under offered load*; this module is the instrument.  It drives
the :class:`~repro.core.scheduler.PlacementService` request path — in
process, or over HTTP against the telemetry server's ``POST /place``
endpoint — and folds every request latency into the mergeable
:class:`~repro.obs.hist.LatencyHistogram`.

Three measurement disciplines, explicit because they answer different
questions (and conflating them is the classic benchmarking sin):

* **Open loop** — arrivals follow a seeded schedule (Poisson, bursty
  on/off, or uniform) regardless of completions, like real tenants
  submitting apps.  Latency is measured from the *scheduled* arrival, so
  a stalled scheduler inflates the tail instead of silently throttling
  the generator: open-loop measurement is immune to coordinated omission
  by construction.
* **Closed loop** — a fixed number of workers issue back-to-back
  requests (each waits for its response).  Useful for saturation
  throughput, but latencies are recorded with
  :meth:`~repro.obs.hist.LatencyHistogram.record_corrected` (HDR
  coordinated-omission back-fill) against the target inter-request
  interval.
* **Virtual** — the same arrival schedules and knee analysis run against
  a seeded queueing model (deterministic service times, logical clock)
  instead of wall time.  Every number in the output derives from seeded
  arithmetic, so ``repro loadgen --virtual --sweep --json`` is
  byte-stable for a given seed — the determinism contract the rest of
  the observability plane already honours, here extended to the
  latency-under-load curve itself (and what CI diffs).

A **sweep** steps offered load over a rate ladder, records one histogram
per step, and :func:`detect_knee` finds the saturation knee: the first
step whose achieved throughput falls below ``efficiency ×`` offered, or
whose p99 blows past ``latency_blowup ×`` the unloaded baseline.  Results
render as a terminal table, an HTML latency-vs-throughput curve, a
sorted-key JSON document, or a schema-2 ``BENCH_serve.json`` for the
``repro bench-compare`` gate.
"""

from __future__ import annotations

import json
import math
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..cluster.resources import Resource
from ..core.requests import ContainerRequest, LRARequest
from .hist import LatencyHistogram, merge_histograms

__all__ = [
    "LOADGEN_SCHEMA",
    "request_from_obj",
    "request_to_obj",
    "poisson_arrivals",
    "uniform_arrivals",
    "burst_arrivals",
    "build_arrivals",
    "RequestTemplate",
    "InProcessTarget",
    "HttpTarget",
    "VirtualTarget",
    "StepResult",
    "SweepResult",
    "run_step",
    "run_sweep",
    "detect_knee",
    "sweep_to_obj",
    "sweep_to_json",
    "sweep_to_bench",
    "render_sweep",
    "render_sweep_html",
]

#: Schema tag of the ``repro loadgen --json`` document.
LOADGEN_SCHEMA = "medea.loadgen/1"

#: Saturation-knee thresholds (see :func:`detect_knee`).
KNEE_EFFICIENCY = 0.9
KNEE_LATENCY_BLOWUP = 5.0


# -- request codec (the POST /place body) -------------------------------------


def request_from_obj(payload: Mapping[str, Any]) -> LRARequest:
    """Decode a ``POST /place`` JSON body into an :class:`LRARequest`.

    Two container spellings::

        {"app_id": "a1", "containers": 4, "memory_mb": 1024, "vcores": 1}
        {"app_id": "a1", "containers": [
            {"container_id": "c0", "memory_mb": 512, "vcores": 1,
             "tags": ["hbase"]}, ...]}

    Raises ``ValueError`` / ``KeyError`` / ``TypeError`` on malformed
    payloads (the endpoint maps those to HTTP 400).
    """
    if not isinstance(payload, Mapping):
        raise TypeError("request payload must be a JSON object")
    app_id = str(payload["app_id"])
    raw = payload["containers"]
    containers: list[ContainerRequest] = []
    if isinstance(raw, int):
        if raw < 1:
            raise ValueError(f"containers must be >= 1, got {raw}")
        memory = int(payload.get("memory_mb", 1024))
        vcores = int(payload.get("vcores", 1))
        tags = frozenset(payload.get("tags", ()))
        for i in range(raw):
            containers.append(
                ContainerRequest(
                    container_id=f"{app_id}-c{i}",
                    resource=Resource(memory_mb=memory, vcores=vcores),
                    tags=tags,
                )
            )
    else:
        for i, obj in enumerate(raw):
            containers.append(
                ContainerRequest(
                    container_id=str(obj.get("container_id", f"{app_id}-c{i}")),
                    resource=Resource(
                        memory_mb=int(obj.get("memory_mb", 1024)),
                        vcores=int(obj.get("vcores", 1)),
                    ),
                    tags=frozenset(obj.get("tags", ())),
                )
            )
    return LRARequest(app_id, containers)


def request_to_obj(request: LRARequest) -> dict[str, Any]:
    """Encode an :class:`LRARequest` as the ``POST /place`` JSON body
    (constraints are not carried — load templates are constraint-free)."""
    app_tag = f"appID:{request.app_id}"
    return {
        "app_id": request.app_id,
        "containers": [
            {
                "container_id": c.container_id,
                "memory_mb": c.resource.memory_mb,
                "vcores": c.resource.vcores,
                "tags": sorted(t for t in c.tags if t != app_tag),
            }
            for c in request.containers
        ],
    }


# -- arrival schedules ---------------------------------------------------------


def poisson_arrivals(
    rate_rps: float, count: int, rng: random.Random
) -> list[float]:
    """``count`` cumulative arrival offsets (seconds) of a Poisson process
    at ``rate_rps`` — i.i.d. exponential inter-arrivals, seeded rng."""
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    t = 0.0
    out: list[float] = []
    for _ in range(count):
        t += rng.expovariate(rate_rps)
        out.append(t)
    return out


def uniform_arrivals(rate_rps: float, count: int) -> list[float]:
    """Evenly spaced arrivals at ``rate_rps``."""
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    return [(i + 1) / rate_rps for i in range(count)]


def burst_arrivals(
    rate_rps: float,
    count: int,
    rng: random.Random,
    *,
    period_s: float = 2.0,
    duty: float = 0.25,
) -> list[float]:
    """Bursty on/off arrivals averaging ``rate_rps``.

    Real LRA submission streams are bursty, not uniform (the IN2P3
    workload analysis in PAPERS.md): each ``period_s`` window is ``duty``
    fraction *on* at rate ``rate_rps / duty`` and otherwise silent.
    Implemented exactly: a Poisson process is generated in compressed
    "on-time" and each on-window is re-expanded onto the real clock, so
    the schedule is deterministic for a given rng.
    """
    if not 0.0 < duty <= 1.0:
        raise ValueError(f"duty must be in (0, 1], got {duty}")
    on_s = period_s * duty
    out: list[float] = []
    for t_on in poisson_arrivals(rate_rps / duty, count, rng):
        window, offset = divmod(t_on, on_s)
        out.append(window * period_s + offset)
    return out


def build_arrivals(
    arrival: str, rate_rps: float, count: int, rng: random.Random
) -> list[float]:
    """Dispatch on the arrival-process name (poisson / burst / uniform)."""
    if arrival == "poisson":
        return poisson_arrivals(rate_rps, count, rng)
    if arrival == "burst":
        return burst_arrivals(rate_rps, count, rng)
    if arrival == "uniform":
        return uniform_arrivals(rate_rps, count)
    raise ValueError(f"unknown arrival process {arrival!r}")


# -- request templates ---------------------------------------------------------


@dataclass(frozen=True)
class RequestTemplate:
    """Seeded factory of generic LRA submissions (constraint-free, so the
    same template drives both the in-process and the HTTP target)."""

    containers: int = 4
    memory_mb: int = 1024
    vcores: int = 1
    prefix: str = "ld"

    def build(self, index: int) -> LRARequest:
        app_id = f"{self.prefix}-{index:06d}"
        return LRARequest(
            app_id,
            [
                ContainerRequest(
                    container_id=f"{app_id}-c{i}",
                    resource=Resource(
                        memory_mb=self.memory_mb, vcores=self.vcores
                    ),
                    tags=frozenset(),
                )
                for i in range(self.containers)
            ],
        )

    def to_obj(self) -> dict[str, Any]:
        return {
            "containers": self.containers,
            "memory_mb": self.memory_mb,
            "vcores": self.vcores,
            "prefix": self.prefix,
        }


# -- targets -------------------------------------------------------------------


class InProcessTarget:
    """Drive a :class:`~repro.core.scheduler.PlacementService` directly."""

    kind = "inprocess"

    def __init__(self, service) -> None:
        self.service = service

    def place(self, request: LRARequest, *, now: float) -> str:
        """Issue one request; returns the outcome (``placed`` /
        ``rejected`` / ``error``)."""
        response = self.service.handle(request, now=now)
        return "placed" if response.placed else "rejected"

    def describe(self) -> str:
        return f"in-process {type(self.service.scheduler).__name__}"


class HttpTarget:
    """Drive ``POST /place`` on a telemetry endpoint over HTTP."""

    kind = "http"

    def __init__(self, base_url: str, *, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def place(self, request: LRARequest, *, now: float) -> str:
        from urllib.error import HTTPError, URLError
        from urllib.request import Request, urlopen

        from ..version import user_agent

        body = json.dumps(request_to_obj(request)).encode("utf-8")
        req = Request(
            self.base_url + "/place",
            data=body,
            headers={
                "Content-Type": "application/json",
                "User-Agent": user_agent("loadgen"),
            },
            method="POST",
        )
        try:
            with urlopen(req, timeout=self.timeout_s) as response:
                payload = json.loads(response.read().decode("utf-8"))
            return "placed" if payload.get("placed") else "rejected"
        except HTTPError as err:
            err.read()
            return "rejected" if err.code == 503 else "error"
        except (URLError, OSError, ValueError):
            return "error"

    def describe(self) -> str:
        return self.base_url


class VirtualTarget:
    """Seeded queueing model standing in for a real scheduler.

    ``servers`` parallel service stations with exponential (or constant)
    service times of mean ``service_time_s``; a logical clock replaces
    wall time, so step results — achieved throughput included — are pure
    functions of the seed.  Used by ``repro loadgen --virtual`` for
    byte-stable curves and by CI to validate the sweep/knee machinery
    without timing noise.
    """

    kind = "virtual"

    def __init__(
        self,
        *,
        service_time_s: float = 0.002,
        servers: int = 1,
        dist: str = "exp",
        seed: int = 0,
    ) -> None:
        if service_time_s <= 0:
            raise ValueError("service_time_s must be > 0")
        if servers < 1:
            raise ValueError("servers must be >= 1")
        if dist not in ("exp", "const"):
            raise ValueError(f"unknown service distribution {dist!r}")
        self.service_time_s = service_time_s
        self.servers = servers
        self.dist = dist
        self.seed = seed

    def service_times(self, count: int) -> list[float]:
        if self.dist == "const":
            return [self.service_time_s] * count
        rng = random.Random((self.seed << 8) ^ 0x5EED)
        return [rng.expovariate(1.0 / self.service_time_s) for _ in range(count)]

    def describe(self) -> str:
        return (
            f"virtual queue ({self.servers}x {self.dist} "
            f"{self.service_time_s * 1e3:g}ms)"
        )

    def to_obj(self) -> dict[str, Any]:
        return {
            "dist": self.dist,
            "servers": self.servers,
            "service_time_s": self.service_time_s,
        }


# -- step execution ------------------------------------------------------------


@dataclass
class StepResult:
    """One offered-load step of a sweep."""

    offered_rps: float
    mode: str
    requests: int
    #: Realized offered rate: ``requests / last scheduled arrival``.  A
    #: Poisson schedule's nominal rate has O(1/sqrt(N)) sampling noise;
    #: the knee test compares achieved throughput against this, not the
    #: nominal, so an unloaded step can't trip the efficiency threshold
    #: just because its schedule came out long.
    effective_rps: float = 0.0
    placed: int = 0
    rejected: int = 0
    errors: int = 0
    #: Wall (or virtual) seconds from first arrival to last completion.
    duration_s: float = 0.0
    achieved_rps: float = 0.0
    hist: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def completed(self) -> int:
        return self.placed + self.rejected

    def to_obj(self, *, include_hist: bool = True) -> dict[str, Any]:
        obj: dict[str, Any] = {
            "achieved_rps": round(self.achieved_rps, 6),
            "duration_s": round(self.duration_s, 6),
            "effective_rps": round(self.effective_rps, 6),
            "errors": self.errors,
            "latency": self.hist.summary(),
            "mode": self.mode,
            "offered_rps": self.offered_rps,
            "placed": self.placed,
            "rejected": self.rejected,
            "requests": self.requests,
        }
        if include_hist:
            obj["hist"] = self.hist.to_obj()
        return obj


def _effective_rate(
    arrivals: Sequence[float], mode: str, offered_rps: float
) -> float:
    """The rate the schedule actually offered (closed loops offer exactly
    the nominal target)."""
    if mode == "closed" or not arrivals or arrivals[-1] <= 0:
        return offered_rps
    return round(len(arrivals) / arrivals[-1], 6)


def _run_virtual_step(
    target: VirtualTarget,
    arrivals: Sequence[float],
    *,
    mode: str,
    offered_rps: float,
    concurrency: int,
) -> StepResult:
    """Event-driven queueing simulation of one step (logical clock)."""
    import heapq

    count = len(arrivals)
    step = StepResult(
        offered_rps=offered_rps,
        mode=mode,
        requests=count,
        effective_rps=_effective_rate(arrivals, mode, offered_rps),
    )
    services = target.service_times(count)
    free = [0.0] * target.servers
    heapq.heapify(free)
    if mode == "open":
        last_done = 0.0
        for arrival, svc in zip(arrivals, services):
            start = max(arrival, heapq.heappop(free))
            done = start + svc
            heapq.heappush(free, done)
            last_done = max(last_done, done)
            step.hist.record(done - arrival)
            step.placed += 1
        step.duration_s = last_done
    else:
        # Closed loop: `concurrency` clients issue back-to-back; latency
        # is CO-corrected against the per-client target interval.
        interval = concurrency / offered_rps if offered_rps > 0 else 0.0
        ready = [0.0] * max(1, concurrency)
        heapq.heapify(ready)
        last_done = 0.0
        for svc in services:
            client = heapq.heappop(ready)
            start = max(client, heapq.heappop(free))
            done = start + svc
            heapq.heappush(free, done)
            heapq.heappush(ready, done)
            last_done = max(last_done, done)
            step.hist.record_corrected(done - client, interval)
            step.placed += 1
        step.duration_s = last_done
    if step.duration_s > 0:
        step.achieved_rps = round(step.completed / step.duration_s, 6)
    return step


def _run_open_loop(
    target,
    template: RequestTemplate,
    arrivals: Sequence[float],
    *,
    offered_rps: float,
    concurrency: int,
    index_base: int,
) -> StepResult:
    """Paced open-loop step against a real (wall-clock) target."""
    from concurrent.futures import ThreadPoolExecutor

    count = len(arrivals)
    step = StepResult(
        offered_rps=offered_rps,
        mode="open",
        requests=count,
        effective_rps=_effective_rate(arrivals, "open", offered_rps),
    )
    lock = threading.Lock()
    t0 = time.perf_counter()

    def issue(index: int, arrival: float) -> None:
        request = template.build(index_base + index)
        outcome = target.place(request, now=arrival)
        latency = time.perf_counter() - (t0 + arrival)
        with lock:
            # Arrival-anchored latency: queueing delay behind a slow
            # scheduler (or an exhausted worker pool) counts against the
            # tail instead of being coordinated away.
            step.hist.record(latency)
            if outcome == "placed":
                step.placed += 1
            elif outcome == "rejected":
                step.rejected += 1
            else:
                step.errors += 1

    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        futures = []
        for i, arrival in enumerate(arrivals):
            delay = t0 + arrival - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(pool.submit(issue, i, arrival))
        for future in futures:
            future.result()
    step.duration_s = time.perf_counter() - t0
    if step.duration_s > 0:
        step.achieved_rps = round(step.completed / step.duration_s, 6)
    return step


def _run_closed_loop(
    target,
    template: RequestTemplate,
    *,
    requests: int,
    offered_rps: float,
    concurrency: int,
    index_base: int,
) -> StepResult:
    """Closed-loop step: ``concurrency`` workers, back-to-back requests,
    per-worker histograms merged exactly at the end (the merge property
    doing real work), coordinated-omission corrected when a target rate
    is set."""
    step = StepResult(
        offered_rps=offered_rps,
        mode="closed",
        requests=requests,
        effective_rps=offered_rps,
    )
    interval = concurrency / offered_rps if offered_rps > 0 else 0.0
    counters_lock = threading.Lock()
    hists: list[LatencyHistogram] = []

    def worker(worker_id: int, quota: int) -> None:
        hist = LatencyHistogram()
        placed = rejected = errors = 0
        for i in range(quota):
            index = index_base + worker_id * quota + i
            request = template.build(index)
            t_start = time.perf_counter()
            outcome = target.place(request, now=time.perf_counter() - t0)
            latency = time.perf_counter() - t_start
            hist.record_corrected(latency, interval)
            if outcome == "placed":
                placed += 1
            elif outcome == "rejected":
                rejected += 1
            else:
                errors += 1
        with counters_lock:
            hists.append(hist)
            step.placed += placed
            step.rejected += rejected
            step.errors += errors

    quota = max(1, requests // max(1, concurrency))
    threads = [
        threading.Thread(target=worker, args=(w, quota), daemon=True)
        for w in range(max(1, concurrency))
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    step.duration_s = time.perf_counter() - t0
    step.requests = quota * max(1, concurrency)
    step.hist = merge_histograms(hists)
    if step.duration_s > 0:
        step.achieved_rps = round(step.completed / step.duration_s, 6)
    return step


def run_step(
    target,
    template: RequestTemplate,
    *,
    offered_rps: float,
    requests: int,
    mode: str = "open",
    arrival: str = "poisson",
    concurrency: int = 16,
    seed: int = 0,
    index_base: int = 0,
) -> StepResult:
    """Run one offered-load step against any target."""
    rng = random.Random((seed << 16) ^ hash(round(offered_rps * 1000)) & 0xFFFF)
    arrivals = build_arrivals(arrival, offered_rps, requests, rng)
    if isinstance(target, VirtualTarget):
        return _run_virtual_step(
            target,
            arrivals,
            mode=mode,
            offered_rps=offered_rps,
            concurrency=concurrency,
        )
    if mode == "open":
        return _run_open_loop(
            target,
            template,
            arrivals,
            offered_rps=offered_rps,
            concurrency=concurrency,
            index_base=index_base,
        )
    if mode == "closed":
        return _run_closed_loop(
            target,
            template,
            requests=requests,
            offered_rps=offered_rps,
            concurrency=concurrency,
            index_base=index_base,
        )
    raise ValueError(f"unknown mode {mode!r}")


# -- sweeps and the saturation knee -------------------------------------------


@dataclass
class SweepResult:
    """A full offered-load ladder with per-step histograms."""

    steps: list[StepResult]
    config: dict[str, Any]
    knee: dict[str, Any] | None = None

    def merged_hist(self) -> LatencyHistogram:
        return merge_histograms(step.hist for step in self.steps)


def detect_knee(
    steps: Sequence[StepResult],
    *,
    efficiency: float = KNEE_EFFICIENCY,
    latency_blowup: float = KNEE_LATENCY_BLOWUP,
) -> dict[str, Any] | None:
    """Find the saturation knee of a rate ladder.

    The knee is the first step that either (a) achieves less than
    ``efficiency ×`` its *realized* offered rate (throughput collapse —
    realized, not nominal, so Poisson schedule noise can't fake a knee)
    or (b) shows p99 latency beyond ``latency_blowup ×`` the first step's
    p99 (queueing blow-up; only applied when the baseline p99 is
    nonzero).  Returns ``None`` while the ladder never saturates.
    ``capacity_rps`` is the last pre-knee achieved throughput — the
    number to size admission control against.
    """
    if not steps:
        return None
    base_p99 = steps[0].hist.quantile(99)
    for i, step in enumerate(steps):
        reason = None
        offered = step.effective_rps or step.offered_rps
        if step.completed and step.achieved_rps < efficiency * offered:
            reason = "throughput"
        elif (
            base_p99 > 0.0
            and i > 0
            and step.hist.quantile(99) > latency_blowup * base_p99
        ):
            reason = "latency"
        if reason is not None:
            capacity = (
                steps[i - 1].achieved_rps if i > 0 else step.achieved_rps
            )
            return {
                "step": i,
                "offered_rps": step.offered_rps,
                "achieved_rps": step.achieved_rps,
                "p99_s": step.hist.quantile(99),
                "reason": reason,
                "capacity_rps": capacity,
            }
    return None


def run_sweep(
    target,
    template: RequestTemplate,
    *,
    rates: Sequence[float],
    requests_per_step: int,
    mode: str = "open",
    arrival: str = "poisson",
    concurrency: int = 16,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Step offered load over ``rates`` and analyse the knee."""
    steps: list[StepResult] = []
    index_base = 0
    for rate in rates:
        step = run_step(
            target,
            template,
            offered_rps=rate,
            requests=requests_per_step,
            mode=mode,
            arrival=arrival,
            concurrency=concurrency,
            seed=seed,
            index_base=index_base,
        )
        index_base += step.requests
        steps.append(step)
        if progress is not None:
            pct = step.hist.percentiles()
            progress(
                f"rate={rate:g}rps achieved={step.achieved_rps:g}rps "
                f"p50={pct['p50_s'] * 1e3:.2f}ms "
                f"p99={pct['p99_s'] * 1e3:.2f}ms"
            )
    config = {
        "arrival": arrival,
        "concurrency": concurrency,
        "mode": mode,
        "rates": [float(r) for r in rates],
        "requests_per_step": requests_per_step,
        "seed": seed,
        "target": target.describe(),
        "template": template.to_obj(),
    }
    if isinstance(target, VirtualTarget):
        config["virtual"] = target.to_obj()
    return SweepResult(
        steps=steps, config=config, knee=detect_knee(steps)
    )


# -- output --------------------------------------------------------------------


def sweep_to_obj(sweep: SweepResult, *, include_hist: bool = True) -> dict[str, Any]:
    """The ``--json`` document: sorted-key, schema-tagged; deterministic
    (byte-stable for a seed) when the target was virtual."""
    return {
        "config": sweep.config,
        "deterministic": sweep.config.get("target", "").startswith("virtual"),
        "knee": sweep.knee,
        "schema": LOADGEN_SCHEMA,
        "steps": [s.to_obj(include_hist=include_hist) for s in sweep.steps],
    }


def sweep_to_json(sweep: SweepResult) -> str:
    return json.dumps(
        sweep_to_obj(sweep), sort_keys=True, separators=(",", ":")
    ) + "\n"


def sweep_to_bench(sweep: SweepResult, *, label: str = "serve_sweep") -> dict[str, Any]:
    """Schema-2 ``BENCH_serve.json`` document: latency percentiles and
    achieved throughput as series over the offered-rate axis, stats
    attached so ``repro bench-compare`` gates it directly."""
    from .bench import attach_stats

    offered = [s.offered_rps for s in sweep.steps]
    series = {
        "place_latency_p50_s": {
            "t": offered, "v": [s.hist.quantile(50) for s in sweep.steps]
        },
        "place_latency_p95_s": {
            "t": offered, "v": [s.hist.quantile(95) for s in sweep.steps]
        },
        "place_latency_p99_s": {
            "t": offered, "v": [s.hist.quantile(99) for s in sweep.steps]
        },
        "achieved_rps": {
            "t": offered, "v": [s.achieved_rps for s in sweep.steps]
        },
    }
    entry: dict[str, Any] = {
        "mode": sweep.config.get("mode"),
        "arrival": sweep.config.get("arrival"),
        "target": sweep.config.get("target"),
        "requests_per_step": sweep.config.get("requests_per_step"),
        "series": series,
    }
    if sweep.knee is not None:
        entry["knee"] = sweep.knee
    return attach_stats({"benchmarks": {label: entry}})


def render_sweep(sweep: SweepResult) -> str:
    """Terminal latency-vs-throughput table plus the knee verdict."""
    from ..reporting import render_table

    rows = []
    knee_step = sweep.knee["step"] if sweep.knee else None
    for i, step in enumerate(sweep.steps):
        pct = step.hist.percentiles()
        rows.append(
            [
                ("*" if i == knee_step else "") + f"{step.offered_rps:g}",
                f"{step.achieved_rps:g}",
                step.requests,
                step.placed,
                step.rejected,
                step.errors,
                f"{pct['p50_s'] * 1e3:.3f}",
                f"{pct['p95_s'] * 1e3:.3f}",
                f"{pct['p99_s'] * 1e3:.3f}",
            ]
        )
    table = render_table(
        [
            "offered rps",
            "achieved",
            "requests",
            "placed",
            "rejected",
            "errors",
            "p50 ms",
            "p95 ms",
            "p99 ms",
        ],
        rows,
    )
    lines = [
        f"loadgen sweep — {sweep.config.get('mode')} loop, "
        f"{sweep.config.get('arrival')} arrivals, "
        f"target {sweep.config.get('target')}",
        "",
        table,
    ]
    if sweep.knee is not None:
        lines.append(
            f"* saturation knee at {sweep.knee['offered_rps']:g} rps offered "
            f"({sweep.knee['reason']}): capacity ≈ "
            f"{sweep.knee['capacity_rps']:g} rps, "
            f"p99 {sweep.knee['p99_s'] * 1e3:.2f}ms"
        )
    else:
        lines.append("no saturation knee detected (ladder never saturated)")
    return "\n".join(lines)


def render_sweep_html(sweep: SweepResult) -> str:
    """Self-contained HTML report: latency-vs-throughput curves (p50/p99
    over achieved rps) in the dashboard's visual style."""
    from html import escape

    from .report import HTML_STYLE, _svg_line_chart

    def chart(values: list[float], color: str) -> str:
        points = [
            [s.achieved_rps, v] for s, v in zip(sweep.steps, values)
        ]
        if not points:
            return "<p>(no steps)</p>"
        return _svg_line_chart(points, color=color)

    p50 = [s.hist.quantile(50) * 1e3 for s in sweep.steps]
    p99 = [s.hist.quantile(99) * 1e3 for s in sweep.steps]
    achieved = [[s.offered_rps, s.achieved_rps] for s in sweep.steps]
    knee_html = ""
    if sweep.knee is not None:
        knee_html = (
            f"<p><strong>Saturation knee</strong>: offered "
            f"{sweep.knee['offered_rps']:g} rps ({escape(sweep.knee['reason'])}) "
            f"— capacity ≈ {sweep.knee['capacity_rps']:g} rps, "
            f"p99 {sweep.knee['p99_s'] * 1e3:.2f} ms</p>"
        )
    rows = "".join(
        "<tr>"
        f"<td>{s.offered_rps:g}</td><td>{s.achieved_rps:g}</td>"
        f"<td>{s.requests}</td><td>{s.placed}</td><td>{s.rejected}</td>"
        f"<td>{s.errors}</td>"
        f"<td>{s.hist.quantile(50) * 1e3:.3f}</td>"
        f"<td>{s.hist.quantile(95) * 1e3:.3f}</td>"
        f"<td>{s.hist.quantile(99) * 1e3:.3f}</td>"
        "</tr>"
        for s in sweep.steps
    )
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>repro loadgen — latency under load</title>
<style>{HTML_STYLE}</style></head><body>
<h1>Latency under load</h1>
<p>{escape(str(sweep.config.get('mode')))} loop,
{escape(str(sweep.config.get('arrival')))} arrivals,
target {escape(str(sweep.config.get('target')))}</p>
{knee_html}
<h2>p50 latency (ms) vs achieved throughput (rps)</h2>
{chart(p50, "#2563eb")}
<h2>p99 latency (ms) vs achieved throughput (rps)</h2>
{chart(p99, "#dc2626")}
<h2>Achieved vs offered throughput (rps)</h2>
{_svg_line_chart(achieved, color="#059669") if achieved else ""}
<h2>Steps</h2>
<table><thead><tr><th>offered rps</th><th>achieved</th><th>requests</th>
<th>placed</th><th>rejected</th><th>errors</th>
<th>p50 ms</th><th>p95 ms</th><th>p99 ms</th></tr></thead>
<tbody>{rows}</tbody></table>
</body></html>
"""
