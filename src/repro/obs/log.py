"""Structured JSON-lines run logging for the live plane.

Where the tracer records *what the system did* (deterministic, replayable
events), the run logger records *what the operator should read*: one JSON
object per line carrying the run id, the simulated tick, the emitting
component, and — when the emitter sits inside a profiling span — the
current span path.  Engine, simulation, Medea facade and solver log
through it instead of ad-hoc prints, so a long run leaves a single
greppable, machine-parseable narrative (CI uploads it as an artifact).

Zero-cost when disabled, like the rest of ``repro.obs``: the ambient
default is a shared disabled logger and call sites guard with
``if log.enabled:`` so no record dict is ever built on the fast path.

Two output formats:

* ``json`` — one compact sorted-key JSON object per line (the artifact
  form; ``repro.obs.report.read_trace``-style tooling can consume it).
* ``console`` — a human-readable single-line rendering for watching a
  run from a terminal (``12.0s INFO  sim: node flip node=node-3 up=False``).

Ambient configuration mirrors the tracer: :func:`get_run_logger` /
:func:`set_run_logger` / :func:`configure_log` /
:func:`configure_log_from_env` (``MEDEA_LOG=<path|->``,
``MEDEA_LOG_FORMAT=json|console``, ``MEDEA_LOG_LEVEL=debug|info|...``).
"""

from __future__ import annotations

import io
import json
import os
import sys
import time
import uuid
from typing import Any, Mapping, TextIO

__all__ = [
    "LEVELS",
    "RunLogger",
    "get_run_logger",
    "set_run_logger",
    "configure_log",
    "configure_log_from_env",
    "render_console_line",
]

#: Environment variables read by :func:`configure_log_from_env`.
ENV_LOG = "MEDEA_LOG"
ENV_LOG_FORMAT = "MEDEA_LOG_FORMAT"
ENV_LOG_LEVEL = "MEDEA_LOG_LEVEL"

#: Severity order; a logger drops records below its threshold.
LEVELS = ("debug", "info", "warning", "error")
_LEVEL_INDEX = {name: index for index, name in enumerate(LEVELS)}

_FORMATS = ("json", "console")


def _new_run_id() -> str:
    """Short unique id stamped on every record of one process's run."""
    return uuid.uuid4().hex[:12]


def render_console_line(record: Mapping[str, Any]) -> str:
    """Human-readable one-line form of a structured log record."""
    tick = record.get("tick")
    tick_part = f"{tick:>8.1f}s" if isinstance(tick, (int, float)) else " " * 9
    level = str(record.get("level", "info")).upper()
    component = record.get("component", "?")
    message = record.get("msg", "")
    extras = [
        f"{key}={record[key]}"
        for key in sorted(record)
        if key not in ("ts", "run_id", "level", "component", "tick", "msg", "span")
    ]
    span = record.get("span")
    if span:
        extras.append(f"span={span}")
    suffix = (" " + " ".join(extras)) if extras else ""
    return f"{tick_part} {level:<7} {component}: {message}{suffix}"


class RunLogger:
    """Structured logger with a JSONL (or console) text sink.

    ``enabled`` is a plain attribute so the hot-path guard is one attribute
    read; calling :meth:`log` while disabled is still a safe no-op.
    """

    def __init__(
        self,
        target: str | os.PathLike | TextIO | None = None,
        *,
        fmt: str = "json",
        level: str = "info",
        run_id: str | None = None,
        enabled: bool = True,
        clock=time.time,
    ) -> None:
        if fmt not in _FORMATS:
            raise ValueError(f"unknown log format {fmt!r}; expected one of {_FORMATS}")
        if level not in _LEVEL_INDEX:
            raise ValueError(f"unknown log level {level!r}; expected one of {LEVELS}")
        if isinstance(target, (str, os.PathLike)):
            self._file: TextIO | None = open(target, "w", encoding="utf-8")
            self._owned = True
            self.path: str | None = os.fspath(target)
        else:
            self._file = target
            self._owned = False
            self.path = getattr(target, "name", None)
        self.fmt = fmt
        self.level = level
        self.run_id = run_id if run_id is not None else _new_run_id()
        self.enabled = enabled and self._file is not None
        self.records = 0
        self._clock = clock
        self._threshold = _LEVEL_INDEX[level]
        self._closed = False

    # -- emission -----------------------------------------------------------

    def log(
        self,
        component: str,
        message: str,
        *,
        level: str = "info",
        tick: float | None = None,
        **fields: Any,
    ) -> dict[str, Any] | None:
        """Emit one structured record; returns it (``None`` when dropped).

        ``fields`` carry arbitrary JSON-serialisable context; the span path
        of the ambient tracer (if the caller sits inside a
        :func:`repro.obs.spans.span`) is attached automatically.
        """
        if not self.enabled or self._closed:
            return None
        if _LEVEL_INDEX.get(level, 1) < self._threshold:
            return None
        record: dict[str, Any] = {
            "ts": round(self._clock(), 3),
            "run_id": self.run_id,
            "level": level,
            "component": component,
            "msg": message,
        }
        if tick is not None:
            record["tick"] = tick
        span_path = _ambient_span_path()
        if span_path:
            record["span"] = span_path
        for key, value in fields.items():
            record[key] = value
        self.records += 1
        if self.fmt == "json":
            line = json.dumps(record, sort_keys=True, separators=(",", ":"),
                              default=str)
        else:
            line = render_console_line(record)
        try:
            self._file.write(line + "\n")
        except ValueError:  # sink closed underneath us (test teardown)
            self.enabled = False
            return None
        return record

    def debug(self, component: str, message: str, **kw: Any):
        return self.log(component, message, level="debug", **kw)

    def info(self, component: str, message: str, **kw: Any):
        return self.log(component, message, level="info", **kw)

    def warning(self, component: str, message: str, **kw: Any):
        return self.log(component, message, level="warning", **kw)

    def error(self, component: str, message: str, **kw: Any):
        return self.log(component, message, level="error", **kw)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.enabled = False
        if self._file is None:
            return
        try:
            self._file.flush()
        except (ValueError, io.UnsupportedOperation):
            pass
        if self._owned:
            self._file.close()


def _ambient_span_path() -> str | None:
    """Span path of the ambient tracer (``None`` outside any span)."""
    # Imported lazily: spans → trace → (nothing); avoids a cycle when the
    # spans module itself wants to log.
    from .spans import current_span_path

    try:
        return current_span_path()
    except Exception:  # pragma: no cover - defensive
        return None


#: Shared disabled logger: the ambient default until configured.
_NULL_LOGGER = RunLogger(None, enabled=False, run_id="disabled")
_default_logger: RunLogger = _NULL_LOGGER


def get_run_logger() -> RunLogger:
    """The process-wide default run logger (disabled unless configured)."""
    return _default_logger


def set_run_logger(logger: RunLogger | None) -> RunLogger:
    """Install ``logger`` as the default (``None`` restores the disabled
    null logger); returns the previous default so callers can restore it."""
    global _default_logger
    previous = _default_logger
    _default_logger = logger if logger is not None else _NULL_LOGGER
    return previous


def configure_log(
    target: str | os.PathLike | TextIO,
    *,
    fmt: str = "json",
    level: str = "info",
    run_id: str | None = None,
) -> RunLogger:
    """Build a run logger on ``target`` and install it as the default."""
    logger = RunLogger(target, fmt=fmt, level=level, run_id=run_id)
    set_run_logger(logger)
    return logger


def configure_log_from_env(environ: Mapping[str, str] | None = None) -> RunLogger | None:
    """Enable run logging when ``MEDEA_LOG`` is set.

    ``MEDEA_LOG`` names the output file (``-`` or ``stderr`` log to
    stderr); ``MEDEA_LOG_FORMAT`` picks ``json`` (default) or ``console``;
    ``MEDEA_LOG_LEVEL`` sets the threshold.  Idempotent: does nothing if an
    enabled logger is already installed.  Returns the installed logger, or
    ``None`` when logging is not requested.
    """
    env = os.environ if environ is None else environ
    target = env.get(ENV_LOG, "").strip()
    if not target:
        return None
    if _default_logger.enabled:
        return _default_logger
    fmt = env.get(ENV_LOG_FORMAT, "json").strip().lower() or "json"
    level = env.get(ENV_LOG_LEVEL, "info").strip().lower() or "info"
    if target in ("-", "stderr"):
        return configure_log(sys.stderr, fmt=fmt, level=level)
    return configure_log(target, fmt=fmt, level=level)
