"""Counters, gauges, and timers with label support, plus a snapshot API.

The :class:`Metrics` registry is the repo's one generic telemetry channel:
instead of hand-threading bespoke stats records component → scheduler →
result → harness (the PR-1 ``SolverStats`` plumbing), instrumented code
records into the ambient registry and consumers read a :meth:`snapshot`.

Instruments are label-aware: ``metrics.counter("lra_placed_total").inc(
scheduler="MEDEA-ILP")`` keeps one value per label set.  Labels are
canonicalised (sorted ``key=value`` pairs) so snapshots are deterministic.

:class:`SolverStats` — the MILP effort breakdown both solver backends
produce — lives here as one of the metric types; ``repro.solver`` keeps a
deprecation alias so existing imports continue to work.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from .hist import LatencyHistogram
from .stats import percentile as _percentile

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "TimerStat",
    "Metrics",
    "SolverStats",
    "get_metrics",
    "set_metrics",
    "parse_label_key",
    "use_reservoir_percentiles",
]


def _escape_label_part(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace(",", "\\,").replace("=", "\\=")
    )


def _label_key(labels: Mapping[str, Any]) -> str:
    """Canonical string form of a label set (sorted ``k=v`` pairs).

    ``\\``, ``,`` and ``=`` inside keys or values are backslash-escaped so
    the key round-trips losslessly through :func:`parse_label_key` — a
    label value like ``rack=a,b`` must not masquerade as two labels."""
    if not labels:
        return ""
    return ",".join(
        f"{_escape_label_part(k)}={_escape_label_part(str(labels[k]))}"
        for k in sorted(labels)
    )


def parse_label_key(label_key: str) -> list[tuple[str, str]]:
    """Invert :func:`_label_key`: canonical string → ``(key, value)`` pairs
    (order preserved; unescapes ``\\\\``, ``\\,`` and ``\\=``)."""
    if not label_key:
        return []
    pairs: list[tuple[str, str]] = []
    key_parts: list[str] = []
    value_parts: list[str] = []
    current = key_parts
    chars = iter(label_key)
    for ch in chars:
        if ch == "\\":
            current.append(next(chars, ""))
        elif ch == "=" and current is key_parts:
            current = value_parts
        elif ch == ",":
            pairs.append(("".join(key_parts), "".join(value_parts)))
            key_parts, value_parts = [], []
            current = key_parts
        else:
            current.append(ch)
    pairs.append(("".join(key_parts), "".join(value_parts)))
    return pairs


class _Instrument:
    """Shared naming/labelling machinery."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help


class Counter(_Instrument):
    """Monotonically increasing value per label set."""

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[str, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot decrease ({amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())

    def snapshot(self) -> dict[str, float]:
        return {k: self._values[k] for k in sorted(self._values)}


class Gauge(_Instrument):
    """Last-write-wins value per label set."""

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[str, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = float(value)

    def add(self, delta: float, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + delta

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> dict[str, float]:
        return {k: self._values[k] for k in sorted(self._values)}


#: Bounded reservoir size backing *legacy* timer percentiles (per label
#: set) — the pre-histogram path kept behind :func:`use_reservoir_percentiles`.
RESERVOIR_SIZE = 256
#: Fixed seed for the per-stat reservoir RNG: same observation sequence →
#: same retained sample → deterministic percentiles (Vitter's algorithm R).
_RESERVOIR_SEED = 0x5EED

#: When True, new observations feed the deprecated bounded reservoir
#: instead of the log-bucketed histogram.  Flipped (with a one-time
#: DeprecationWarning) by :func:`use_reservoir_percentiles`.
_reservoir_mode = False
_reservoir_warned = False


def use_reservoir_percentiles(enabled: bool = True) -> None:
    """Deprecated: opt timer percentiles back onto reservoir sampling.

    Timer percentiles are histogram-backed (``repro.obs.hist``): bounded
    relative error and exact under merge, where the old seeded reservoir
    was an unbiased-but-noisy subsample.  This shim restores the old
    behaviour for stats created *and fed* after the call; it warns once
    and will be removed once nothing depends on reservoir semantics.
    """
    global _reservoir_mode, _reservoir_warned
    if enabled and not _reservoir_warned:
        _reservoir_warned = True
        warnings.warn(
            "use_reservoir_percentiles(): reservoir-sampled timer "
            "percentiles are deprecated; TimerStat now uses bounded-error "
            "mergeable histograms (repro.obs.hist) by default",
            DeprecationWarning,
            stacklevel=2,
        )
    _reservoir_mode = enabled


@dataclass
class TimerStat:
    """Aggregate of one timer label set.

    Besides the count/total/min/max running aggregates it keeps a
    log-bucketed :class:`~repro.obs.hist.LatencyHistogram` of observations
    so :meth:`percentile` (and the ``p50_s``/``p95_s``/``p99_s`` snapshot
    fields) work at bounded memory with bounded relative error (~0.8%) for
    arbitrarily long runs — and merge exactly across stats.

    The deprecated reservoir-sampling path survives behind
    :func:`use_reservoir_percentiles`; its fields are created lazily so the
    default path pays nothing for it.
    """

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0
    hist: LatencyHistogram = field(
        default_factory=LatencyHistogram, repr=False, compare=False
    )
    reservoir_size: int = RESERVOIR_SIZE
    _samples: list[float] = field(
        default_factory=list, repr=False, compare=False
    )
    _rng: random.Random | None = field(default=None, repr=False, compare=False)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)
        if not _reservoir_mode:
            self.hist.record(seconds)
            return
        if len(self._samples) < self.reservoir_size:
            self._samples.append(seconds)
        else:
            if self._rng is None:
                self._rng = random.Random(_RESERVOIR_SEED)
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self._samples[slot] = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """q-th percentile (in [0, 100]); bounded-relative-error histogram
        estimate (exact-sample reservoir estimate under the deprecated
        :func:`use_reservoir_percentiles` mode).  Returns 0.0 when nothing
        was observed."""
        if self._samples:
            return _percentile(self._samples, q)
        return self.hist.quantile(q)

    def merge(self, other: "TimerStat") -> "TimerStat":
        """Exact merge of another stat into this one (histogram path only;
        reservoir samples do not compose and are dropped)."""
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)
        self.hist.merge(other.hist)
        return self

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
        }


class Timer(_Instrument):
    """Duration aggregator (count / total / min / max) per label set."""

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._stats: dict[str, TimerStat] = {}

    def observe(self, seconds: float, **labels: Any) -> None:
        self._stats.setdefault(_label_key(labels), TimerStat()).observe(seconds)

    def stat(self, **labels: Any) -> TimerStat:
        return self._stats.get(_label_key(labels), TimerStat())

    def time(self, **labels: Any) -> "_TimerContext":
        return _TimerContext(self, labels)

    def snapshot(self) -> dict[str, dict[str, float]]:
        return {k: self._stats[k].to_dict() for k in sorted(self._stats)}


class Histogram(_Instrument):
    """Log-bucketed latency distribution per label set.

    A thin label-aware wrapper over :class:`~repro.obs.hist.LatencyHistogram`
    for call sites that want the full distribution (Prometheus
    ``_bucket`` exposition, exact cross-process merge) rather than the
    timer's scalar aggregates.  All label sets share one bucket geometry,
    so :meth:`merged` is exact.
    """

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        min_value_s: float | None = None,
        subbuckets: int | None = None,
    ) -> None:
        super().__init__(name, help)
        kwargs: dict[str, Any] = {}
        if min_value_s is not None:
            kwargs["min_value_s"] = min_value_s
        if subbuckets is not None:
            kwargs["subbuckets"] = subbuckets
        self._kwargs = kwargs
        self._stats: dict[str, LatencyHistogram] = {}

    def _stat(self, key: str) -> LatencyHistogram:
        hist = self._stats.get(key)
        if hist is None:
            hist = self._stats[key] = LatencyHistogram(**self._kwargs)
        return hist

    def observe(self, seconds: float, **labels: Any) -> None:
        self._stat(_label_key(labels)).record(seconds)

    def observe_corrected(
        self, seconds: float, expected_interval_s: float, **labels: Any
    ) -> None:
        """Record with coordinated-omission back-fill (closed-loop)."""
        self._stat(_label_key(labels)).record_corrected(
            seconds, expected_interval_s
        )

    def stat(self, **labels: Any) -> LatencyHistogram:
        return self._stats.get(_label_key(labels)) or LatencyHistogram(
            **self._kwargs
        )

    def merged(self) -> LatencyHistogram:
        """Exact merge across every label set."""
        merged = LatencyHistogram(**self._kwargs)
        for hist in self._stats.values():
            merged.merge(hist)
        return merged

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Per-label-set flat stats (same shape as timer snapshots) plus
        the cumulative ``buckets`` (``[le_s, cumulative_count]`` pairs)
        behind the Prometheus ``_bucket`` exposition."""
        out: dict[str, dict[str, Any]] = {}
        for key in sorted(self._stats):
            hist = self._stats[key]
            stat: dict[str, Any] = hist.summary()
            stat["buckets"] = [
                [le, cum] for le, cum in hist.cumulative_buckets()
            ]
            out[key] = stat
        return out

    def export(self) -> dict[str, dict[str, Any]]:
        """Per-label-set full bucket dumps (byte-stable, merge-exact)."""
        return {k: self._stats[k].to_obj() for k in sorted(self._stats)}

    def items(self) -> list[tuple[str, LatencyHistogram]]:
        return [(k, self._stats[k]) for k in sorted(self._stats)]


class _TimerContext:
    """``with timer.time(...):`` support."""

    def __init__(self, timer: Timer, labels: Mapping[str, Any]) -> None:
        self._timer = timer
        self._labels = dict(labels)
        self.elapsed_s = 0.0

    def __enter__(self) -> "_TimerContext":
        import time as _time

        self._start = _time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        import time as _time

        self.elapsed_s = _time.perf_counter() - self._start
        self._timer.observe(self.elapsed_s, **self._labels)


class Metrics:
    """Registry of named instruments.

    ``counter`` / ``gauge`` / ``timer`` are get-or-create: repeated calls
    with the same name return the same instrument, so emitters do not need
    to share instrument handles, only the registry.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name, help)
        return inst

    def gauge(self, name: str, help: str = "") -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name, help)
        return inst

    def timer(self, name: str, help: str = "") -> Timer:
        inst = self._timers.get(name)
        if inst is None:
            inst = self._timers[name] = Timer(name, help)
        return inst

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        min_value_s: float | None = None,
        subbuckets: int | None = None,
    ) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(
                name, help, min_value_s=min_value_s, subbuckets=subbuckets
            )
        return inst

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Deterministically ordered dump of every instrument.

        Shape::

            {"counters":   {name: {label_key: value}},
             "gauges":     {name: {label_key: value}},
             "timers":     {name: {label_key: {count, total_s, ...}}},
             "histograms": {name: {label_key: {count, total_s, ...}}}}

        The ``histograms`` family is omitted while empty so pre-existing
        snapshot consumers (and committed artifacts) are unchanged until a
        histogram is actually registered.
        """
        snap: dict[str, dict[str, Any]] = {
            "counters": {n: self._counters[n].snapshot() for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].snapshot() for n in sorted(self._gauges)},
            "timers": {n: self._timers[n].snapshot() for n in sorted(self._timers)},
        }
        if self._histograms:
            snap["histograms"] = {
                n: self._histograms[n].snapshot()
                for n in sorted(self._histograms)
            }
        return snap

    def histograms(self) -> dict[str, Histogram]:
        """Registered histogram instruments by name (sorted)."""
        return {n: self._histograms[n] for n in sorted(self._histograms)}

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
        self._histograms.clear()


_default_metrics = Metrics()


def get_metrics() -> Metrics:
    """The process-wide default registry."""
    return _default_metrics


def set_metrics(metrics: Metrics | None) -> Metrics:
    """Install ``metrics`` as the default (``None`` installs a fresh
    registry); returns the previous default."""
    global _default_metrics
    previous = _default_metrics
    _default_metrics = metrics if metrics is not None else Metrics()
    return previous


@dataclass
class SolverStats:
    """Where a MILP solve spent its effort.

    Produced by both solver backends (branch-and-bound fills every field;
    HiGHS reports what ``scipy.optimize.milp`` exposes, which is wall time
    only).  Historically hand-threaded ``IlpScheduler`` → ``PlacementResult``
    → harness; since the ``repro.obs`` redesign it is also folded into the
    generic :class:`Metrics` channel via :meth:`record_to`.
    """

    backend: str = "bnb"
    nodes_explored: int = 0
    lp_solves: int = 0
    #: Nodes pruned by bound propagation before any LP was solved.
    lp_solves_avoided: int = 0
    presolve_rows_removed: int = 0
    presolve_cols_fixed: int = 0
    presolve_bounds_tightened: int = 0
    #: Incumbents found by the rounding primal heuristic.
    heuristic_incumbents: int = 0
    time_presolve_s: float = 0.0
    time_lp_s: float = 0.0
    time_heuristic_s: float = 0.0
    time_total_s: float = 0.0
    #: Number of solves merged into this record (1 for a single solve).
    solves: int = 1

    #: (counter field name) pairs recorded by :meth:`record_to`.
    _COUNTER_FIELDS = (
        "nodes_explored",
        "lp_solves",
        "lp_solves_avoided",
        "presolve_rows_removed",
        "presolve_cols_fixed",
        "presolve_bounds_tightened",
        "heuristic_incumbents",
        "solves",
    )
    #: (timer phase name, wall-time field) pairs recorded by :meth:`record_to`.
    _TIMER_FIELDS = (
        ("presolve", "time_presolve_s"),
        ("lp", "time_lp_s"),
        ("heuristic", "time_heuristic_s"),
        ("total", "time_total_s"),
    )

    def merge(self, other: "SolverStats") -> None:
        """Accumulate ``other`` into this record (for per-experiment totals)."""
        if self.solves == 0:
            self.backend = other.backend
        elif other.backend not in self.backend.split("+"):
            self.backend = f"{self.backend}+{other.backend}"
        self.nodes_explored += other.nodes_explored
        self.lp_solves += other.lp_solves
        self.lp_solves_avoided += other.lp_solves_avoided
        self.presolve_rows_removed += other.presolve_rows_removed
        self.presolve_cols_fixed += other.presolve_cols_fixed
        self.presolve_bounds_tightened += other.presolve_bounds_tightened
        self.heuristic_incumbents += other.heuristic_incumbents
        self.time_presolve_s += other.time_presolve_s
        self.time_lp_s += other.time_lp_s
        self.time_heuristic_s += other.time_heuristic_s
        self.time_total_s += other.time_total_s
        self.solves += other.solves

    def record_to(self, metrics: Metrics, **labels: Any) -> None:
        """Fold this record into a :class:`Metrics` registry.

        Effort counts go to ``solver_<field>_total`` counters and phase wall
        times to the ``solver_phase_seconds`` timer, all labelled with the
        backend (plus any extra ``labels``).
        """
        labels = {"backend": self.backend, **labels}
        for field_name in self._COUNTER_FIELDS:
            value = getattr(self, field_name)
            if value:
                metrics.counter(f"solver_{field_name}_total").inc(value, **labels)
        phase_timer = metrics.timer("solver_phase_seconds")
        for phase, field_name in self._TIMER_FIELDS:
            phase_timer.observe(getattr(self, field_name), phase=phase, **labels)

    def summary(self) -> str:
        """One line suitable for benchmark output."""
        return (
            f"solver[{self.backend}] solves={self.solves} "
            f"nodes={self.nodes_explored} lps={self.lp_solves} "
            f"(avoided={self.lp_solves_avoided}) "
            f"presolve(rows-={self.presolve_rows_removed} "
            f"cols-={self.presolve_cols_fixed} "
            f"tighten={self.presolve_bounds_tightened}) "
            f"heur-inc={self.heuristic_incumbents} "
            f"t_presolve={self.time_presolve_s * 1000:.1f}ms "
            f"t_lp={self.time_lp_s * 1000:.1f}ms "
            f"t_heur={self.time_heuristic_s * 1000:.1f}ms "
            f"t_total={self.time_total_s * 1000:.1f}ms"
        )
