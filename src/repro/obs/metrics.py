"""Counters, gauges, and timers with label support, plus a snapshot API.

The :class:`Metrics` registry is the repo's one generic telemetry channel:
instead of hand-threading bespoke stats records component → scheduler →
result → harness (the PR-1 ``SolverStats`` plumbing), instrumented code
records into the ambient registry and consumers read a :meth:`snapshot`.

Instruments are label-aware: ``metrics.counter("lra_placed_total").inc(
scheduler="MEDEA-ILP")`` keeps one value per label set.  Labels are
canonicalised (sorted ``key=value`` pairs) so snapshots are deterministic.

:class:`SolverStats` — the MILP effort breakdown both solver backends
produce — lives here as one of the metric types; ``repro.solver`` keeps a
deprecation alias so existing imports continue to work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from .stats import percentile as _percentile

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "TimerStat",
    "Metrics",
    "SolverStats",
    "get_metrics",
    "set_metrics",
    "parse_label_key",
]


def _escape_label_part(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace(",", "\\,").replace("=", "\\=")
    )


def _label_key(labels: Mapping[str, Any]) -> str:
    """Canonical string form of a label set (sorted ``k=v`` pairs).

    ``\\``, ``,`` and ``=`` inside keys or values are backslash-escaped so
    the key round-trips losslessly through :func:`parse_label_key` — a
    label value like ``rack=a,b`` must not masquerade as two labels."""
    if not labels:
        return ""
    return ",".join(
        f"{_escape_label_part(k)}={_escape_label_part(str(labels[k]))}"
        for k in sorted(labels)
    )


def parse_label_key(label_key: str) -> list[tuple[str, str]]:
    """Invert :func:`_label_key`: canonical string → ``(key, value)`` pairs
    (order preserved; unescapes ``\\\\``, ``\\,`` and ``\\=``)."""
    if not label_key:
        return []
    pairs: list[tuple[str, str]] = []
    key_parts: list[str] = []
    value_parts: list[str] = []
    current = key_parts
    chars = iter(label_key)
    for ch in chars:
        if ch == "\\":
            current.append(next(chars, ""))
        elif ch == "=" and current is key_parts:
            current = value_parts
        elif ch == ",":
            pairs.append(("".join(key_parts), "".join(value_parts)))
            key_parts, value_parts = [], []
            current = key_parts
        else:
            current.append(ch)
    pairs.append(("".join(key_parts), "".join(value_parts)))
    return pairs


class _Instrument:
    """Shared naming/labelling machinery."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help


class Counter(_Instrument):
    """Monotonically increasing value per label set."""

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[str, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot decrease ({amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())

    def snapshot(self) -> dict[str, float]:
        return {k: self._values[k] for k in sorted(self._values)}


class Gauge(_Instrument):
    """Last-write-wins value per label set."""

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[str, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = float(value)

    def add(self, delta: float, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + delta

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> dict[str, float]:
        return {k: self._values[k] for k in sorted(self._values)}


#: Bounded reservoir size backing timer percentiles (per label set).
RESERVOIR_SIZE = 256
#: Fixed seed for the per-stat reservoir RNG: same observation sequence →
#: same retained sample → deterministic percentiles (Vitter's algorithm R).
_RESERVOIR_SEED = 0x5EED


@dataclass
class TimerStat:
    """Aggregate of one timer label set.

    Besides the count/total/min/max running aggregates it keeps a bounded
    reservoir sample of observations so :meth:`percentile` (and the
    ``p50_s``/``p95_s``/``p99_s`` snapshot fields) work at O(1) memory for
    arbitrarily long runs.
    """

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0
    reservoir_size: int = RESERVOIR_SIZE
    _samples: list[float] = field(
        default_factory=list, repr=False, compare=False
    )
    _rng: random.Random = field(
        default_factory=lambda: random.Random(_RESERVOIR_SEED),
        repr=False,
        compare=False,
    )

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)
        if len(self._samples) < self.reservoir_size:
            self._samples.append(seconds)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self._samples[slot] = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """q-th percentile (in [0, 100]) over the reservoir sample; exact
        while ``count <= reservoir_size``, an unbiased estimate beyond.
        Returns 0.0 when nothing was observed."""
        if not self._samples:
            return 0.0
        return _percentile(self._samples, q)

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
        }


class Timer(_Instrument):
    """Duration aggregator (count / total / min / max) per label set."""

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._stats: dict[str, TimerStat] = {}

    def observe(self, seconds: float, **labels: Any) -> None:
        self._stats.setdefault(_label_key(labels), TimerStat()).observe(seconds)

    def stat(self, **labels: Any) -> TimerStat:
        return self._stats.get(_label_key(labels), TimerStat())

    def time(self, **labels: Any) -> "_TimerContext":
        return _TimerContext(self, labels)

    def snapshot(self) -> dict[str, dict[str, float]]:
        return {k: self._stats[k].to_dict() for k in sorted(self._stats)}


class _TimerContext:
    """``with timer.time(...):`` support."""

    def __init__(self, timer: Timer, labels: Mapping[str, Any]) -> None:
        self._timer = timer
        self._labels = dict(labels)
        self.elapsed_s = 0.0

    def __enter__(self) -> "_TimerContext":
        import time as _time

        self._start = _time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        import time as _time

        self.elapsed_s = _time.perf_counter() - self._start
        self._timer.observe(self.elapsed_s, **self._labels)


class Metrics:
    """Registry of named instruments.

    ``counter`` / ``gauge`` / ``timer`` are get-or-create: repeated calls
    with the same name return the same instrument, so emitters do not need
    to share instrument handles, only the registry.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name, help)
        return inst

    def gauge(self, name: str, help: str = "") -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name, help)
        return inst

    def timer(self, name: str, help: str = "") -> Timer:
        inst = self._timers.get(name)
        if inst is None:
            inst = self._timers[name] = Timer(name, help)
        return inst

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Deterministically ordered dump of every instrument.

        Shape::

            {"counters": {name: {label_key: value}},
             "gauges":   {name: {label_key: value}},
             "timers":   {name: {label_key: {count, total_s, ...}}}}
        """
        return {
            "counters": {n: self._counters[n].snapshot() for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].snapshot() for n in sorted(self._gauges)},
            "timers": {n: self._timers[n].snapshot() for n in sorted(self._timers)},
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()


_default_metrics = Metrics()


def get_metrics() -> Metrics:
    """The process-wide default registry."""
    return _default_metrics


def set_metrics(metrics: Metrics | None) -> Metrics:
    """Install ``metrics`` as the default (``None`` installs a fresh
    registry); returns the previous default."""
    global _default_metrics
    previous = _default_metrics
    _default_metrics = metrics if metrics is not None else Metrics()
    return previous


@dataclass
class SolverStats:
    """Where a MILP solve spent its effort.

    Produced by both solver backends (branch-and-bound fills every field;
    HiGHS reports what ``scipy.optimize.milp`` exposes, which is wall time
    only).  Historically hand-threaded ``IlpScheduler`` → ``PlacementResult``
    → harness; since the ``repro.obs`` redesign it is also folded into the
    generic :class:`Metrics` channel via :meth:`record_to`.
    """

    backend: str = "bnb"
    nodes_explored: int = 0
    lp_solves: int = 0
    #: Nodes pruned by bound propagation before any LP was solved.
    lp_solves_avoided: int = 0
    presolve_rows_removed: int = 0
    presolve_cols_fixed: int = 0
    presolve_bounds_tightened: int = 0
    #: Incumbents found by the rounding primal heuristic.
    heuristic_incumbents: int = 0
    time_presolve_s: float = 0.0
    time_lp_s: float = 0.0
    time_heuristic_s: float = 0.0
    time_total_s: float = 0.0
    #: Number of solves merged into this record (1 for a single solve).
    solves: int = 1

    #: (counter field name) pairs recorded by :meth:`record_to`.
    _COUNTER_FIELDS = (
        "nodes_explored",
        "lp_solves",
        "lp_solves_avoided",
        "presolve_rows_removed",
        "presolve_cols_fixed",
        "presolve_bounds_tightened",
        "heuristic_incumbents",
        "solves",
    )
    #: (timer phase name, wall-time field) pairs recorded by :meth:`record_to`.
    _TIMER_FIELDS = (
        ("presolve", "time_presolve_s"),
        ("lp", "time_lp_s"),
        ("heuristic", "time_heuristic_s"),
        ("total", "time_total_s"),
    )

    def merge(self, other: "SolverStats") -> None:
        """Accumulate ``other`` into this record (for per-experiment totals)."""
        if self.solves == 0:
            self.backend = other.backend
        elif other.backend not in self.backend.split("+"):
            self.backend = f"{self.backend}+{other.backend}"
        self.nodes_explored += other.nodes_explored
        self.lp_solves += other.lp_solves
        self.lp_solves_avoided += other.lp_solves_avoided
        self.presolve_rows_removed += other.presolve_rows_removed
        self.presolve_cols_fixed += other.presolve_cols_fixed
        self.presolve_bounds_tightened += other.presolve_bounds_tightened
        self.heuristic_incumbents += other.heuristic_incumbents
        self.time_presolve_s += other.time_presolve_s
        self.time_lp_s += other.time_lp_s
        self.time_heuristic_s += other.time_heuristic_s
        self.time_total_s += other.time_total_s
        self.solves += other.solves

    def record_to(self, metrics: Metrics, **labels: Any) -> None:
        """Fold this record into a :class:`Metrics` registry.

        Effort counts go to ``solver_<field>_total`` counters and phase wall
        times to the ``solver_phase_seconds`` timer, all labelled with the
        backend (plus any extra ``labels``).
        """
        labels = {"backend": self.backend, **labels}
        for field_name in self._COUNTER_FIELDS:
            value = getattr(self, field_name)
            if value:
                metrics.counter(f"solver_{field_name}_total").inc(value, **labels)
        phase_timer = metrics.timer("solver_phase_seconds")
        for phase, field_name in self._TIMER_FIELDS:
            phase_timer.observe(getattr(self, field_name), phase=phase, **labels)

    def summary(self) -> str:
        """One line suitable for benchmark output."""
        return (
            f"solver[{self.backend}] solves={self.solves} "
            f"nodes={self.nodes_explored} lps={self.lp_solves} "
            f"(avoided={self.lp_solves_avoided}) "
            f"presolve(rows-={self.presolve_rows_removed} "
            f"cols-={self.presolve_cols_fixed} "
            f"tighten={self.presolve_bounds_tightened}) "
            f"heur-inc={self.heuristic_incumbents} "
            f"t_presolve={self.time_presolve_s * 1000:.1f}ms "
            f"t_lp={self.time_lp_s * 1000:.1f}ms "
            f"t_heur={self.time_heuristic_s * 1000:.1f}ms "
            f"t_total={self.time_total_s * 1000:.1f}ms"
        )
