"""``.mtrc`` — the compact columnar trace container.

JSONL traces are self-describing but expensive at scale: every event
repeats its keys, and ingest pays one ``json.loads`` per line.  The
``.mtrc`` container chunks the stream and stores the hot fixed-width
fields as struct-packed columns:

::

    file   := header chunk*
    header := b"MTRC" u16 version u16 reserved          (8 bytes)
    chunk  := u32 length, zlib(block)                    (length of the
                                                          compressed blob)
    block  := u32 n
              u16 n_kinds (u16 len, utf8 bytes)*         string table
              u16[n]  kind ids
              u64[n]  seqs
              u8[n]   time-presence flags
              f64[k]  times (k = flags set)
              u32 payload_len, utf8 payload              one JSON array of
                                                         n [data, wall]
                                                         pairs (null when
                                                         absent)

Payloads stay JSON (they are heterogeneous dicts), but a whole chunk's
worth is decoded with *one* ``json.loads`` and the chunk is
zlib-compressed as a unit, which is where both the ≥10× size and the
ingest-speed wins come from — key repetition across thousands of
events compresses extremely well.

Reading tolerates a truncated trailing chunk (the crashed-run shape, like
the JSONL reader's partial-tail tolerance): iteration stops cleanly and
:attr:`MtrcReader.truncated` is set.  Everything downstream
(:func:`repro.obs.report.read_trace` / ``iter_trace``, replay, timeline,
dashboard, profile) accepts both containers transparently; ``repro
trace-convert`` translates between them.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, BinaryIO, Iterable, Iterator, Mapping

from .events import WALL_KEY, TraceEvent

__all__ = [
    "MTRC_MAGIC",
    "MTRC_VERSION",
    "MtrcFormatError",
    "MtrcSink",
    "MtrcReader",
    "write_mtrc",
    "iter_mtrc",
    "read_mtrc",
    "is_mtrc_file",
]

MTRC_MAGIC = b"MTRC"
MTRC_VERSION = 1

#: Events buffered per chunk before compressing it out.
CHUNK_EVENTS = 4096

_HEADER = struct.Struct("<4sHH")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


class MtrcFormatError(ValueError):
    """The file is not a usable .mtrc container (bad magic, bad version,
    or corruption before the final chunk)."""


def _pack_chunk(events: list[Mapping[str, Any]]) -> bytes:
    """Serialise one chunk of decoded event dicts into a compressed blob."""
    n = len(events)
    kind_ids: list[int] = []
    kind_table: dict[str, int] = {}
    seqs: list[int] = []
    flags = bytearray(n)
    times: list[float] = []
    payload: list[Any] = []
    for i, obj in enumerate(events):
        kind = obj.get("kind", "?")
        kind_id = kind_table.get(kind)
        if kind_id is None:
            kind_id = kind_table[kind] = len(kind_table)
        kind_ids.append(kind_id)
        seqs.append(int(obj.get("seq", 0)))
        t = obj.get("time")
        if t is not None:
            flags[i] = 1
            times.append(float(t))
        payload.append([obj.get("data") or None, obj.get(WALL_KEY) or None])

    parts = [_U32.pack(n), _U16.pack(len(kind_table))]
    for kind in kind_table:  # insertion order == id order
        encoded = kind.encode("utf-8")
        parts.append(_U16.pack(len(encoded)))
        parts.append(encoded)
    parts.append(struct.pack(f"<{n}H", *kind_ids))
    parts.append(struct.pack(f"<{n}Q", *seqs))
    parts.append(bytes(flags))
    parts.append(struct.pack(f"<{len(times)}d", *times))
    blob = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    parts.append(_U32.pack(len(blob)))
    parts.append(blob)
    return zlib.compress(b"".join(parts), 6)


def _unpack_chunk(block: bytes) -> list[dict[str, Any]]:
    offset = 0
    (n,) = _U32.unpack_from(block, offset)
    offset += 4
    (n_kinds,) = _U16.unpack_from(block, offset)
    offset += 2
    kinds: list[str] = []
    for _ in range(n_kinds):
        (length,) = _U16.unpack_from(block, offset)
        offset += 2
        kinds.append(block[offset:offset + length].decode("utf-8"))
        offset += length
    kind_ids = struct.unpack_from(f"<{n}H", block, offset)
    offset += 2 * n
    seqs = struct.unpack_from(f"<{n}Q", block, offset)
    offset += 8 * n
    flags = block[offset:offset + n]
    offset += n
    n_times = sum(flags)
    times = struct.unpack_from(f"<{n_times}d", block, offset)
    offset += 8 * n_times
    (payload_len,) = _U32.unpack_from(block, offset)
    offset += 4
    payload = json.loads(block[offset:offset + payload_len].decode("utf-8"))
    if len(payload) != n:
        raise MtrcFormatError("chunk payload count mismatch")

    events: list[dict[str, Any]] = []
    time_index = 0
    for i in range(n):
        obj: dict[str, Any] = {"kind": kinds[kind_ids[i]], "seq": seqs[i]}
        if flags[i]:
            obj["time"] = times[time_index]
            time_index += 1
        data, wall = payload[i]
        if data:
            obj["data"] = data
        if wall:
            obj[WALL_KEY] = wall
        events.append(obj)
    return events


class MtrcSink:
    """Tracer sink streaming events into a ``.mtrc`` container."""

    def __init__(
        self,
        target: str | os.PathLike | BinaryIO,
        *,
        chunk_events: int = CHUNK_EVENTS,
    ) -> None:
        if isinstance(target, (str, os.PathLike)):
            self._file: BinaryIO = open(target, "wb")
            self._owned = True
            self.path: str | None = os.fspath(target)
        else:
            self._file = target
            self._owned = False
            self.path = getattr(target, "name", None)
        self._chunk_events = max(1, int(chunk_events))
        self._buffer: list[Mapping[str, Any]] = []
        self._closed = False
        self._file.write(_HEADER.pack(MTRC_MAGIC, MTRC_VERSION, 0))

    def emit(self, event: TraceEvent) -> None:
        if self._closed:
            return
        self._buffer.append(event.to_obj())
        if len(self._buffer) >= self._chunk_events:
            self.flush_chunk()

    def append_obj(self, obj: Mapping[str, Any]) -> None:
        """Ingest an already-decoded event dict (trace conversion path)."""
        if self._closed:
            return
        self._buffer.append(obj)
        if len(self._buffer) >= self._chunk_events:
            self.flush_chunk()

    def flush_chunk(self) -> None:
        if not self._buffer:
            return
        blob = _pack_chunk(self._buffer)
        self._file.write(_U32.pack(len(blob)))
        self._file.write(blob)
        self._buffer.clear()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.flush_chunk()
        try:
            self._file.flush()
        except ValueError:  # target already closed
            pass
        if self._owned:
            self._file.close()


def write_mtrc(
    path: str | os.PathLike, events: Iterable[Mapping[str, Any]]
) -> int:
    """Write decoded event dicts to ``path``; returns the event count."""
    sink = MtrcSink(path)
    count = 0
    try:
        for obj in events:
            sink.append_obj(obj)
            count += 1
    finally:
        sink.close()
    return count


class MtrcReader:
    """Streaming iterator over a ``.mtrc`` file's event dicts.

    One chunk is resident at a time, so memory stays bounded regardless of
    file size.  A truncated trailing chunk (crashed run) ends iteration
    and sets :attr:`truncated`; corruption *before* the trailing chunk
    raises :class:`MtrcFormatError`.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self.truncated = False
        self.events_read = 0

    def __iter__(self) -> Iterator[dict[str, Any]]:
        with open(self.path, "rb") as handle:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise MtrcFormatError(f"{self.path}: too short to be a .mtrc file")
            magic, version, _ = _HEADER.unpack(header)
            if magic != MTRC_MAGIC:
                raise MtrcFormatError(f"{self.path}: not an MTRC container")
            if version > MTRC_VERSION:
                raise MtrcFormatError(
                    f"{self.path}: mtrc version {version} is newer than "
                    f"supported {MTRC_VERSION}"
                )
            while True:
                length_bytes = handle.read(4)
                if not length_bytes:
                    return  # clean EOF
                if len(length_bytes) < 4:
                    self.truncated = True
                    return
                (length,) = _U32.unpack(length_bytes)
                blob = handle.read(length)
                if len(blob) < length:
                    self.truncated = True
                    return
                try:
                    events = _unpack_chunk(zlib.decompress(blob))
                except (zlib.error, struct.error, ValueError) as exc:
                    # A corrupt *final* chunk is the crashed-run shape;
                    # anything followed by more data is real corruption.
                    if not handle.read(1):
                        self.truncated = True
                        return
                    raise MtrcFormatError(
                        f"{self.path}: corrupt chunk mid-file: {exc}"
                    ) from exc
                for obj in events:
                    self.events_read += 1
                    yield obj


def iter_mtrc(path: str | os.PathLike) -> MtrcReader:
    """Streaming reader over a ``.mtrc`` trace (see :class:`MtrcReader`)."""
    return MtrcReader(path)


def read_mtrc(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Load a whole ``.mtrc`` trace into decoded event dicts."""
    return list(MtrcReader(path))


def is_mtrc_file(path: str | os.PathLike) -> bool:
    """Sniff the magic bytes (extension-independent)."""
    try:
        with open(path, "rb") as handle:
            return handle.read(4) == MTRC_MAGIC
    except OSError:
        return False
