"""Profile reports over span traces: flamegraphs and critical paths.

Two consumers of the ``span`` events emitted by :mod:`repro.obs.spans`:

* :class:`ProfileReport` — per-path aggregation (count, total, self time)
  of the span tree, exportable as a *collapsed-stack* file consumable by
  ``flamegraph.pl`` / speedscope (``frame;frame;frame weight`` lines).
  Weights are either self-time microseconds (``weight="time"``, the useful
  flamegraph) or sample counts (``weight="count"`` — fully deterministic:
  built from the canonical, wall-stripped trace it is byte-identical
  across same-seed runs).
* :func:`critical_paths` — per placed application, attributes the
  end-to-end placement latency (``lra.submit`` → ``lra.place``) to queue
  wait (submission to the first scheduling cycle that considered the app),
  constraint retries (first consideration to eventual placement, covering
  rejects/conflicts/resubmits), and solver time (the wall-clock
  ``scheduler.place`` measurements of the cycles that considered it —
  volatile, so segregated under ``"wall"`` in serialised form).

Both walk decoded event dicts (the shape :func:`repro.obs.report.read_trace`
returns) or live :class:`~repro.obs.events.TraceEvent` records, reusing the
same single-parse pipeline as the timeline aggregator and the replayer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..reporting import render_table
from .events import WALL_KEY, EventKind, TraceEvent

__all__ = [
    "SpanStat",
    "ProfileReport",
    "build_profile",
    "span_deltas",
    "AppCriticalPath",
    "critical_paths",
    "render_profile",
    "render_critical_paths",
]


@dataclass
class SpanStat:
    """Aggregate of every span sharing one stack path."""

    path: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0

    @property
    def name(self) -> str:
        return self.path.rsplit(";", 1)[-1]

    @property
    def depth(self) -> int:
        return self.path.count(";")

    def to_obj(self) -> dict[str, Any]:
        """Deterministic part only; times are reported separately."""
        return {"path": self.path, "count": self.count}


class ProfileReport:
    """Per-path span aggregation over one trace.

    Robust to zero observations everywhere: a trace with no span events
    yields an empty report whose renderers and exporters return defined
    values instead of raising.
    """

    def __init__(self) -> None:
        self.spans: dict[str, SpanStat] = {}
        self.events = 0

    def add(self, obj: Mapping[str, Any]) -> None:
        """Ingest one decoded ``span`` event dict."""
        data = obj.get("data") or {}
        path = data.get("path")
        if not path:
            return
        self.events += 1
        stat = self.spans.get(path)
        if stat is None:
            stat = self.spans[path] = SpanStat(path)
        stat.count += int(data.get("count", 1))
        wall = obj.get(WALL_KEY) or {}
        dur = float(wall.get("dur_s", 0.0))
        stat.total_s += dur
        stat.self_s += float(wall.get("self_s", dur))

    def __len__(self) -> int:
        return len(self.spans)

    def sorted_spans(self) -> list[SpanStat]:
        """Stats in deterministic (path-lexicographic) order."""
        return [self.spans[path] for path in sorted(self.spans)]

    def total_self_s(self) -> float:
        return sum(stat.self_s for stat in self.spans.values())

    def collapsed(self, *, weight: str = "time") -> str:
        """Collapsed-stack text (``flamegraph.pl`` / speedscope input).

        One ``frame;frame;frame weight`` line per path, path-sorted.
        ``weight="time"`` uses integer self-time microseconds;
        ``weight="count"`` uses the deterministic sample count.  Empty
        report → empty string.
        """
        if weight not in ("time", "count"):
            raise ValueError(f"unknown weight {weight!r}; expected time|count")
        lines = []
        for stat in self.sorted_spans():
            value = (
                stat.count if weight == "count" else int(round(stat.self_s * 1e6))
            )
            lines.append(f"{stat.path} {value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_obj(self) -> dict[str, Any]:
        """Deterministic summary: span identities and counts, path-sorted."""
        return {
            "events": self.events,
            "spans": [stat.to_obj() for stat in self.sorted_spans()],
        }

    def wall_obj(self) -> dict[str, Any]:
        """Volatile per-path timings (for the dashboard's ``wall`` section)."""
        return {
            stat.path: {
                "total_s": round(stat.total_s, 6),
                "self_s": round(stat.self_s, 6),
            }
            for stat in self.sorted_spans()
        }


def span_deltas(
    a: ProfileReport,
    b: ProfileReport,
    *,
    ratio: float = 1.5,
    abs_floor_s: float = 0.02,
) -> dict[str, Any]:
    """Per-path differences between two span profiles (``repro diff``'s
    statistical axis).

    Sample *counts* are deterministic per engine/sampling configuration,
    so count mismatches on common paths are reported exactly (but they are
    informational — span cadence legitimately differs between engines).
    Self-*times* are wall clock, so a path is only flagged when the larger
    side exceeds the smaller scaled by ``ratio`` plus ``abs_floor_s`` —
    the bench-compare noise model, keeping runner jitter out of the diff.
    """
    paths_a, paths_b = set(a.spans), set(b.spans)
    common = paths_a & paths_b
    count_deltas: list[dict[str, Any]] = []
    flagged: list[dict[str, Any]] = []
    for path in sorted(common):
        stat_a, stat_b = a.spans[path], b.spans[path]
        if stat_a.count != stat_b.count:
            count_deltas.append(
                {"path": path, "count": [stat_a.count, stat_b.count]}
            )
        lo, hi = sorted((stat_a.self_s, stat_b.self_s))
        if hi > lo * ratio + abs_floor_s:
            flagged.append({
                "path": path,
                "self_s": [round(stat_a.self_s, 6), round(stat_b.self_s, 6)],
            })
    return {
        "paths_compared": len(common),
        "paths_only_a": sorted(paths_a - paths_b),
        "paths_only_b": sorted(paths_b - paths_a),
        "count_deltas": count_deltas,
        "paths_flagged": flagged,
    }


def _iter_objs(
    events: Iterable[Mapping[str, Any] | TraceEvent],
) -> Iterable[Mapping[str, Any]]:
    for event in events:
        yield event.to_obj() if isinstance(event, TraceEvent) else event


def build_profile(
    events: Iterable[Mapping[str, Any] | TraceEvent],
) -> ProfileReport:
    """Aggregate every ``span`` event of a trace into a profile report."""
    report = ProfileReport()
    for obj in _iter_objs(events):
        if obj.get("kind") == EventKind.SPAN:
            report.add(obj)
    return report


# -- critical-path analysis ---------------------------------------------------


@dataclass
class AppCriticalPath:
    """End-to-end placement latency breakdown for one application.

    All times are on the simulated clock (deterministic) except
    ``solver_wall_s``, which sums volatile ``scheduler.place`` wall
    measurements and is therefore serialised under ``"wall"``.
    """

    app_id: str
    submit_time: float
    #: First scheduling cycle that had the app in its batch (``None`` if it
    #: was never considered before the trace ended).
    first_considered_time: float | None = None
    placed_time: float | None = None
    attempts: int = 0
    rejections: int = 0
    conflicts: int = 0
    #: Scheduling cycles whose batch contained the app.
    cycles: int = 0
    dropped: bool = False
    #: Sum of the wall-clock solver latency of the considering cycles.
    solver_wall_s: float = 0.0

    @property
    def latency_s(self) -> float | None:
        if self.placed_time is None:
            return None
        return self.placed_time - self.submit_time

    @property
    def queue_wait_s(self) -> float | None:
        """Submission → first consideration (batching/interval delay)."""
        if self.first_considered_time is None:
            return None
        return self.first_considered_time - self.submit_time

    @property
    def retry_wait_s(self) -> float | None:
        """First consideration → placement (0 unless rejected/conflicted)."""
        if self.placed_time is None or self.first_considered_time is None:
            return None
        return self.placed_time - self.first_considered_time

    def to_obj(self) -> dict[str, Any]:
        obj: dict[str, Any] = {
            "app_id": self.app_id,
            "submit_time": self.submit_time,
            "first_considered_time": self.first_considered_time,
            "placed_time": self.placed_time,
            "latency_s": self.latency_s,
            "queue_wait_s": self.queue_wait_s,
            "retry_wait_s": self.retry_wait_s,
            "attempts": self.attempts,
            "rejections": self.rejections,
            "conflicts": self.conflicts,
            "cycles": self.cycles,
            "dropped": self.dropped,
            WALL_KEY: {"solver_wall_s": round(self.solver_wall_s, 6)},
        }
        return obj


class CriticalPathBuilder:
    """Streaming per-application latency attribution.

    Feed decoded event dicts in stream order (:meth:`feed`) and collect
    the app-sorted paths with :meth:`result`; :func:`critical_paths`
    wraps it for whole-iterable inputs.  Memory is bounded by the number
    of applications, not the trace length.
    """

    def __init__(self) -> None:
        self.apps: dict[str, AppCriticalPath] = {}
        self._current_batch: list[str] = []

    def feed(self, obj: Mapping[str, Any]) -> None:
        kind = obj.get("kind")
        data = obj.get("data") or {}
        t = obj.get("time")
        apps = self.apps
        if kind == EventKind.LRA_SUBMIT:
            app_id = data.get("app_id")
            if app_id is not None and app_id not in apps:
                apps[app_id] = AppCriticalPath(
                    app_id=app_id, submit_time=float(t or 0.0)
                )
        elif kind == EventKind.CYCLE_START:
            self._current_batch = [a for a in data.get("batch", ()) if a in apps]
            for app_id in self._current_batch:
                path = apps[app_id]
                path.cycles += 1
                if path.first_considered_time is None:
                    path.first_considered_time = float(t or 0.0)
        elif kind == EventKind.SCHEDULER_PLACE:
            wall = obj.get(WALL_KEY) or {}
            solve = wall.get("solve_time_s")
            if solve is not None:
                for app_id in self._current_batch:
                    apps[app_id].solver_wall_s += float(solve)
        elif kind == EventKind.LRA_PLACE:
            app_id = data.get("app_id")
            path = apps.get(app_id)
            if path is not None:
                path.placed_time = float(t or 0.0)
                path.attempts = int(data.get("attempt", path.attempts + 1))
        elif kind == EventKind.LRA_REJECT:
            path = apps.get(data.get("app_id"))
            if path is not None:
                path.rejections += 1
                path.attempts = max(path.attempts, int(data.get("attempt", 0)))
        elif kind == EventKind.LRA_CONFLICT:
            path = apps.get(data.get("app_id"))
            if path is not None:
                path.conflicts += 1
                path.attempts = max(path.attempts, int(data.get("attempt", 0)))
        elif kind == EventKind.LRA_DROP:
            path = apps.get(data.get("app_id"))
            if path is not None:
                path.dropped = True
        elif kind == EventKind.CYCLE_END:
            self._current_batch = []

    def result(self) -> list[AppCriticalPath]:
        return [self.apps[app_id] for app_id in sorted(self.apps)]


def critical_paths(
    events: Iterable[Mapping[str, Any] | TraceEvent],
) -> list[AppCriticalPath]:
    """Per-application latency attribution from the LRA lifecycle trace.

    Requires the Medea facade's lifecycle events (``lra.submit``,
    ``cycle.start`` with its ``batch``, ``scheduler.place`` with its wall
    solve time, ``lra.place`` / ``lra.reject`` / ``lra.conflict`` /
    ``lra.drop``); batch-harness traces without them yield an empty list.
    Results are sorted by app id.
    """
    builder = CriticalPathBuilder()
    for obj in _iter_objs(events):
        builder.feed(obj)
    return builder.result()


# -- renderers ----------------------------------------------------------------


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}"


def render_profile(report: ProfileReport) -> str:
    """Fixed-width table of the span aggregation (path order, so the
    tree structure reads top-down); empty report → a placeholder line."""
    if not report.spans:
        return "(no spans recorded; run with MEDEA_TRACE=1 to collect them)"
    total_self = report.total_self_s()
    rows = []
    for stat in report.sorted_spans():
        indent = "  " * stat.depth
        share = 100.0 * stat.self_s / total_self if total_self > 0 else 0.0
        rows.append([
            f"{indent}{stat.name}",
            stat.count,
            _fmt_ms(stat.total_s),
            _fmt_ms(stat.self_s),
            f"{share:.1f}%",
        ])
    return render_table(
        ["span", "count", "total ms", "self ms", "self %"], rows
    )


def render_critical_paths(paths: list[AppCriticalPath]) -> str:
    """Fixed-width per-app latency attribution table."""
    if not paths:
        return (
            "(no LRA lifecycle events in this trace; critical-path analysis "
            "needs a simulation/Medea trace)"
        )

    def fmt(value: float | None) -> str:
        return "-" if value is None else f"{value:.3f}"

    rows = []
    for path in paths:
        status = "dropped" if path.dropped else (
            "placed" if path.placed_time is not None else "pending"
        )
        rows.append([
            path.app_id,
            status,
            fmt(path.latency_s),
            fmt(path.queue_wait_s),
            fmt(path.retry_wait_s),
            _fmt_ms(path.solver_wall_s),
            path.attempts,
            path.cycles,
            path.rejections,
            path.conflicts,
        ])
    return render_table(
        [
            "app", "status", "e2e s", "queue s", "retry s", "solver ms",
            "attempts", "cycles", "rejects", "conflicts",
        ],
        rows,
    )
