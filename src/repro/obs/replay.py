"""Trace replay: reconstruct cluster state from events, verify state hashes.

The simulation periodically records a fingerprint of its authoritative
state (``sim.state_hash``: the container → node map plus the down-node
set, digested by
:func:`~repro.cluster.state.placement_fingerprint`).  The replayer walks a
recorded trace, rebuilds the same placement map purely from lifecycle
events — ``lra.place`` (its ``placements`` list), ``lra.complete``
(``released``), ``task.allocate`` / ``task.release``, and
``sim.node_availability`` — and recomputes the fingerprint at every
checkpoint.  A mismatch pinpoints the first tick where the trace stops
being a faithful account of the run: a corrupted/edited file, a
non-deterministic emitter, or an instrumentation gap.

Sampled traces (``MEDEA_TRACE_SAMPLE``) cannot satisfy the full-state
hash — dropped lifecycle events are missing from the reconstruction by
design.  The sampling tracer therefore enriches each checkpoint with a
``sampled_hash`` over the *kept* lifecycle events only
(:mod:`repro.obs.sample`); when present it is checked instead of the full
``hash``, so sampled traces cross-check without false divergence while
still catching corruption of the kept stream.

:class:`ReplayState` is the streaming core — feed it decoded event dicts
one at a time (:meth:`ReplayState.feed`) and call
:meth:`ReplayState.finish`; :func:`replay_events` / :func:`replay_jsonl`
wrap it for whole-iterable and file inputs.  Batch traces (``timed_place``
driven, no simulation) contain no checkpoints; they replay trivially with
``checks == 0`` and ``ok == True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..cluster.state import placement_fingerprint
from .events import EventKind

__all__ = [
    "ReplayDivergence",
    "ReplayReport",
    "ReplayState",
    "replay_events",
    "replay_jsonl",
]

#: Divergences stored in full before the report only counts them.
MAX_RECORDED_DIVERGENCES = 16


@dataclass(frozen=True)
class ReplayDivergence:
    """One failed state-hash cross-check."""

    seq: int
    time: float | None
    expected: str
    actual: str
    containers: int

    def describe(self) -> str:
        when = "?" if self.time is None else f"{self.time:.3f}s"
        return (
            f"tick {when} (seq {self.seq}): recorded hash {self.expected} != "
            f"replayed {self.actual} ({self.containers} containers in replayed state)"
        )


@dataclass
class ReplayReport:
    """Outcome of replaying one trace."""

    events: int = 0
    checks: int = 0
    #: Checkpoints verified against the sampling tracer's ``sampled_hash``
    #: (kept-lifecycle fingerprint) rather than the full-state ``hash``.
    sampled_checks: int = 0
    allocated: int = 0
    released: int = 0
    divergence_count: int = 0
    divergences: list[ReplayDivergence] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.divergence_count == 0

    @property
    def first_divergence(self) -> ReplayDivergence | None:
        return self.divergences[0] if self.divergences else None

    def to_obj(self) -> dict[str, Any]:
        obj: dict[str, Any] = {
            "ok": self.ok,
            "events": self.events,
            "checks": self.checks,
            "allocated": self.allocated,
            "released": self.released,
            "divergences": self.divergence_count,
            "warnings": list(self.warnings),
        }
        if self.sampled_checks:
            obj["sampled_checks"] = self.sampled_checks
        first = self.first_divergence
        if first is not None:
            obj["first_divergence"] = {
                "seq": first.seq,
                "time": first.time,
                "expected": first.expected,
                "actual": first.actual,
            }
        return obj


class ReplayState:
    """Streaming replayer: feed events one at a time, memory bounded by the
    number of *concurrently placed* containers, not trace length."""

    def __init__(self) -> None:
        self.report = ReplayReport()
        self._placements: dict[str, str] = {}
        self._down: set[str] = set()
        self._missing_placements_warned = False

    def feed(self, obj: Mapping[str, Any]) -> None:
        """Ingest one decoded event dict."""
        report = self.report
        report.events += 1
        kind = obj.get("kind")
        data = obj.get("data") or {}
        if kind == EventKind.LRA_PLACE:
            recorded = data.get("placements")
            if recorded is None:
                if not self._missing_placements_warned:
                    self._missing_placements_warned = True
                    report.warnings.append(
                        "lra.place events carry no 'placements' map (trace "
                        "predates replay support); state reconstruction is "
                        "incomplete"
                    )
            else:
                placements = self._placements
                for container_id, node_id in recorded:
                    placements[container_id] = node_id
                    report.allocated += 1
        elif kind == EventKind.LRA_COMPLETE:
            for container_id in data.get("released", ()):
                if self._placements.pop(container_id, None) is not None:
                    report.released += 1
        elif kind == EventKind.TASK_ALLOCATE:
            task_id = data.get("task_id")
            node_id = data.get("node_id")
            if task_id is not None and node_id is not None:
                self._placements[task_id] = node_id
                report.allocated += 1
        elif kind == EventKind.TASK_RELEASE:
            task_id = data.get("task_id")
            if task_id is not None and self._placements.pop(task_id, None) is not None:
                report.released += 1
        elif kind == EventKind.BENCH_EXPERIMENT:
            # Fresh cluster: experiments in one session share a trace file.
            self._placements.clear()
            self._down.clear()
        elif kind == EventKind.NODE_AVAILABILITY:
            node_id = data.get("node_id")
            if node_id is not None:
                if data.get("up"):
                    self._down.discard(node_id)
                else:
                    self._down.add(node_id)
        elif kind == EventKind.SIM_STATE_HASH:
            sampled = data.get("sampled_hash")
            expected = sampled if sampled is not None else data.get("hash")
            if expected is None:
                return
            report.checks += 1
            if sampled is not None:
                report.sampled_checks += 1
            actual = placement_fingerprint(self._placements, self._down)
            if actual != expected:
                report.divergence_count += 1
                if len(report.divergences) < MAX_RECORDED_DIVERGENCES:
                    report.divergences.append(
                        ReplayDivergence(
                            seq=obj.get("seq", -1),
                            time=obj.get("time"),
                            expected=expected,
                            actual=actual,
                            containers=len(self._placements),
                        )
                    )

    def placement_map(self) -> dict[str, str]:
        """Snapshot of the reconstructed container → node map."""
        return dict(self._placements)

    def down_nodes(self) -> set[str]:
        """Snapshot of the reconstructed down-node set."""
        return set(self._down)

    def fingerprint(self) -> str:
        """Fingerprint of the *current* reconstructed state — after the
        last fed event this is the run's final placement fingerprint,
        which ``repro diff`` cross-checks between two runs."""
        return placement_fingerprint(self._placements, self._down)

    def finish(self) -> ReplayReport:
        """Final report (idempotent; safe to call once feeding is done)."""
        report = self.report
        if report.checks == 0 and not any(
            "no sim.state_hash checkpoints" in w for w in report.warnings
        ):
            report.warnings.append(
                "trace contains no sim.state_hash checkpoints (batch trace?); "
                "replay is vacuously valid"
            )
        if report.sampled_checks:
            note = (
                f"{report.sampled_checks}/{report.checks} checkpoints verified "
                "against sampled_hash (sampled trace; kept lifecycles only)"
            )
            if note not in report.warnings:
                report.warnings.append(note)
        return report


def replay_events(events: Iterable[Mapping[str, Any]]) -> ReplayReport:
    """Replay decoded event dicts and cross-check every state hash."""
    state = ReplayState()
    for obj in events:
        state.feed(obj)
    return state.finish()


def replay_jsonl(path: str) -> ReplayReport:
    """Replay a recorded trace file — JSONL or ``.mtrc`` — streaming
    (tolerates a trailing partial line/chunk; raises
    :class:`~repro.obs.report.TraceFileError` on unusable files)."""
    from .report import iter_trace

    reader = iter_trace(path)
    state = ReplayState()
    for obj in reader:
        state.feed(obj)
    report = state.finish()
    if reader.truncated:
        report.warnings.append(
            f"trailing partial line ignored (crashed run?): {path}"
        )
    return report
