"""Render traces and metric snapshots as the repo's standard ASCII tables.

Reuses :mod:`repro.reporting` so observability output matches the benchmark
tables (grep-able fixed-width columns).  Used by ``python -m repro.cli
trace-report`` and the harness's ``SOLVER_STATS=1`` / ``MEDEA_TRACE=1``
paths.
"""

from __future__ import annotations

import json
from collections import Counter as _Counter
from typing import Any, Iterable, Mapping

from ..reporting import banner, render_table
from .events import WALL_KEY, TraceEvent

__all__ = [
    "event_counts",
    "render_event_counts",
    "render_metrics",
    "render_timers",
    "read_jsonl",
    "render_trace_report",
]


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Load a JSONL trace file into raw event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def event_counts(events: Iterable[TraceEvent | Mapping[str, Any]]) -> dict[str, int]:
    """Events per kind, sorted by kind."""
    counts: _Counter[str] = _Counter()
    for event in events:
        kind = event.kind if isinstance(event, TraceEvent) else event.get("kind", "?")
        counts[kind] += 1
    return dict(sorted(counts.items()))


def render_event_counts(events: Iterable[TraceEvent | Mapping[str, Any]]) -> str:
    counts = event_counts(events)
    rows = [[kind, count] for kind, count in counts.items()]
    rows.append(["TOTAL", sum(counts.values())])
    return render_table(["event kind", "count"], rows)


def render_metrics(snapshot: Mapping[str, Any]) -> str:
    """Counters and gauges of a :meth:`repro.obs.Metrics.snapshot` dump."""
    rows = []
    for family in ("counters", "gauges"):
        for name, by_label in snapshot.get(family, {}).items():
            for label_key, value in by_label.items():
                rows.append([name, label_key or "-", value])
    if not rows:
        return "(no counters or gauges recorded)"
    return render_table(["metric", "labels", "value"], rows)


def render_timers(snapshot: Mapping[str, Any]) -> str:
    """Timer aggregates of a metrics snapshot."""
    rows = []
    for name, by_label in snapshot.get("timers", {}).items():
        for label_key, stat in by_label.items():
            rows.append([
                name,
                label_key or "-",
                stat["count"],
                stat["total_s"] * 1000.0,
                stat["mean_s"] * 1000.0,
                stat["max_s"] * 1000.0,
            ])
    if not rows:
        return "(no timers recorded)"
    return render_table(
        ["timer", "labels", "count", "total ms", "mean ms", "max ms"],
        rows,
    )


def render_trace_report(path: str) -> str:
    """Full report for a JSONL trace file: per-kind counts plus the span of
    simulated time covered and how many events carry wall-clock data."""
    events = read_jsonl(path)
    parts = [banner(f"trace report: {path}")]
    parts.append(render_event_counts(events))
    times = [e["time"] for e in events if "time" in e]
    if times:
        parts.append(
            f"\nsimulated time span: {min(times):.3f}s .. {max(times):.3f}s"
        )
    with_wall = sum(1 for e in events if WALL_KEY in e)
    parts.append(
        f"events: {len(events)} total, {with_wall} with wall-clock fields"
    )
    return "\n".join(parts)
