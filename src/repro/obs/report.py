"""Render traces and metric snapshots as reports.

Reuses :mod:`repro.reporting` so observability output matches the benchmark
tables (grep-able fixed-width columns).  Used by ``python -m repro.cli
trace-report`` / ``dashboard`` and the harness's ``SOLVER_STATS=1`` /
``MEDEA_TRACE=1`` paths.

Trace files are read through :func:`iter_trace` (streaming — constant
memory however large the trace) or :func:`read_trace` (eager list), both
of which accept JSONL *and* the columnar ``.mtrc`` container
(:mod:`repro.obs.mtrc`), turn every failure mode (missing file, empty
file, corrupt JSON mid-file) into a typed :class:`TraceFileError`, and
*tolerate a trailing partial line/chunk* — the normal shape of a trace
from a crashed run.

The dashboard pipeline (:func:`build_dashboard` →
:func:`render_dashboard` / :func:`render_dashboard_html`) combines the
timeline aggregator, the trace replayer and the SLO monitor into one
summary document; volatile (wall-derived) content is segregated under the
``"wall"`` key so same-seed summaries are byte-identical after stripping
it, exactly like :func:`repro.obs.events.canonical`.
"""

from __future__ import annotations

import html as _html
import json
import os
from collections import Counter as _Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..reporting import banner, render_table
from .events import WALL_KEY, TraceEvent

__all__ = [
    "TraceFileError",
    "TraceFile",
    "TraceReader",
    "iter_trace",
    "read_trace",
    "read_jsonl",
    "event_counts",
    "render_event_counts",
    "render_metrics",
    "render_timers",
    "render_trace_report",
    "build_dashboard",
    "render_dashboard",
    "render_dashboard_html",
]


class TraceFileError(ValueError):
    """A trace file could not be used: missing, empty, or corrupt JSON.

    Subclasses :class:`ValueError` (like :class:`json.JSONDecodeError`) so
    pre-existing ``except ValueError`` call sites keep working while the
    CLI can report a clear message and a non-zero exit instead of a bare
    traceback.
    """


@dataclass
class TraceFile:
    """A parsed trace plus parse provenance."""

    path: str
    events: list[dict[str, Any]] = field(default_factory=list)
    #: True when a trailing partial line/chunk was ignored (crashed run).
    truncated: bool = False


#: Whole-file diagnosis cap: mix-up documents (BENCH_*.json, ROLLUP_*.json)
#: are re-parsed in full for a precise error message only below this size.
_DIAGNOSIS_MAX_BYTES = 64 * 1024 * 1024


class TraceReader:
    """Streaming iterator over a trace file's decoded event dicts.

    Accepts both containers — JSONL (one event per line) and ``.mtrc``
    (columnar chunks, detected by extension or magic bytes) — and keeps
    memory constant regardless of file size: one line or one chunk is
    resident at a time.

    Error contract (matching the historical :func:`read_trace`):

    * missing/unreadable file, a directory, or an empty trace →
      :class:`TraceFileError`
    * corrupt data before the tail → :class:`TraceFileError`; common
      mix-ups (``BENCH_*.json`` benchmark documents, ``ROLLUP_*.json``
      rollup files) get a specific diagnosis
    * a corrupt *trailing* line/chunk is tolerated as a partial write from
      a crashed run: iteration ends cleanly with :attr:`truncated` set
      (unless ``allow_partial_tail=False``)

    Errors surface lazily, during iteration; construction only rejects
    directories.
    """

    def __init__(self, path: str, *, allow_partial_tail: bool = True) -> None:
        self.path = os.fspath(path)
        self.allow_partial_tail = allow_partial_tail
        self.truncated = False
        self.events_read = 0
        if os.path.isdir(self.path):
            raise TraceFileError(
                f"{self.path} is a directory, not a trace file — pass the "
                f".jsonl/.mtrc file written by MEDEA_TRACE_OUT / --trace-out"
            )

    @property
    def format(self) -> str:
        """``"mtrc"`` or ``"jsonl"`` (extension first, then magic sniff)."""
        from .mtrc import is_mtrc_file

        if self.path.endswith(".mtrc") or is_mtrc_file(self.path):
            return "mtrc"
        return "jsonl"

    def __iter__(self):
        if self.format == "mtrc":
            yield from self._iter_mtrc()
        else:
            yield from self._iter_jsonl()
        if self.events_read == 0:
            raise TraceFileError(f"{self.path}: trace contains no events")

    def _iter_mtrc(self):
        from .mtrc import MtrcFormatError, MtrcReader

        reader = MtrcReader(self.path)
        try:
            for obj in reader:
                self.events_read += 1
                yield obj
        except MtrcFormatError as exc:
            raise TraceFileError(str(exc)) from exc
        except OSError as exc:
            raise TraceFileError(
                f"cannot read trace file {self.path}: {exc}"
            ) from exc
        if reader.truncated:
            if not self.allow_partial_tail:
                raise TraceFileError(f"{self.path}: truncated trailing chunk")
            self.truncated = True

    def _iter_jsonl(self):
        try:
            handle = open(self.path, "r", encoding="utf-8")
        except OSError as exc:
            raise TraceFileError(
                f"cannot read trace file {self.path}: {exc}"
            ) from exc
        with handle:
            for number, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as exc:
                    # Tolerate a corrupt *final* line (crashed run); a
                    # corrupt line with more data after it is an error.
                    if self.allow_partial_tail and not any(
                        rest.strip() for rest in handle
                    ):
                        self.truncated = True
                        return
                    self._diagnose_document()
                    raise TraceFileError(
                        f"{self.path}: corrupt JSON on line {number}: {exc.msg}"
                    ) from exc
                if not isinstance(event, dict) or "kind" not in event:
                    self._diagnose_event(event, number)
                self.events_read += 1
                yield event

    def _diagnose_document(self) -> None:
        """Raise a mix-up-specific error when the whole file is one JSON
        document (pretty-printed, so its lines are not valid JSONL)."""
        try:
            if os.path.getsize(self.path) > _DIAGNOSIS_MAX_BYTES:
                return
            with open(self.path, "r", encoding="utf-8") as handle:
                doc = json.loads(handle.read())
        except (OSError, ValueError):
            return
        self._raise_for_mixup(doc)

    def _diagnose_event(self, event: Any, number: int) -> None:
        if isinstance(event, dict):
            self._raise_for_mixup(event)
        raise TraceFileError(
            f"{self.path}: line {number} is valid JSON but not a trace event "
            f"(no 'kind' field) — this is not a MEDEA_TRACE event stream"
        )

    def _raise_for_mixup(self, doc: Any) -> None:
        if not isinstance(doc, dict):
            return
        from .rollup import ROLLUP_SCHEMA

        if doc.get("schema") == ROLLUP_SCHEMA:
            raise TraceFileError(
                f"{self.path} is a ROLLUP_*.json streaming-rollup document, "
                f"not a raw trace — pass it to 'repro dashboard' directly"
            )
        if "benchmarks" in doc or "schema" in doc:
            raise TraceFileError(
                f"{self.path} is a BENCH_*.json benchmark results file, not "
                f"a trace — use 'repro bench-compare' for benchmark documents"
            )


def iter_trace(path: str, *, allow_partial_tail: bool = True) -> TraceReader:
    """Streaming reader over a recorded trace (JSONL or ``.mtrc``)."""
    return TraceReader(path, allow_partial_tail=allow_partial_tail)


def read_trace(path: str, *, allow_partial_tail: bool = True) -> TraceFile:
    """Parse a trace file eagerly into a list (see :class:`TraceReader`
    for the error contract; prefer :func:`iter_trace` for large files)."""
    reader = TraceReader(path, allow_partial_tail=allow_partial_tail)
    events = list(reader)
    return TraceFile(path=path, events=events, truncated=reader.truncated)


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Load a trace file into raw event dicts (see :func:`read_trace`
    for the error contract)."""
    return read_trace(path).events


def event_counts(events: Iterable[TraceEvent | Mapping[str, Any]]) -> dict[str, int]:
    """Events per kind, sorted by kind."""
    counts: _Counter[str] = _Counter()
    for event in events:
        kind = event.kind if isinstance(event, TraceEvent) else event.get("kind", "?")
        counts[kind] += 1
    return dict(sorted(counts.items()))


def render_event_counts(events: Iterable[TraceEvent | Mapping[str, Any]]) -> str:
    counts = event_counts(events)
    rows = [[kind, count] for kind, count in counts.items()]
    rows.append(["TOTAL", sum(counts.values())])
    return render_table(["event kind", "count"], rows)


def render_metrics(snapshot: Mapping[str, Any]) -> str:
    """Counters and gauges of a :meth:`repro.obs.Metrics.snapshot` dump."""
    rows = []
    for family in ("counters", "gauges"):
        for name, by_label in snapshot.get(family, {}).items():
            for label_key, value in by_label.items():
                rows.append([name, label_key or "-", value])
    if not rows:
        return "(no counters or gauges recorded)"
    return render_table(["metric", "labels", "value"], rows)


def render_timers(snapshot: Mapping[str, Any]) -> str:
    """Timer aggregates of a metrics snapshot."""
    rows = []
    for name, by_label in snapshot.get("timers", {}).items():
        for label_key, stat in by_label.items():
            rows.append([
                name,
                label_key or "-",
                stat["count"],
                stat["total_s"] * 1000.0,
                stat["mean_s"] * 1000.0,
                stat.get("p99_s", 0.0) * 1000.0,
                stat["max_s"] * 1000.0,
            ])
    if not rows:
        return "(no timers recorded)"
    return render_table(
        ["timer", "labels", "count", "total ms", "mean ms", "p99 ms", "max ms"],
        rows,
    )


def render_trace_report(path: str) -> str:
    """Full report for a trace file (JSONL or ``.mtrc``): per-kind counts
    plus the span of simulated time covered and how many events carry
    wall-clock data.  Streams the file — a million-event trace is never
    resident in memory."""
    reader = iter_trace(path)
    counts: _Counter[str] = _Counter()
    t_min: float | None = None
    t_max: float | None = None
    with_wall = 0
    total = 0
    for event in reader:
        total += 1
        counts[event.get("kind", "?")] += 1
        t = event.get("time")
        if t is not None:
            t_min = t if t_min is None else min(t_min, t)
            t_max = t if t_max is None else max(t_max, t)
        if WALL_KEY in event:
            with_wall += 1
    parts = [banner(f"trace report: {path}")]
    rows = [[kind, count] for kind, count in sorted(counts.items())]
    rows.append(["TOTAL", total])
    parts.append(render_table(["event kind", "count"], rows))
    if t_min is not None:
        parts.append(f"\nsimulated time span: {t_min:.3f}s .. {t_max:.3f}s")
    parts.append(f"events: {total} total, {with_wall} with wall-clock fields")
    if reader.truncated:
        parts.append("warning: trailing partial line ignored (crashed run?)")
    return "\n".join(parts)


# -- dashboard --------------------------------------------------------------


def build_dashboard(
    trace_path: str,
    *,
    tick_s: float | None = None,
    max_points: int | None = None,
    rules: Sequence[Any] | None = None,
) -> dict[str, Any]:
    """Assemble the full dashboard summary for one trace file.

    Runs the timeline aggregator, the replayer, the span profiler, the
    critical-path builder, and the SLO monitor (the default smoke rules
    unless ``rules`` is given) over a **single streaming pass** of the
    trace (JSONL or ``.mtrc``) — resident memory is bounded by the
    aggregates, not the trace length.  Deterministic results (series from
    ``data`` payloads, SLO verdicts over them, replay outcome) sit at the
    top level; anything derived from wall-clock measurements sits under
    ``"wall"``.
    """
    from .events import EventKind
    from .profile import CriticalPathBuilder, ProfileReport
    from .replay import ReplayState
    from .slo import SLOMonitor, default_smoke_slos
    from .timeline import DEFAULT_MAX_POINTS, DEFAULT_TICK_S, TimelineAggregator

    reader = iter_trace(trace_path)
    timeline = TimelineAggregator(
        tick_s=DEFAULT_TICK_S if tick_s is None else tick_s,
        max_points=DEFAULT_MAX_POINTS if max_points is None else max_points,
    )
    replay_state = ReplayState()
    profile = ProfileReport()
    path_builder = CriticalPathBuilder()
    span_kind = EventKind.SPAN
    for obj in reader:
        timeline.consume(obj)
        replay_state.feed(obj)
        if obj.get("kind") == span_kind:
            profile.add(obj)
        else:
            path_builder.feed(obj)
    replay = replay_state.finish()
    if reader.truncated:
        replay.warnings.append("trailing partial line ignored (crashed run?)")
    monitor = SLOMonitor(default_smoke_slos() if rules is None else list(rules))
    slo_report = monitor.evaluate(timeline)

    summary = timeline.summary()
    summary["replay"] = replay.to_obj()
    deterministic, volatile = slo_report.split()
    summary["slo"] = {
        "verdict": "fail" if any(r.status == "FAIL" for r in deterministic) else "pass",
        "rules": [r.to_obj() for r in deterministic],
    }
    if volatile:
        wall = summary.setdefault(WALL_KEY, {})
        wall["slo"] = {
            "verdict": "fail" if any(r.status == "FAIL" for r in volatile) else "pass",
            "rules": [r.to_obj() for r in volatile],
        }

    # Span profile + per-app critical paths.  Identities/counts and the
    # simulated-clock attribution are deterministic and sit at the top
    # level; every wall-clock timing (span durations, per-app solver time)
    # is hoisted under the summary's single top-level "wall" key so the
    # byte-determinism contract over the stripped summary keeps holding.
    summary["profile"] = profile.to_obj()
    path_objs: list[dict[str, Any]] = []
    paths_wall: dict[str, Any] = {}
    for app_path in path_builder.result():
        obj = app_path.to_obj()
        paths_wall[app_path.app_id] = obj.pop(WALL_KEY)
        path_objs.append(obj)
    summary["critical_paths"] = path_objs
    if profile.spans or paths_wall:
        wall = summary.setdefault(WALL_KEY, {})
        if profile.spans:
            wall["profile"] = profile.wall_obj()
        if paths_wall:
            wall["critical_paths"] = paths_wall
    return summary


def _slo_rows(summary: Mapping[str, Any]) -> list[list[Any]]:
    rows: list[list[Any]] = []
    sections = [("", summary.get("slo", {}))]
    wall_slo = (summary.get(WALL_KEY) or {}).get("slo")
    if wall_slo:
        sections.append(("(wall)", wall_slo))
    for marker, section in sections:
        for rule in section.get("rules", ()):
            observed = rule.get("observed")
            rows.append([
                rule.get("name", "?"),
                f"{rule.get('agg')}({rule.get('series')}) "
                f"{rule.get('op')} {rule.get('threshold')}",
                "-" if observed is None else observed,
                (rule.get("status", "?") + (" " + marker if marker else "")).strip(),
            ])
    return rows


def dashboard_verdict(summary: Mapping[str, Any]) -> str:
    """Overall SLO verdict across deterministic and wall-derived rules."""
    verdicts = [summary.get("slo", {}).get("verdict", "pass")]
    wall_slo = (summary.get(WALL_KEY) or {}).get("slo")
    if wall_slo:
        verdicts.append(wall_slo.get("verdict", "pass"))
    return "fail" if "fail" in verdicts else "pass"


def _series_rows(series: Mapping[str, Any]) -> list[list[Any]]:
    rows = []
    for name, obj in series.items():
        rows.append([
            name,
            obj.get("agg", "?"),
            obj.get("tick_s", 0.0),
            len(obj.get("points", ())),
            obj.get("min", "-"),
            obj.get("mean", "-"),
            obj.get("max", "-"),
            obj.get("last", "-"),
        ])
    return rows


_SERIES_HEADERS = ["series", "agg", "tick s", "pts", "min", "mean", "max", "last"]

_PROFILE_HEADERS = ["span", "count", "total ms", "self ms"]
_CRITICAL_PATH_HEADERS = [
    "app", "status", "e2e s", "queue s", "retry s", "solver ms",
    "attempts", "cycles",
]


def _profile_rows(summary: Mapping[str, Any]) -> list[list[Any]]:
    """Span-profile rows joining the deterministic identities/counts with
    the wall-clock timings hoisted under the summary's ``wall`` key."""
    wall_times = (summary.get(WALL_KEY) or {}).get("profile", {})
    rows: list[list[Any]] = []
    for span_obj in summary.get("profile", {}).get("spans", ()):
        path = span_obj.get("path", "")
        times = wall_times.get(path, {})
        indent = "  " * path.count(";")
        rows.append([
            indent + path.rsplit(";", 1)[-1],
            span_obj.get("count", 0),
            _fmt_opt_ms(times.get("total_s")),
            _fmt_opt_ms(times.get("self_s")),
        ])
    return rows


def _fmt_opt_ms(seconds: Any) -> str:
    return "-" if seconds is None else f"{float(seconds) * 1000:.2f}"


def _fmt_opt_s(seconds: Any) -> str:
    return "-" if seconds is None else f"{float(seconds):.3f}"


def _critical_path_rows(summary: Mapping[str, Any]) -> list[list[Any]]:
    wall_paths = (summary.get(WALL_KEY) or {}).get("critical_paths", {})
    rows: list[list[Any]] = []
    for obj in summary.get("critical_paths", ()):
        app_id = obj.get("app_id", "?")
        if obj.get("dropped"):
            status = "dropped"
        elif obj.get("placed_time") is not None:
            status = "placed"
        else:
            status = "pending"
        solver = (wall_paths.get(app_id) or {}).get("solver_wall_s")
        rows.append([
            app_id,
            status,
            _fmt_opt_s(obj.get("latency_s")),
            _fmt_opt_s(obj.get("queue_wait_s")),
            _fmt_opt_s(obj.get("retry_wait_s")),
            _fmt_opt_ms(solver),
            obj.get("attempts", 0),
            obj.get("cycles", 0),
        ])
    return rows


def render_dashboard(summary: Mapping[str, Any], *, title: str = "dashboard") -> str:
    """Terminal rendering of a :func:`build_dashboard` summary."""
    parts = [banner(title)]
    meta = summary.get("meta", {})
    span = meta.get("time_span")
    span_text = (
        f"{span[0]:.3f}s .. {span[1]:.3f}s" if span else "(no simulated clock)"
    )
    parts.append(
        f"events: {meta.get('events', 0)} across {len(meta.get('kinds', {}))} kinds; "
        f"time span: {span_text}"
    )

    replay = summary.get("replay", {})
    status = "OK" if replay.get("ok", True) else "DIVERGED"
    parts.append(
        f"replay: {status} — {replay.get('checks', 0)} state-hash checks, "
        f"{replay.get('divergences', 0)} divergences, "
        f"{replay.get('allocated', 0)} allocations / "
        f"{replay.get('released', 0)} releases reconstructed"
    )
    first = replay.get("first_divergence")
    if first:
        parts.append(
            f"  first divergence: seq {first.get('seq')} at t={first.get('time')} "
            f"(recorded {first.get('expected')}, replayed {first.get('actual')})"
        )
    for warning in replay.get("warnings", ()):
        parts.append(f"  note: {warning}")

    series = summary.get("series", {})
    if series:
        parts.append("")
        parts.append(render_table(_SERIES_HEADERS, _series_rows(series)))
    wall_series = (summary.get(WALL_KEY) or {}).get("series", {})
    if wall_series:
        parts.append("wall-clock series (volatile):")
        parts.append(render_table(_SERIES_HEADERS, _series_rows(wall_series)))

    profile_rows = _profile_rows(summary)
    if profile_rows:
        parts.append("")
        parts.append("span profile (times are wall clock, volatile):")
        parts.append(render_table(_PROFILE_HEADERS, profile_rows))
    cp_rows = _critical_path_rows(summary)
    if cp_rows:
        parts.append("")
        parts.append("critical paths (per application):")
        parts.append(render_table(_CRITICAL_PATH_HEADERS, cp_rows))

    slo_rows = _slo_rows(summary)
    if slo_rows:
        parts.append("")
        parts.append(render_table(["SLO", "check", "observed", "status"], slo_rows))
    parts.append(f"SLO verdict: {dashboard_verdict(summary)}")
    return "\n".join(parts)


# -- HTML dashboard ---------------------------------------------------------

#: Charts rendered per section before folding the rest into a note.
_MAX_CHARTS = 16


def _fmt_num(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    return str(value)


def _svg_line_chart(
    points: Sequence[Sequence[float]], *, color: str, width: int = 520, height: int = 130
) -> str:
    """A minimal single-series SVG line chart: 2px line, three hairline
    gridlines with muted min/mid/max labels, a direct last-value label in
    text ink, and native ``<title>`` hover tooltips per point."""
    pad_left, pad_right, pad_top, pad_bottom = 8, 64, 10, 18
    plot_w = width - pad_left - pad_right
    plot_h = height - pad_top - pad_bottom
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        pad = abs(y_lo) * 0.1 or 1.0
        y_lo, y_hi = y_lo - pad, y_hi + pad

    def sx(x: float) -> float:
        return pad_left + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return pad_top + (1 - (y - y_lo) / (y_hi - y_lo)) * plot_h

    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'preserveAspectRatio="xMidYMid meet">'
    ]
    for frac, value in ((0.0, y_hi), (0.5, (y_lo + y_hi) / 2), (1.0, y_lo)):
        y = pad_top + frac * plot_h
        parts.append(
            f'<line x1="{pad_left}" y1="{y:.1f}" x2="{pad_left + plot_w}" '
            f'y2="{y:.1f}" class="grid"/>'
        )
        parts.append(
            f'<text x="{pad_left + plot_w + 4}" y="{y + 3.5:.1f}" '
            f'class="axis">{_fmt_num(value)}</text>'
        )
    coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(xs, ys))
    if len(points) == 1:
        parts.append(
            f'<circle cx="{sx(xs[0]):.1f}" cy="{sy(ys[0]):.1f}" r="3" '
            f'fill="var({color})"/>'
        )
    else:
        parts.append(f'<polyline points="{coords}" class="line" '
                     f'style="stroke: var({color})"/>')
    # Direct last-value label (text ink, never series color).
    parts.append(
        f'<text x="{sx(xs[-1]) + 5:.1f}" y="{max(sy(ys[-1]) - 5, 10):.1f}" '
        f'class="label">{_fmt_num(ys[-1])}</text>'
    )
    parts.append(
        f'<text x="{pad_left}" y="{height - 4}" class="axis">'
        f'{_fmt_num(x_lo)}s</text>'
    )
    parts.append(
        f'<text x="{pad_left + plot_w}" y="{height - 4}" class="axis" '
        f'text-anchor="end">{_fmt_num(max(xs))}s</text>'
    )
    # Hover layer: invisible fat hit targets with native tooltips.
    hover_points = points if len(points) <= 200 else points[:: len(points) // 200 + 1]
    for x, y in hover_points:
        parts.append(
            f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="7" class="hit">'
            f"<title>t={_fmt_num(x)}s\nvalue={_fmt_num(y)}</title></circle>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _chart_figure(name: str, obj: Mapping[str, Any], *, color: str) -> str:
    points = obj.get("points") or []
    if not points:
        return ""
    caption = (
        f"{_html.escape(name)} <span class='agg'>{_html.escape(str(obj.get('agg')))}"
        f" / tick {_fmt_num(obj.get('tick_s', 0.0))}s</span>"
    )
    table_rows = "".join(
        f"<tr><td>{_fmt_num(t)}</td><td>{_fmt_num(v)}</td></tr>"
        for t, v in points
    )
    table = (
        "<details><summary>data table</summary><table>"
        "<thead><tr><th>t (s)</th><th>value</th></tr></thead>"
        f"<tbody>{table_rows}</tbody></table></details>"
    )
    return (
        f"<figure><figcaption>{caption}</figcaption>"
        f"{_svg_line_chart(points, color=color)}{table}</figure>"
    )


_HTML_STYLE = """
:root { color-scheme: light dark; }
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --status-good: #0ca30c;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --muted: #898781;
  --grid: #2c2c2a;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5;
  --series-2: #d95926;
}
.viz-root {
  background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  margin: 0; padding: 24px; line-height: 1.45;
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 15px; margin: 28px 0 8px; }
.viz-root .meta { color: var(--text-secondary); font-size: 13px; margin: 0 0 16px; }
.viz-root .badge {
  display: inline-block; padding: 1px 8px; border-radius: 9px;
  font-size: 12px; font-weight: 600; border: 1px solid var(--border);
}
.viz-root .badge.pass { color: var(--status-good); }
.viz-root .badge.fail { color: var(--status-critical); }
.viz-root table {
  border-collapse: collapse; font-size: 13px; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 6px;
}
.viz-root th, .viz-root td {
  text-align: left; padding: 4px 10px; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
.viz-root th { color: var(--text-secondary); font-weight: 600; }
.viz-root pre.cell { margin: 0; font: inherit; white-space: pre; }
.viz-root .charts {
  display: grid; grid-template-columns: repeat(auto-fill, minmax(340px, 1fr));
  gap: 16px; margin-top: 8px;
}
.viz-root figure {
  margin: 0; padding: 10px 12px; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px;
}
.viz-root figcaption { font-size: 13px; font-weight: 600; margin-bottom: 4px; }
.viz-root figcaption .agg { color: var(--muted); font-weight: 400; font-size: 12px; }
.viz-root svg { width: 100%; height: auto; display: block; }
.viz-root svg .grid { stroke: var(--grid); stroke-width: 1; }
.viz-root svg .axis { fill: var(--muted); font-size: 10px; font-variant-numeric: tabular-nums; }
.viz-root svg .label { fill: var(--text-secondary); font-size: 11px; font-variant-numeric: tabular-nums; }
.viz-root svg .line { fill: none; stroke-width: 2; stroke-linejoin: round; stroke-linecap: round; }
.viz-root svg .hit { fill: transparent; }
.viz-root details { margin-top: 6px; font-size: 12px; }
.viz-root details summary { color: var(--muted); cursor: pointer; }
.viz-root .note { color: var(--muted); font-size: 12px; }
"""


#: Public alias: the shared self-contained stylesheet every HTML report in
#: this repo embeds (dashboard here, ``repro diff`` in ``obs/diff.py``),
#: so cross-artifact styling stays consistent by construction.
HTML_STYLE = _HTML_STYLE


def render_dashboard_html(
    summary: Mapping[str, Any], *, title: str = "Medea run dashboard"
) -> str:
    """Self-contained HTML report: SLO verdicts, replay outcome, and one
    small-multiple line chart per time series (deterministic series in the
    palette's slot-1 blue, wall-clock series in slot-2 orange; each chart
    carries a single series, so the title names it and no legend is
    needed).  No external assets, light/dark via CSS custom properties."""
    meta = summary.get("meta", {})
    replay = summary.get("replay", {})
    verdict = dashboard_verdict(summary)
    span = meta.get("time_span")
    span_text = (
        f"{_fmt_num(span[0])}s – {_fmt_num(span[1])}s" if span else "no simulated clock"
    )

    slo_rows = "".join(
        "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>".format(
            *(_html.escape(str(cell)) for cell in row)
        )
        for row in _slo_rows(summary)
    )
    replay_status = "OK" if replay.get("ok", True) else "DIVERGED"
    first = replay.get("first_divergence")
    first_text = ""
    if first:
        first_text = (
            f"<p class='note'>first divergence: seq {first.get('seq')} at "
            f"t={_html.escape(str(first.get('time')))} (recorded "
            f"{_html.escape(str(first.get('expected')))}, replayed "
            f"{_html.escape(str(first.get('actual')))})</p>"
        )
    warnings = "".join(
        f"<p class='note'>note: {_html.escape(str(w))}</p>"
        for w in replay.get("warnings", ())
    )

    def charts_for(series: Mapping[str, Any], color: str) -> str:
        figures = []
        names = list(series)
        for name in names[:_MAX_CHARTS]:
            figures.append(_chart_figure(name, series[name], color=color))
        note = ""
        if len(names) > _MAX_CHARTS:
            note = (
                f"<p class='note'>{len(names) - _MAX_CHARTS} more series in "
                f"the JSON summary (chart cap {_MAX_CHARTS}).</p>"
            )
        return f"<div class='charts'>{''.join(figures)}</div>{note}"

    series = summary.get("series", {})
    wall_series = (summary.get(WALL_KEY) or {}).get("series", {})
    wall_block = ""
    if wall_series:
        wall_block = (
            "<h2>Wall-clock series (volatile)</h2>"
            + charts_for(wall_series, "--series-2")
        )

    def table_block(heading: str, headers: list[str], rows: list[list[Any]],
                    note: str = "") -> str:
        if not rows:
            return ""
        head = "".join(f"<th>{_html.escape(str(h))}</th>" for h in headers)
        body = "".join(
            "<tr>" + "".join(
                # Preserve the profile tree's indentation in HTML cells.
                "<td><pre class='cell'>{}</pre></td>".format(
                    _html.escape(str(cell))
                )
                for cell in row
            ) + "</tr>"
            for row in rows
        )
        note_html = f"<p class='note'>{note}</p>" if note else ""
        return (
            f"<h2>{_html.escape(heading)}</h2>{note_html}"
            f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
        )

    profile_block = table_block(
        "Span profile",
        _PROFILE_HEADERS,
        _profile_rows(summary),
        note="times are wall clock (volatile); counts are deterministic",
    )
    critical_path_block = table_block(
        "Critical paths (per application)",
        _CRITICAL_PATH_HEADERS,
        _critical_path_rows(summary),
    )

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_html.escape(title)}</title>
<style>{_HTML_STYLE}</style>
</head>
<body class="viz-root">
<h1>{_html.escape(title)}</h1>
<p class="meta">{meta.get("events", 0)} events across
{len(meta.get("kinds", {}))} kinds &middot; time span {span_text} &middot;
SLO verdict <span class="badge {verdict}">{verdict.upper()}</span> &middot;
replay <span class="badge {'pass' if replay.get('ok', True) else 'fail'}">
{replay_status}</span></p>
<h2>SLOs</h2>
<table><thead><tr><th>SLO</th><th>check</th><th>observed</th><th>status</th></tr>
</thead><tbody>{slo_rows}</tbody></table>
<h2>Replay</h2>
<p class="meta">{replay.get("checks", 0)} state-hash checks,
{replay.get("divergences", 0)} divergences,
{replay.get("allocated", 0)} allocations / {replay.get("released", 0)}
releases reconstructed from events.</p>
{first_text}{warnings}
<h2>Time series</h2>
{charts_for(series, "--series-1")}
{wall_block}
{profile_block}
{critical_path_block}
</body>
</html>
"""
