"""Streaming rollups: bounded live aggregates instead of raw event files.

At 10k-node scale a raw trace is the wrong primary artifact — even
sampled, it grows without bound and every consumer pays a full-file pass.
The rollup plane inverts the flow: a :class:`RollupSink` registered on the
tracer folds every event into a live :class:`RollupState` (a
:class:`~repro.obs.timeline.TimelineAggregator` plus the span profiler,
both already bounded in memory) and periodically rewrites one **bounded**
``ROLLUP_*.json`` document — downsampled series, top-k span stats, the
tracer's own cost accounting, and the ambient metrics snapshot.  The file
is replaced atomically on every flush, so its size is a function of
``max_points`` and the series count, never of run length.

Consumers:

* ``repro dashboard ROLLUP_run.json`` renders the full dashboard (series
  tables, charts, SLO verdicts) from the rollup alone via
  :func:`build_dashboard_from_rollup` — no raw trace needed.  Replay
  cross-checking is the one section that genuinely requires raw events;
  it is reported as skipped, not failed.
* The live ``/snapshot`` endpoint (:mod:`repro.obs.serve`) serves from
  the same :class:`RollupState`, so the in-flight view and the on-disk
  rollup are two renderings of one aggregate.

Wiring mirrors the telemetry server: :func:`install_rollup` registers the
sink on the ambient tracer (installing a sink-only tracer when tracing is
otherwise disabled), ``MEDEA_ROLLUP=<path>`` (:func:`rollup_from_env`) or
the CLI's ``--rollup PATH`` enables it, and it is zero-cost when unset.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Mapping

from .events import WALL_KEY, EventKind, TraceEvent
from .hist import LatencyHistogram
from .metrics import get_metrics
from .profile import ProfileReport
from .timeline import DEFAULT_MAX_POINTS, DEFAULT_TICK_S, TimelineAggregator, TimeSeries
from .trace import Tracer, get_tracer, set_tracer

__all__ = [
    "ROLLUP_SCHEMA",
    "ENV_ROLLUP",
    "RollupState",
    "RollupSink",
    "install_rollup",
    "shutdown_rollup",
    "get_rollup",
    "rollup_from_env",
    "load_rollup",
    "is_rollup_doc",
    "summary_series",
    "build_dashboard_from_rollup",
]

ROLLUP_SCHEMA = "medea.rollup/1"

#: Environment variable read by :func:`rollup_from_env` (the output path).
ENV_ROLLUP = "MEDEA_ROLLUP"

#: Simulated seconds between on-disk flushes.
DEFAULT_INTERVAL_S = 30.0
#: Event-count flush fallback for streams without a simulated clock.
DEFAULT_EVENT_INTERVAL = 50_000
#: Span paths kept in the rollup document (top-k by sample count).
DEFAULT_TOP_K_SPANS = 64


class RollupState:
    """Live bounded aggregate of one run: timeline + span profile.

    Every ingest path is a single :meth:`observe` call, so the tracer
    sink, the telemetry server, and post-hoc converters share one code
    path.  :meth:`summary` is the dashboard-shaped view (what
    ``/snapshot`` serves); :meth:`document` wraps it with the schema tag
    and flush bookkeeping (what lands in ``ROLLUP_*.json``).
    """

    def __init__(
        self,
        *,
        tick_s: float = DEFAULT_TICK_S,
        max_points: int = DEFAULT_MAX_POINTS,
        top_k_spans: int = DEFAULT_TOP_K_SPANS,
    ) -> None:
        self.timeline = TimelineAggregator(tick_s=tick_s, max_points=max_points)
        self.profile = ProfileReport()
        self.top_k_spans = top_k_spans
        self.flushes = 0
        #: End-to-end placement-request latency distribution, folded from
        #: ``request.done`` events (mergeable, bounded memory) — the p99
        #: ``repro watch`` renders and the sweep reports aggregate.
        self.request_hist = LatencyHistogram()

    def observe(self, obj: Mapping[str, Any]) -> None:
        """Fold one decoded event dict into every aggregate."""
        self.timeline.consume(obj)
        kind = obj.get("kind")
        if kind == EventKind.SPAN:
            self.profile.add(obj)
        elif kind == EventKind.REQUEST_DONE:
            latency = (obj.get(WALL_KEY) or {}).get("latency_s")
            if latency is not None:
                self.request_hist.record(latency)

    def observe_event(self, event: TraceEvent) -> None:
        self.observe(event.to_obj())

    def _profile_objs(self) -> tuple[dict[str, Any], dict[str, Any]]:
        """(deterministic profile section, wall timings) bounded to the
        top-k spans by sample count (count-desc, then path)."""
        stats = self.profile.sorted_spans()
        kept = sorted(stats, key=lambda s: (-s.count, s.path))[: self.top_k_spans]
        kept.sort(key=lambda s: s.path)
        obj: dict[str, Any] = {
            "events": self.profile.events,
            "spans": [stat.to_obj() for stat in kept],
        }
        if len(stats) > len(kept):
            obj["spans_dropped"] = len(stats) - len(kept)
        wall = {
            stat.path: {
                "total_s": round(stat.total_s, 6),
                "self_s": round(stat.self_s, 6),
            }
            for stat in kept
        }
        return obj, wall

    def summary(self) -> dict[str, Any]:
        """Dashboard-shaped summary: the timeline's series (volatile ones
        under ``"wall"``) plus the bounded span profile."""
        out = self.timeline.summary()
        profile_obj, profile_wall = self._profile_objs()
        out["profile"] = profile_obj
        if profile_wall:
            out.setdefault(WALL_KEY, {})["profile"] = profile_wall
        if self.request_hist.count:
            out.setdefault(WALL_KEY, {})["request_latency"] = (
                self.request_hist.summary()
            )
        return out

    def document(self) -> dict[str, Any]:
        """The bounded on-disk rollup document (one JSON object)."""
        doc = self.summary()
        doc["schema"] = ROLLUP_SCHEMA
        doc["rollup"] = {
            "flushes": self.flushes,
            "events": self.timeline.events,
        }
        wall = doc.setdefault(WALL_KEY, {})
        tracer = get_tracer()
        if tracer.enabled:
            wall["tracer"] = tracer.self_stats()
        metrics = get_metrics().snapshot()
        if any(metrics.get(family) for family in ("counters", "gauges", "timers")):
            wall["metrics"] = metrics
        return doc


class RollupSink:
    """Tracer sink maintaining a :class:`RollupState` and flushing it to a
    bounded JSON file — atomically (tmp + rename), every ``interval_s`` of
    *simulated* time (or every ``event_interval`` events for clockless
    streams), and once more on close."""

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        state: RollupState | None = None,
        interval_s: float = DEFAULT_INTERVAL_S,
        event_interval: int = DEFAULT_EVENT_INTERVAL,
    ) -> None:
        self.path = os.fspath(path)
        self.state = state if state is not None else RollupState()
        self.interval_s = float(interval_s)
        self.event_interval = max(1, int(event_interval))
        self._last_flush_t: float | None = None
        self._events_since_flush = 0
        self._closed = False

    def emit(self, event: TraceEvent) -> None:
        if self._closed:
            return
        self.state.observe_event(event)
        self._events_since_flush += 1
        t = event.time
        if t is not None:
            if self._last_flush_t is None:
                self._last_flush_t = t
            elif t - self._last_flush_t >= self.interval_s:
                self.flush()
                return
        if self._events_since_flush >= self.event_interval:
            self.flush()

    def flush(self) -> None:
        """Atomically rewrite the rollup document."""
        self.state.flushes += 1
        self._events_since_flush = 0
        self._last_flush_t = self.state.timeline._clock
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.state.document(), handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._closed = True


# -- ambient wiring -----------------------------------------------------------

_active_rollup: RollupSink | None = None


def get_rollup() -> RollupSink | None:
    """The process-wide rollup sink, if one is installed."""
    return _active_rollup


def install_rollup(
    path: str | os.PathLike,
    *,
    interval_s: float = DEFAULT_INTERVAL_S,
    tracer: Tracer | None = None,
) -> RollupSink:
    """Register a rollup sink on the ambient tracer (idempotent).

    Like :func:`repro.obs.serve.install`: when tracing is otherwise
    disabled a sink-only tracer is installed, so the rollup plane works
    without writing any raw trace file.  If a telemetry server is already
    running, its live :class:`RollupState` is reused so ``/snapshot`` and
    the on-disk rollup stay two views of one aggregate.
    """
    global _active_rollup
    if _active_rollup is not None:
        return _active_rollup
    from .serve import get_server

    server = get_server()
    state = server.rollup if server is not None else None
    sink = RollupSink(path, state=state, interval_s=interval_s)
    target = tracer if tracer is not None else get_tracer()
    if not target.enabled:
        target = Tracer([sink])
        set_tracer(target)
    else:
        target.add_sink(sink)
    _active_rollup = sink
    return sink


def shutdown_rollup() -> None:
    """Final-flush and detach the ambient rollup sink."""
    global _active_rollup
    sink = _active_rollup
    if sink is None:
        return
    _active_rollup = None
    tracer = get_tracer()
    try:
        tracer.remove_sink(sink)
    except ValueError:
        pass
    sink.close()


def rollup_from_env(environ: Mapping[str, str] | None = None) -> RollupSink | None:
    """Install the rollup sink when ``MEDEA_ROLLUP=<path>`` is set."""
    env = os.environ if environ is None else environ
    raw = env.get(ENV_ROLLUP, "").strip()
    if not raw or raw.lower() in ("0", "false", "no", "off"):
        return None
    return install_rollup(raw)


# -- reading rollups back -----------------------------------------------------


def is_rollup_doc(doc: Any) -> bool:
    return isinstance(doc, Mapping) and doc.get("schema") == ROLLUP_SCHEMA


def load_rollup(path: str | os.PathLike) -> dict[str, Any]:
    """Load and validate a ``ROLLUP_*.json`` document."""
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise ValueError(f"cannot read rollup file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: corrupt rollup JSON: {exc.msg}") from exc
    if not is_rollup_doc(doc):
        raise ValueError(
            f"{path} is not a {ROLLUP_SCHEMA} rollup document (missing or "
            f"unexpected 'schema' field)"
        )
    return doc


def summary_series(
    doc: Mapping[str, Any],
) -> tuple[dict[str, Any], dict[str, Any]]:
    """``(deterministic, wall)`` series maps of a dashboard-shaped summary
    or rollup document — the inputs ``repro diff`` compares when given two
    rollups instead of raw traces."""
    deterministic = dict(doc.get("series") or {})
    wall = dict((doc.get(WALL_KEY) or {}).get("series") or {})
    return deterministic, wall


class _RollupTimeline:
    """Timeline view reconstructed from a rollup document — just enough
    surface (``series`` with ``values()``/``volatile``, ``time_span()``)
    for :class:`~repro.obs.slo.SLOMonitor` to evaluate rules against."""

    def __init__(self, doc: Mapping[str, Any]) -> None:
        self.series: dict[str, TimeSeries] = {}
        self._span = (doc.get("meta") or {}).get("time_span")
        for name, obj in (doc.get("series") or {}).items():
            self._restore(name, obj, volatile=False)
        wall_series = (doc.get(WALL_KEY) or {}).get("series") or {}
        for name, obj in wall_series.items():
            self._restore(name, obj, volatile=True)

    def _restore(self, name: str, obj: Mapping[str, Any], *, volatile: bool) -> None:
        series = TimeSeries(
            name,
            agg=obj.get("agg", "mean"),
            tick_s=float(obj.get("tick_s") or DEFAULT_TICK_S),
            volatile=volatile,
        )
        # One sample per rolled-up bucket reproduces the bucket values
        # exactly for every aggregation mode.
        for t, v in obj.get("points", ()):
            series.add(float(t), float(v))
        self.series[name] = series

    def time_span(self) -> tuple[float, float] | None:
        if not self._span:
            return None
        return (float(self._span[0]), float(self._span[1]))


def build_dashboard_from_rollup(
    doc: Mapping[str, Any],
    *,
    rules: Iterable[Any] | None = None,
) -> dict[str, Any]:
    """Assemble the dashboard summary from a rollup document alone.

    Series, meta, and the span profile come straight from the rollup;
    SLO rules are re-evaluated against the reconstructed series.  Replay
    cross-checking needs raw events by definition, so the replay section
    reports itself skipped (``ok`` with a note), never failed.
    """
    from .slo import SLOMonitor, default_smoke_slos

    summary: dict[str, Any] = {
        "meta": dict(doc.get("meta") or {}),
        "series": dict(doc.get("series") or {}),
    }
    summary["meta"]["rollup"] = dict(doc.get("rollup") or {})
    wall_in = doc.get(WALL_KEY) or {}
    wall_out: dict[str, Any] = {}
    if wall_in.get("series"):
        wall_out["series"] = dict(wall_in["series"])
    if wall_in.get("profile"):
        wall_out["profile"] = dict(wall_in["profile"])
    if wall_in.get("tracer"):
        wall_out["tracer"] = dict(wall_in["tracer"])

    summary["replay"] = {
        "ok": True,
        "events": summary["meta"].get("events", 0),
        "checks": 0,
        "allocated": 0,
        "released": 0,
        "divergences": 0,
        "warnings": [
            "replay skipped: dashboard rendered from a streaming rollup "
            "(no raw events to cross-check)"
        ],
    }

    timeline = _RollupTimeline(doc)
    monitor = SLOMonitor(default_smoke_slos() if rules is None else list(rules))
    slo_report = monitor.evaluate(timeline)
    deterministic, volatile = slo_report.split()
    summary["slo"] = {
        "verdict": "fail" if any(r.status == "FAIL" for r in deterministic) else "pass",
        "rules": [r.to_obj() for r in deterministic],
    }
    if volatile:
        wall_out["slo"] = {
            "verdict": "fail" if any(r.status == "FAIL" for r in volatile) else "pass",
            "rules": [r.to_obj() for r in volatile],
        }

    summary["profile"] = dict(doc.get("profile") or {"events": 0, "spans": []})
    summary["critical_paths"] = []
    if wall_out:
        summary[WALL_KEY] = wall_out
    return summary
