"""Deterministic head-based trace sampling.

At 10k nodes a fully traced run emits tens of millions of events; most of
them (heartbeats, dispatches, per-task lifecycle) are individually
uninteresting but collectively dominate tracing cost.  This module keeps
tracing affordable at scale without giving up the determinism contract:

* **Per-event-type policies** — a :class:`SamplingPolicy` is parsed from a
  compact spec string (``MEDEA_TRACE_SAMPLE`` / ``--trace-sample``), e.g.
  ``"heartbeat=0.01,task=0.1,lra=1.0,seed=7"``.  Keys match an exact event
  kind (``sim.heartbeat``), a glob (``task.*``), or a bare word matched
  against the kind's dot components (``heartbeat`` → ``sim.heartbeat``).
  ``*`` (or ``default``) sets the fallback rate; ``seed=N`` keys the hash.

* **Seeded-hash decisions** — sampling is a pure function of the policy
  seed and the event's identity, never of ``random``: an event keyed by an
  application/task/container id is kept iff ``crc32(key, seed)`` falls
  below ``rate · 2^32``.  Same seed + same spec → byte-identical canonical
  traces.  (CRC32 over short ids is uniform enough for head sampling and
  ~10× cheaper than a cryptographic hash — the decision runs once per
  lifecycle on the hot path.)

* **Complete lifecycles** — keyed events are decided *once per identity*
  (head-based sampling): the first event carrying an id fixes the keep/drop
  decision and every later event with the same id inherits it, so a kept
  lifecycle is kept whole — no orphan ``task.release`` without its
  ``task.submit``.  Decisions are evicted at terminal events
  (``lra.complete`` / ``lra.drop`` / ``task.finish``) so the decision map
  tracks *concurrent* lifecycles, not total ones.

* **Protected kinds** — the anchors the rest of the observability layer
  relies on (:data:`PROTECTED_KINDS`: state-hash checkpoints, node
  availability, experiment boundaries, watchdog trips, SLO breaches) are
  never sampled out, whatever the policy says.

* **Sampled fingerprints** — dropping lifecycle events would make replay's
  state reconstruction diverge from the recorded full-state hash.  The
  sampler therefore mirrors replay's reconstruction over the *kept* events
  only and enriches every ``sim.state_hash`` event with a deterministic
  ``sampled_hash`` field; :mod:`repro.obs.replay` cross-checks against it
  when present, so sampled traces replay without false divergence.
"""

from __future__ import annotations

import fnmatch
from typing import Any, Mapping
from zlib import crc32

from .events import EventKind

__all__ = [
    "SamplingPolicy",
    "TraceSampler",
    "PROTECTED_KINDS",
    "parse_sample_spec",
]

#: Event kinds exempt from sampling: the structural anchors replay, the
#: timeline, and the watchdog depend on.  Low-volume by construction.
PROTECTED_KINDS = frozenset(
    {
        EventKind.SIM_STATE_HASH,
        EventKind.NODE_AVAILABILITY,
        EventKind.BENCH_EXPERIMENT,
        EventKind.WATCHDOG_TRIP,
        EventKind.SLO_BREACH,
    }
)

#: Terminal lifecycle kinds: after these the identity's sampling decision
#: can be evicted (bounds the decision map to concurrent lifecycles).
_TERMINAL_KINDS = frozenset(
    {EventKind.LRA_COMPLETE, EventKind.LRA_DROP, EventKind.TASK_FINISH}
)

_FULL = 1 << 32


class SamplingPolicy:
    """Per-event-kind sampling rates plus the hash seed.

    Rules are ``(pattern, rate)`` pairs evaluated in spec order; the first
    matching rule wins.  A pattern matches a kind when it equals the kind,
    globs it (:func:`fnmatch.fnmatchcase`), or — for bare words without
    dots or wildcards — equals one of the kind's dot components.
    """

    def __init__(
        self,
        rules: list[tuple[str, float]] | None = None,
        *,
        default: float = 1.0,
        seed: int = 0,
    ) -> None:
        for pattern, rate in rules or []:
            _check_rate(pattern, rate)
        _check_rate("default", default)
        self.rules: list[tuple[str, float]] = list(rules or [])
        self.default = float(default)
        self.seed = int(seed)
        self._rate_cache: dict[str, float] = {}

    @classmethod
    def parse(cls, spec: str) -> "SamplingPolicy":
        """Parse a ``kind=rate,...`` spec (see module docstring)."""
        rules: list[tuple[str, float]] = []
        default = 1.0
        seed = 0
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            key, sep, value = entry.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not key or not value:
                raise ValueError(
                    f"trace-sample: {entry!r} is not a key=value entry "
                    f"(expected e.g. 'heartbeat=0.01' or 'seed=7')"
                )
            if key == "seed":
                try:
                    seed = int(value)
                except ValueError:
                    raise ValueError(
                        f"trace-sample: seed must be an integer, got {value!r}"
                    ) from None
                continue
            try:
                rate = float(value)
            except ValueError:
                raise ValueError(
                    f"trace-sample: rate for {key!r} must be a number, "
                    f"got {value!r}"
                ) from None
            _check_rate(key, rate)
            if key in ("*", "default"):
                default = rate
            else:
                rules.append((key, rate))
        return cls(rules, default=default, seed=seed)

    def rate_for(self, kind: str) -> float:
        """First-match rate for an event kind (cached per kind)."""
        rate = self._rate_cache.get(kind)
        if rate is None:
            rate = self.default
            components = kind.split(".")
            for pattern, rule_rate in self.rules:
                if pattern == kind:
                    rate = rule_rate
                    break
                if ("*" in pattern or "?" in pattern or "[" in pattern):
                    if fnmatch.fnmatchcase(kind, pattern):
                        rate = rule_rate
                        break
                elif "." not in pattern and pattern in components:
                    rate = rule_rate
                    break
            self._rate_cache[kind] = rate
        return rate

    @property
    def trivial(self) -> bool:
        """True when no rule can drop anything (all rates 1.0)."""
        return self.default >= 1.0 and all(r >= 1.0 for _, r in self.rules)

    def describe(self) -> str:
        """Canonical spec string (round-trips through :meth:`parse`)."""
        parts = [f"{pattern}={rate:g}" for pattern, rate in self.rules]
        if self.default != 1.0:
            parts.append(f"*={self.default:g}")
        if self.seed:
            parts.append(f"seed={self.seed}")
        return ",".join(parts)


def _check_rate(key: str, rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(
            f"trace-sample: rate for {key!r} must be in [0, 1], got {rate}"
        )


def parse_sample_spec(spec: str | None) -> SamplingPolicy | None:
    """``None``/blank → no sampling; otherwise :meth:`SamplingPolicy.parse`."""
    if spec is None or not spec.strip():
        return None
    return SamplingPolicy.parse(spec)


class TraceSampler:
    """Stateful per-tracer sampler applying a :class:`SamplingPolicy`.

    :meth:`sample` is called by :meth:`repro.obs.trace.Tracer.emit` before
    an event is built (dropped events never consume a sequence number, so
    the kept stream stays contiguous and canonical).  The sampler also
    maintains the kept-placement mirror behind the ``sampled_hash``
    enrichment (see module docstring).
    """

    def __init__(self, policy: SamplingPolicy) -> None:
        self.policy = policy
        # The seed keys the hash as crc32's initial value.
        self._seed_init = policy.seed & 0xFFFFFFFF
        self._thresholds: dict[str, int] = {}
        self._decisions: dict[str, bool] = {}
        self._kind_seen: dict[str, int] = {}
        self._placements: dict[str, str] = {}
        self._down: set[str] = set()

    # -- decision machinery --------------------------------------------------

    def _threshold(self, kind: str) -> int:
        threshold = self._thresholds.get(kind)
        if threshold is None:
            threshold = self._thresholds[kind] = int(
                self.policy.rate_for(kind) * _FULL
            )
        return threshold

    def _hash32(self, payload: str) -> int:
        return crc32(payload.encode("utf-8"), self._seed_init)

    def decide(self, kind: str, key: str | None) -> bool:
        """The deterministic keep/drop decision for one event."""
        if key is None:
            n = self._kind_seen.get(kind, 0) + 1
            self._kind_seen[kind] = n
            threshold = self._threshold(kind)
            if threshold >= _FULL:
                return True
            return self._hash32(f"{kind}|{n}") < threshold
        keep = self._decisions.get(key)
        if keep is None:
            threshold = self._threshold(kind)
            keep = threshold >= _FULL or self._hash32(key) < threshold
            self._decisions[key] = keep
        if kind in _TERMINAL_KINDS:
            self._decisions.pop(key, None)
        return keep

    def prefilter(self, kind: str, key: str | None) -> bool:
        """Slow path behind :meth:`repro.obs.trace.Tracer.wants`.

        Makes (and caches) the keyed decision without seeing the payload,
        so hot call sites can skip building event data for dropped
        lifecycles.  Keyless kinds are only cheap-decidable at rate 0 —
        fractional keyless sampling needs the per-kind counter, which
        stays inside :meth:`decide` so the kept stream is identical
        whether or not a call site is gated.

        Returns the keep decision; on a keyed *keep* the cached decision
        is left in place (not evicted at terminal kinds) because the
        subsequent :meth:`sample` call resolves — and evicts — it.
        """
        if kind in PROTECTED_KINDS:
            return True
        if key is not None:
            threshold = self._threshold(kind)
            keep = threshold >= _FULL or self._hash32(key) < threshold
            self._decisions[key] = keep
            return keep
        return self._threshold(kind) != 0

    # -- the tracer hook -----------------------------------------------------

    def sample(
        self, kind: str, data: Mapping[str, Any]
    ) -> tuple[bool, Mapping[str, Any]]:
        """``(keep, data)`` for one would-be event.

        ``data`` is returned unchanged except for ``sim.state_hash``
        events, which gain the deterministic ``sampled_hash`` field.
        """
        if kind in PROTECTED_KINDS:
            if kind == EventKind.NODE_AVAILABILITY:
                node_id = data.get("node_id")
                if node_id is not None:
                    if data.get("up"):
                        self._down.discard(node_id)
                    else:
                        self._down.add(node_id)
            elif kind == EventKind.BENCH_EXPERIMENT:
                # Fresh cluster: reset the mirror and the decision map.
                self._placements.clear()
                self._down.clear()
                self._decisions.clear()
            elif kind == EventKind.SIM_STATE_HASH:
                from ..cluster.state import placement_fingerprint

                data = dict(data)
                data["sampled_hash"] = placement_fingerprint(
                    self._placements, self._down
                )
            return True, data

        key = data.get("app_id") or data.get("task_id") or data.get("container_id")
        if not self.decide(kind, key if key is None else str(key)):
            return False, data

        # Mirror replay's reconstruction over the *kept* stream only.
        if kind == EventKind.LRA_PLACE:
            for container_id, node_id in data.get("placements") or ():
                self._placements[container_id] = node_id
        elif kind == EventKind.LRA_COMPLETE:
            for container_id in data.get("released", ()):
                self._placements.pop(container_id, None)
        elif kind == EventKind.TASK_ALLOCATE:
            task_id = data.get("task_id")
            node_id = data.get("node_id")
            if task_id is not None and node_id is not None:
                self._placements[task_id] = node_id
        elif kind == EventKind.TASK_RELEASE:
            task_id = data.get("task_id")
            if task_id is not None:
                self._placements.pop(task_id, None)
        return True, data

    def stats(self) -> dict[str, Any]:
        """Deterministic sampler bookkeeping for self-telemetry."""
        return {
            "policy": self.policy.describe(),
            "seed": self.policy.seed,
            "tracked_decisions": len(self._decisions),
            "tracked_placements": len(self._placements),
        }
