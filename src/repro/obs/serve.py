"""Live telemetry endpoint: ``/metrics``, ``/healthz``, ``/snapshot``.

Everything else in ``repro.obs`` is post-hoc — traces, dashboards, SLO
verdicts you read after the run.  This module is the *live* half: a
stdlib-only HTTP server (``http.server`` on a daemon thread) an operator
or a Prometheus scraper can hit while a long run is in flight.

* ``/metrics`` — the ambient :class:`~repro.obs.metrics.Metrics` registry
  rendered as Prometheus text exposition (version 0.0.4): counters,
  gauges, and timers (as summaries with ``quantile`` labels), labels
  preserved and escaped.
* ``/healthz`` — liveness tied to run progress: the server is fed a
  heartbeat for every trace event that flows (and records the latest
  simulated tick); when no progress arrives for longer than
  ``deadline_s`` of *wall* time the endpoint flips from 200 to 503, so a
  stalled solver or a hung loop is visible to any HTTP prober.
* ``/snapshot`` — the dashboard's JSON summary computed from a **live**
  :class:`~repro.obs.timeline.TimelineAggregator` sink, volatile fields
  under ``"wall"`` as usual, plus build identity and health.

Wiring: :func:`install` registers the server's sink on the ambient tracer
(enabling a sink-only tracer when none is configured) so the simulation's
existing event stream feeds the timeline and the health heartbeat — no
engine changes, no new event kinds.  Enabled via ``MEDEA_SERVE=<port>``
(:func:`serve_from_env`) or the CLI's ``--serve PORT``; zero-cost when
unset (nothing is started, no sink is registered, the traced event stream
is byte-identical).

``repro watch`` (:func:`fetch_snapshot` / :func:`render_watch`) polls
``/snapshot`` into a refreshing terminal view.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping
from urllib.request import Request, urlopen

from ..version import build_info, server_banner, user_agent
from .events import TraceEvent
from .log import get_run_logger
from .metrics import Metrics, get_metrics, parse_label_key
from .rollup import RollupState
from .timeline import DEFAULT_MAX_POINTS, DEFAULT_TICK_S, TimelineAggregator
from .trace import Tracer, get_tracer, set_tracer

__all__ = [
    "HealthState",
    "RETRY_AFTER_S",
    "TelemetryServer",
    "render_prometheus",
    "install",
    "serve_from_env",
    "get_server",
    "shutdown_server",
    "fetch_snapshot",
    "render_watch",
]

#: Environment variable read by :func:`serve_from_env` (the port number;
#: ``0`` binds an ephemeral port).
ENV_SERVE = "MEDEA_SERVE"

#: Default wall-clock stall deadline before ``/healthz`` turns 503.
DEFAULT_DEADLINE_S = 30.0

#: ``Retry-After`` (seconds) sent with 503 responses — the stalled
#: ``/snapshot`` and the overloaded ``POST /place`` path both advertise it
#: so pollers (``repro watch``, load generators) back off instead of
#: hammering a wedged server.
RETRY_AFTER_S = 5


class HealthState:
    """Liveness derived from run progress.

    :meth:`beat` is called for every observed trace event (recording the
    wall time, and the simulated tick when the event carries one);
    :meth:`status` reports ``ok`` while the last beat is younger than the
    deadline.  Before any beat the server is ``waiting`` (still 200 —
    a run that has not started is not a stalled run).
    """

    def __init__(self, deadline_s: float = DEFAULT_DEADLINE_S, *, clock=time.monotonic) -> None:
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        self.deadline_s = float(deadline_s)
        self._clock = clock
        self._last_beat: float | None = None
        self.last_tick: float | None = None
        self.beats = 0

    def beat(self, tick: float | None = None) -> None:
        self._last_beat = self._clock()
        if tick is not None:
            self.last_tick = tick
        self.beats += 1

    def age_s(self) -> float | None:
        """Wall seconds since the last beat (``None`` before the first)."""
        if self._last_beat is None:
            return None
        return self._clock() - self._last_beat

    def status(self) -> tuple[bool, dict[str, Any]]:
        """``(alive, payload)`` — ``alive=False`` means serve 503."""
        age = self.age_s()
        if age is None:
            return True, {
                "status": "waiting",
                "beats": 0,
                "deadline_s": self.deadline_s,
            }
        stalled = age > self.deadline_s
        return not stalled, {
            "status": "stalled" if stalled else "ok",
            "beats": self.beats,
            "deadline_s": self.deadline_s,
            "age_s": round(age, 3),
            "last_tick": self.last_tick,
        }


# -- Prometheus text exposition ----------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    name = _NAME_SANITIZE.sub("_", name)
    if not name or not (name[0].isalpha() or name[0] in "_:"):
        name = "_" + name
    return name


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(label_key: str, extra: Mapping[str, Any] | None = None) -> str:
    """Render a canonical ``k=v,k2=v2`` label key (plus extras) as
    ``{k="v",k2="v2"}``; empty string when there are no labels.

    The key is decoded with :func:`repro.obs.metrics.parse_label_key`
    (not a naive split) so label values containing commas, equals signs,
    or backslashes survive, then re-escaped per the Prometheus 0.0.4
    exposition rules."""
    pairs: list[tuple[str, str]] = []
    for key, value in parse_label_key(label_key):
        pairs.append((_prom_name(key), _prom_escape(value)))
    for key, value in (extra or {}).items():
        pairs.append((_prom_name(key), _prom_escape(str(value))))
    if not pairs:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + body + "}"


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a :meth:`Metrics.snapshot` as Prometheus text exposition.

    Counters and gauges map directly; timers become summary-style
    families: ``<name>_count`` / ``<name>_sum`` plus ``quantile``-labelled
    sample lines from the deterministic reservoir percentiles.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        for label_key, value in snapshot["counters"][name].items():
            lines.append(f"{prom}{_prom_labels(label_key)} {_prom_value(value)}")
    for name in sorted(snapshot.get("gauges", {})):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        for label_key, value in snapshot["gauges"][name].items():
            lines.append(f"{prom}{_prom_labels(label_key)} {_prom_value(value)}")
    for name in sorted(snapshot.get("timers", {})):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        for label_key, stat in snapshot["timers"][name].items():
            for quantile, field in (("0.5", "p50_s"), ("0.95", "p95_s"), ("0.99", "p99_s")):
                lines.append(
                    f"{prom}{_prom_labels(label_key, {'quantile': quantile})} "
                    f"{_prom_value(stat[field])}"
                )
            lines.append(
                f"{prom}_count{_prom_labels(label_key)} {_prom_value(stat['count'])}"
            )
            lines.append(
                f"{prom}_sum{_prom_labels(label_key)} {_prom_value(stat['total_s'])}"
            )
    for name in sorted(snapshot.get("histograms", {})):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        for label_key, stat in snapshot["histograms"][name].items():
            # Cumulative counts at each occupied bucket's upper bound (the
            # log-bucketed geometry of repro.obs.hist), then the mandatory
            # +Inf bucket, _count and _sum.
            for le, cum in stat.get("buckets", ()):  # already cumulative
                lines.append(
                    f"{prom}_bucket{_prom_labels(label_key, {'le': _prom_value(le)})} "
                    f"{_prom_value(cum)}"
                )
            lines.append(
                f"{prom}_bucket{_prom_labels(label_key, {'le': '+Inf'})} "
                f"{_prom_value(stat['count'])}"
            )
            lines.append(
                f"{prom}_count{_prom_labels(label_key)} {_prom_value(stat['count'])}"
            )
            lines.append(
                f"{prom}_sum{_prom_labels(label_key)} {_prom_value(stat['total_s'])}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# -- the server ----------------------------------------------------------------


class _TelemetrySink:
    """Tracer sink fanning events into the server's aggregator + health.

    Lives behind the server's lock: the simulation thread writes through
    :meth:`emit` while HTTP threads read summaries.
    """

    def __init__(self, server: "TelemetryServer") -> None:
        self._server = server

    def emit(self, event: TraceEvent) -> None:
        self._server.observe(event)

    def close(self) -> None:
        return None


class TelemetryServer:
    """In-process HTTP telemetry endpoint over a background thread."""

    def __init__(
        self,
        port: int = 0,
        *,
        host: str = "127.0.0.1",
        metrics: Metrics | None = None,
        deadline_s: float = DEFAULT_DEADLINE_S,
        tick_s: float = DEFAULT_TICK_S,
        max_points: int = DEFAULT_MAX_POINTS,
    ) -> None:
        self.host = host
        self.port = port  # requested; updated to the bound port on start()
        self._metrics = metrics
        self.health = HealthState(deadline_s)
        #: The live aggregate behind /snapshot — shared with the on-disk
        #: rollup sink when both planes are enabled (see
        #: :func:`repro.obs.rollup.install_rollup`).
        self.rollup = RollupState(tick_s=tick_s, max_points=max_points)
        self.sink = _TelemetrySink(self)
        self._lock = threading.Lock()
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.started_at = time.time()
        #: Optional :class:`~repro.core.scheduler.PlacementService` behind
        #: ``POST /place`` (see :meth:`attach_placement`).
        self.placement = None

    @property
    def metrics(self) -> Metrics:
        return self._metrics if self._metrics is not None else get_metrics()

    @property
    def aggregator(self) -> TimelineAggregator:
        """The rollup state's timeline (kept for API compatibility)."""
        return self.rollup.timeline

    # -- event intake --------------------------------------------------------

    def observe(self, event: TraceEvent) -> None:
        """Fold one live trace event into the rollup state and the heartbeat."""
        with self._lock:
            self.rollup.observe_event(event)
            self.health.beat(event.time)

    def beat(self, tick: float | None = None) -> None:
        """Direct progress heartbeat for un-traced callers."""
        with self._lock:
            self.health.beat(tick)

    def attach_placement(self, service) -> None:
        """Expose a :class:`~repro.core.scheduler.PlacementService` behind
        ``POST /place`` (the seed of serve-scheduler).  Until attached the
        endpoint answers 503."""
        self.placement = service

    # -- documents -----------------------------------------------------------

    def metrics_text(self) -> str:
        return render_prometheus(self.metrics.snapshot())

    def health_doc(self) -> tuple[int, dict[str, Any]]:
        with self._lock:
            alive, payload = self.health.status()
        return (200 if alive else 503), payload

    def snapshot_doc(self) -> dict[str, Any]:
        """The live dashboard summary, served from the shared rollup
        state: the timeline's series (volatile ones under ``"wall"``, as
        usual) and the bounded span profile, plus build identity and the
        health payload (volatile → under ``"wall"`` too)."""
        with self._lock:
            summary = self.rollup.summary()
            _, health = self.health.status()
        summary["meta"]["build"] = build_info()
        wall = summary.setdefault("wall", {})
        wall["health"] = health
        wall["uptime_s"] = round(time.time() - self.started_at, 3)
        if self.placement is not None:
            wall["requests"] = self.placement.stats()
        return summary

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._httpd is not None:
            return self.port
        server = self

        class Handler(BaseHTTPRequestHandler):
            server_version = server_banner()
            sys_version = ""  # do not advertise the Python build

            def version_string(self) -> str:
                # The base class joins server_version + sys_version with a
                # space, leaving a trailing blank; the banner alone is the
                # whole Server header.
                return server_banner()

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                if path == "/metrics":
                    body = server.metrics_text().encode("utf-8")
                    self._reply(200, body, "text/plain; version=0.0.4; charset=utf-8")
                elif path == "/healthz":
                    status, payload = server.health_doc()
                    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
                    self._reply(status, body, "application/json")
                elif path == "/snapshot":
                    # A stalled run serves its (stale) snapshot with 503 +
                    # Retry-After so pollers can tell "live data" from
                    # "last frame before the hang" — repro watch surfaces
                    # the distinction instead of silently re-rendering.
                    alive, _ = server.health.status()
                    body = (
                        json.dumps(server.snapshot_doc(), sort_keys=True) + "\n"
                    ).encode()
                    if alive:
                        self._reply(200, body, "application/json")
                    else:
                        self._reply(
                            503,
                            body,
                            "application/json",
                            headers={"Retry-After": str(RETRY_AFTER_S)},
                        )
                elif path == "/":
                    body = (
                        json.dumps(
                            {
                                "build": build_info(),
                                "endpoints": [
                                    "/metrics",
                                    "/healthz",
                                    "/snapshot",
                                    "/place",
                                ],
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    ).encode()
                    self._reply(200, body, "application/json")
                else:
                    self._reply(404, b"not found\n", "text/plain")

            def do_POST(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                if path != "/place":
                    self._reply(404, b"not found\n", "text/plain")
                    return
                service = server.placement
                if service is None:
                    self._reply_json(
                        503,
                        {"error": "no placement service attached"},
                        headers={"Retry-After": str(RETRY_AFTER_S)},
                    )
                    return
                try:
                    length = int(self.headers.get("Content-Length") or 0)
                except ValueError:
                    length = 0
                raw = self.rfile.read(length) if length > 0 else b""
                from ..core.scheduler import REJECT_OVERLOAD
                from .load import request_from_obj

                try:
                    payload = json.loads(raw.decode("utf-8"))
                    request = request_from_obj(payload)
                except (ValueError, KeyError, TypeError) as exc:
                    self._reply_json(400, {"error": str(exc)})
                    return
                response = service.handle(request)
                server.beat()
                if response.reason == REJECT_OVERLOAD:
                    self._reply_json(
                        503,
                        response.to_obj(),
                        headers={"Retry-After": str(RETRY_AFTER_S)},
                    )
                else:
                    self._reply_json(200, response.to_obj())

            def _reply_json(
                self,
                status: int,
                payload: Mapping[str, Any],
                *,
                headers: Mapping[str, str] | None = None,
            ) -> None:
                body = (json.dumps(payload, sort_keys=True) + "\n").encode()
                self._reply(status, body, "application/json", headers=headers)

            def _reply(
                self,
                status: int,
                body: bytes,
                content_type: str,
                *,
                headers: Mapping[str, str] | None = None,
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                for key, value in (headers or {}).items():
                    self.send_header(key, value)
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: Any) -> None:
                # Route access logs through the run logger instead of stderr.
                log = get_run_logger()
                if log.enabled:
                    log.debug("serve", format % args, client=self.client_address[0])

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-telemetry-{self.port}",
            daemon=True,
        )
        self._thread.start()
        log = get_run_logger()
        if log.enabled:
            log.info("serve", "telemetry endpoint up", host=self.host, port=self.port)
        return self.port

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"


# -- ambient wiring -------------------------------------------------------------

_active_server: TelemetryServer | None = None


def get_server() -> TelemetryServer | None:
    """The process-wide telemetry server, if one is running."""
    return _active_server


def install(
    port: int,
    *,
    host: str = "127.0.0.1",
    deadline_s: float = DEFAULT_DEADLINE_S,
    tracer: Tracer | None = None,
) -> TelemetryServer:
    """Start a telemetry server and register its sink on the tracer.

    When the ambient tracer is disabled (no ``MEDEA_TRACE``), a sink-only
    tracer is installed so the event stream exists for the live plane
    without writing any JSONL file — the canonical trace output of
    serve-less runs is untouched because none of this happens unless the
    caller asked to serve.
    """
    global _active_server
    if _active_server is not None:
        return _active_server
    server = TelemetryServer(port, host=host, deadline_s=deadline_s)
    server.start()
    target = tracer if tracer is not None else get_tracer()
    if not target.enabled:
        target = Tracer([server.sink])
        set_tracer(target)
    else:
        target.add_sink(server.sink)
    _active_server = server
    return server


def shutdown_server() -> None:
    """Stop the ambient telemetry server and detach its sink."""
    global _active_server
    server = _active_server
    if server is None:
        return
    _active_server = None
    tracer = get_tracer()
    try:
        tracer.remove_sink(server.sink)
    except ValueError:
        pass
    server.stop()


def serve_from_env(environ: Mapping[str, str] | None = None) -> TelemetryServer | None:
    """Start the telemetry endpoint when ``MEDEA_SERVE`` is set.

    The value is the port to bind (``0`` picks an ephemeral port, printed
    by the caller).  Returns the server, or ``None`` when serving is not
    requested.  Idempotent.
    """
    env = os.environ if environ is None else environ
    raw = env.get(ENV_SERVE, "").strip()
    if not raw or raw.lower() in ("false", "no", "off"):
        return None
    try:
        port = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_SERVE} must be a port number, got {raw!r}"
        ) from None
    return install(port)


# -- the watch client ------------------------------------------------------------


def _normalize_target(target: str) -> str:
    """Accept a port, ``host:port``, or full URL; return a base URL."""
    if target.isdigit():
        return f"http://127.0.0.1:{target}"
    if "://" not in target:
        return f"http://{target}"
    return target.rstrip("/")


def fetch_snapshot(target: str, *, timeout_s: float = 5.0) -> dict[str, Any]:
    """GET ``/snapshot`` from a telemetry endpoint (identified User-Agent).

    A 503 with a JSON body is the server's *stalled* signal, not an error:
    the stale snapshot is returned with ``wall.http`` carrying the status
    and the advertised ``Retry-After`` so the watch loop can surface the
    health state and back off.  Other HTTP errors propagate.
    """
    from urllib.error import HTTPError

    url = _normalize_target(target).rstrip("/") + "/snapshot"
    request = Request(url, headers={"User-Agent": user_agent("watch")})
    try:
        with urlopen(request, timeout=timeout_s) as response:
            return json.loads(response.read().decode("utf-8"))
    except HTTPError as err:
        if err.code != 503:
            raise
        try:
            snapshot = json.loads(err.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise err from None
        retry_after = err.headers.get("Retry-After")
        snapshot.setdefault("wall", {})["http"] = {
            "status": 503,
            "retry_after_s": float(retry_after) if retry_after else None,
        }
        return snapshot


def render_watch(snapshot: Mapping[str, Any]) -> str:
    """One refreshing-terminal frame of a live ``/snapshot`` document."""
    from ..reporting import render_table

    meta = snapshot.get("meta", {})
    wall = snapshot.get("wall", {})
    health = wall.get("health", {})
    build = meta.get("build", {})
    span = meta.get("time_span")
    span_txt = (
        f"t=[{span[0]:.1f}, {span[1]:.1f}]s" if span else "t=(no events yet)"
    )
    header = (
        f"{build.get('name', 'repro')}/{build.get('version', '?')}  "
        f"{span_txt}  events={meta.get('events', 0)}  "
        f"health={health.get('status', '?')}"
        + (
            f" (tick {health.get('last_tick')}, age {health.get('age_s')}s)"
            if health.get("last_tick") is not None
            else ""
        )
    )
    http = wall.get("http")
    if http and http.get("status") == 503:
        retry = http.get("retry_after_s")
        header = (
            "!! ENDPOINT UNHEALTHY (HTTP 503"
            + (f", retry after {retry:g}s" if retry else "")
            + ") — frame below is the last snapshot before the stall\n"
            + header
        )
    requests = wall.get("requests")
    if requests:
        header += (
            f"\nrequests: seen={requests.get('seen', 0)} "
            f"placed={requests.get('placed', 0)} "
            f"rejected={requests.get('rejected', 0)} "
            f"pending={requests.get('pending', 0)}"
        )
    latency = wall.get("request_latency")
    if latency and latency.get("count"):
        header += (
            f"\nrequest latency: n={latency['count']} "
            f"p50={latency['p50_s'] * 1e3:.2f}ms "
            f"p95={latency['p95_s'] * 1e3:.2f}ms "
            f"p99={latency['p99_s'] * 1e3:.2f}ms"
        )
    rows = []

    def series_rows(series: Mapping[str, Any], volatile: bool) -> None:
        for name in sorted(series):
            obj = series[name]
            if "last" not in obj:
                continue
            rows.append(
                [
                    name + (" *" if volatile else ""),
                    f"{obj['last']:.4g}",
                    f"{obj['mean']:.4g}",
                    f"{obj['min']:.4g}",
                    f"{obj['max']:.4g}",
                    len(obj.get("points", ())),
                ]
            )

    series_rows(snapshot.get("series", {}), volatile=False)
    series_rows(wall.get("series", {}), volatile=True)
    if not rows:
        return header + "\n\n(no series yet — is the run emitting events?)"
    table = render_table(
        ["series", "last", "mean", "min", "max", "points"], rows
    )
    return header + "\n\n" + table + "\n* = volatile (wall-clock-derived)"
