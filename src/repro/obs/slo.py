"""Declarative SLO monitoring over timeline series.

An :class:`SLORule` names a timeline series (glob patterns allowed, e.g.
``solver_latency_s:*``), an aggregation over its per-tick values (``max`` /
``min`` / ``mean`` / ``last`` / ``p50`` / ``p95`` / ``p99``), a comparison
operator and a threshold.  :class:`SLOMonitor` evaluates a rule set against
a :class:`~repro.obs.timeline.TimelineAggregator`, emits one typed
``slo.breach`` trace event per violated rule, and produces an
:class:`SLOReport` with a run-level pass/fail verdict.

Rules whose series does not exist in the timeline are *skipped*, not
breached — a smoke trace without task load simply has no queuing-delay
series to judge.  Percentiles are computed over the per-tick aggregated
values (the bounded-memory contract of the timeline), not raw samples.

Determinism: a rule that matched only deterministic series yields a
deterministic result; one that touched any volatile (wall-derived) series
is flagged ``volatile`` so report assembly can segregate it under the
``"wall"`` key, keeping same-seed dashboard summaries byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Iterable, Sequence

from .events import EventKind
from .stats import percentile
from .timeline import TimelineAggregator
from .trace import Tracer

__all__ = [
    "SLORule",
    "SLOBreach",
    "SLOResult",
    "SLOReport",
    "SLOMonitor",
    "default_smoke_slos",
    "load_slo_rules",
]

_OPS = {
    "<=": lambda observed, threshold: observed <= threshold,
    "<": lambda observed, threshold: observed < threshold,
    ">=": lambda observed, threshold: observed >= threshold,
    ">": lambda observed, threshold: observed > threshold,
}
_AGGS = ("max", "min", "mean", "last", "p50", "p95", "p99")


@dataclass(frozen=True)
class SLORule:
    """One declarative threshold: ``agg(series) op threshold``."""

    name: str
    series: str
    threshold: float
    agg: str = "max"
    op: str = "<="
    description: str = ""

    def __post_init__(self) -> None:
        if self.agg not in _AGGS:
            raise ValueError(f"unknown agg {self.agg!r}; expected one of {_AGGS}")
        if self.op not in _OPS:
            raise ValueError(f"unknown op {self.op!r}; expected one of {tuple(_OPS)}")

    def aggregate(self, values: Sequence[float]) -> float:
        if self.agg == "max":
            return max(values)
        if self.agg == "min":
            return min(values)
        if self.agg == "mean":
            return sum(values) / len(values)
        if self.agg == "last":
            return values[-1]
        return percentile(values, float(self.agg[1:]))

    def satisfied(self, observed: float) -> bool:
        return _OPS[self.op](observed, self.threshold)

    def to_obj(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "series": self.series,
            "agg": self.agg,
            "op": self.op,
            "threshold": self.threshold,
            "description": self.description,
        }

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "SLORule":
        known = {f: obj[f] for f in
                 ("name", "series", "threshold", "agg", "op", "description")
                 if f in obj}
        missing = {"name", "series", "threshold"} - set(known)
        if missing:
            raise ValueError(f"SLO rule missing fields: {sorted(missing)}")
        return cls(**known)


@dataclass(frozen=True)
class SLOBreach:
    """A typed breach record: which rule failed, and what was observed."""

    rule: SLORule
    observed: float
    matched_series: tuple[str, ...]

    def to_obj(self) -> dict[str, Any]:
        return {
            "rule": self.rule.name,
            "series": list(self.matched_series),
            "agg": self.rule.agg,
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "observed": round(self.observed, 6),
        }


@dataclass
class SLOResult:
    """Evaluation outcome of one rule."""

    rule: SLORule
    observed: float | None
    ok: bool
    skipped: bool
    matched_series: tuple[str, ...] = ()
    #: True when any matched series derives from wall-clock measurements.
    volatile: bool = False

    @property
    def status(self) -> str:
        if self.skipped:
            return "skip"
        return "pass" if self.ok else "FAIL"

    def to_obj(self) -> dict[str, Any]:
        obj = self.rule.to_obj()
        obj["status"] = self.status
        obj["observed"] = (
            None if self.observed is None else round(self.observed, 6)
        )
        obj["matched_series"] = list(self.matched_series)
        return obj


@dataclass
class SLOReport:
    """All rule results plus the run-level verdict."""

    results: list[SLOResult] = field(default_factory=list)

    @property
    def breaches(self) -> list[SLOBreach]:
        return [
            SLOBreach(r.rule, r.observed, r.matched_series)
            for r in self.results
            if not r.skipped and not r.ok
        ]

    @property
    def ok(self) -> bool:
        return not self.breaches

    @property
    def verdict(self) -> str:
        return "pass" if self.ok else "fail"

    def split(self) -> tuple[list[SLOResult], list[SLOResult]]:
        """(deterministic results, volatile results) — for summary layout."""
        deterministic = [r for r in self.results if not r.volatile]
        volatile = [r for r in self.results if r.volatile]
        return deterministic, volatile

    def to_obj(self) -> dict[str, Any]:
        return {
            "verdict": self.verdict,
            "rules": [r.to_obj() for r in self.results],
        }


class SLOMonitor:
    """Evaluate a rule set against an aggregated timeline."""

    def __init__(self, rules: Iterable[SLORule]) -> None:
        self.rules = list(rules)

    def evaluate(
        self, timeline: TimelineAggregator, *, tracer: Tracer | None = None
    ) -> SLOReport:
        """Judge every rule; emit one ``slo.breach`` event per failure when
        ``tracer`` is given and enabled."""
        report = SLOReport()
        for rule in self.rules:
            report.results.append(self._evaluate_rule(rule, timeline))
        if tracer is not None and tracer.enabled:
            span = timeline.time_span()
            when = span[1] if span is not None else None
            for breach in report.breaches:
                obj = breach.to_obj()
                observed = obj.pop("observed")
                volatile = any(
                    timeline.series[name].volatile
                    for name in breach.matched_series
                    if name in timeline.series
                )
                if volatile:
                    # An observation over wall-derived series is itself
                    # volatile: keep it out of the canonical stream.
                    tracer.emit(
                        EventKind.SLO_BREACH,
                        time=when,
                        data=obj,
                        wall={"observed": observed},
                    )
                else:
                    tracer.emit(
                        EventKind.SLO_BREACH,
                        time=when,
                        data={**obj, "observed": observed},
                    )
        return report

    def _evaluate_rule(
        self, rule: SLORule, timeline: TimelineAggregator
    ) -> SLOResult:
        matched = sorted(
            name for name in timeline.series if fnmatchcase(name, rule.series)
        )
        observations: list[float] = []
        volatile = False
        names: list[str] = []
        for name in matched:
            series = timeline.series[name]
            values = series.values()
            if not values:
                continue
            names.append(name)
            volatile = volatile or series.volatile
            observations.append(rule.aggregate(values))
        if not observations:
            return SLOResult(rule, None, ok=True, skipped=True)
        # Worst case across matched series w.r.t. the comparison direction.
        observed = (
            max(observations) if rule.op in ("<=", "<") else min(observations)
        )
        return SLOResult(
            rule,
            observed,
            ok=rule.satisfied(observed),
            skipped=False,
            matched_series=tuple(names),
            volatile=volatile,
        )


def default_smoke_slos() -> list[SLORule]:
    """The CI smoke thresholds: generous bounds that catch pathologies
    (runaway queues, solver blowups, violation storms), not regressions."""
    return [
        SLORule(
            name="task-queue-delay-p99",
            series="task_queue_delay_s",
            agg="p99",
            op="<=",
            threshold=60.0,
            description="p99 per-tick mean task queuing delay (simulated s)",
        ),
        SLORule(
            name="violations-final",
            series="violations",
            agg="last",
            op="<=",
            threshold=25.0,
            description="constraint-violating containers at end of run",
        ),
        SLORule(
            name="lra-queue-max",
            series="queue_depth:*",
            agg="max",
            op="<=",
            threshold=200.0,
            description="pending LRAs at any scheduling cycle",
        ),
        SLORule(
            name="solver-latency-p99",
            series="solver_latency_s:*",
            agg="p99",
            op="<=",
            threshold=30.0,
            description="p99 per-tick mean scheduler solve wall time (s)",
        ),
    ]


def load_slo_rules(path: str) -> list[SLORule]:
    """Load rules from a JSON file: a list of rule objects (see
    :meth:`SLORule.from_obj`)."""
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    if not isinstance(raw, list):
        raise ValueError(f"{path}: SLO rules file must be a JSON list")
    return [SLORule.from_obj(obj) for obj in raw]
