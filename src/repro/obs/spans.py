"""Hierarchical spans: where the time of one run actually goes.

Flat timers (:class:`~repro.obs.metrics.Timer`) answer "how long did X take
in aggregate"; spans answer "*why* did this ``place()`` call take 400 ms" —
each :func:`span` nests inside the currently open one, and the closed span
records both its total duration and its *self* time (duration minus the
time spent in child spans).  The paper's §7.3–§7.5 latency analyses are all
phase-attribution questions of exactly this shape.

Spans ride the existing :class:`~repro.obs.trace.Tracer` machinery — one
``span`` :class:`~repro.obs.events.TraceEvent` per *closed* span, so the
stream stays replayable and totally ordered by ``seq``:

* ``data`` — the deterministic identity: ``name``, the ``;``-joined
  ancestor ``path`` (the collapsed-stack frame list), ``depth``, the sample
  ``count`` folded into the span, plus any caller-supplied labels.  Two
  same-seed runs produce byte-identical ``data`` streams.
* ``wall`` — the volatile measurements: ``dur_s`` (total) and ``self_s``
  (total minus child time), stripped by ``canonical()`` like every other
  wall field.

**Zero cost when disabled**: :func:`span` checks ``tracer.enabled`` first
and returns a shared no-op context manager without allocating anything, so
instrumented hot paths pay one function call and one attribute read.  Call
sites inside per-event loops should additionally guard with
``if tracer.enabled:`` like the rest of the obs layer.

Aggregated phases that are too hot to wrap individually (e.g. the thousands
of node LPs inside one branch-and-bound solve) are recorded post hoc with
:func:`span_phase`, which emits a *synthetic* child span under the
currently open one, carrying the phase's accumulated duration and sample
count.  The profile builder (:mod:`repro.obs.profile`) treats both kinds
uniformly.
"""

from __future__ import annotations

import time as _time
from typing import Any

from .events import EventKind
from .trace import Tracer, get_tracer

__all__ = ["span", "span_phase", "Span", "current_span_path"]

#: Attribute on a :class:`Tracer` holding that tracer's open-span stack.
_STACK_ATTR = "_span_stack"


def _stack(tracer: Tracer) -> list:
    stack = getattr(tracer, _STACK_ATTR, None)
    if stack is None:
        stack = []
        setattr(tracer, _STACK_ATTR, stack)
    return stack


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """One open span; use via ``with span("name"):`` rather than directly.

    The enclosing span is found on the tracer's stack at ``__enter__``;
    ``__exit__`` pops the stack, charges the duration to the parent's child
    accumulator (so the parent's ``self_s`` excludes it), and emits the
    ``span`` event — including on exception, so a crashed phase still shows
    up in the profile.
    """

    __slots__ = ("_tracer", "name", "time", "data", "path", "depth",
                 "_start", "_child_s", "_stack_ref")

    def __init__(
        self,
        tracer: Tracer,
        name: str,
        sim_time: float | None,
        data: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.time = sim_time
        self.data = data
        self._child_s = 0.0

    def __enter__(self) -> "Span":
        stack = self._stack_ref = _stack(self._tracer)
        parent = stack[-1] if stack else None
        if parent is None:
            self.path = self.name
            self.depth = 0
        else:
            self.path = f"{parent.path};{self.name}"
            self.depth = parent.depth + 1
        stack.append(self)
        self._start = _time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur_s = _time.perf_counter() - self._start
        stack = self._stack_ref
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            stack[-1]._child_s += dur_s
        self._tracer.emit(
            EventKind.SPAN,
            time=self.time,
            data={
                "name": self.name,
                "path": self.path,
                "depth": self.depth,
                "count": 1,
                **self.data,
            },
            wall={
                "dur_s": dur_s,
                "self_s": max(0.0, dur_s - self._child_s),
            },
        )
        return False


def span(
    name: str,
    *,
    tracer: Tracer | None = None,
    time: float | None = None,
    **data: Any,
) -> Span | _NullSpan:
    """Open a named span nested under the tracer's currently open span.

    ``name`` must be deterministic (no wall-derived content) and must not
    contain ``;`` — it becomes one frame of the collapsed-stack path.
    ``time`` is the simulated clock, when the caller has one; extra keyword
    labels land in the event's deterministic ``data``.  Returns a shared
    no-op when the (ambient or given) tracer is disabled.
    """
    t = tracer if tracer is not None else get_tracer()
    if not t.enabled:
        return _NULL_SPAN
    return Span(t, name, time, data)


def span_phase(
    name: str,
    dur_s: float,
    *,
    count: int = 1,
    tracer: Tracer | None = None,
    time: float | None = None,
    **data: Any,
) -> None:
    """Record an *aggregated* phase as a synthetic child span.

    For phases interleaved through a hot loop (per-node LP solves, rounding
    heuristic attempts) a real span per iteration would swamp the trace;
    instead the instrumented code accumulates the phase's total duration
    and sample count itself and emits one synthetic span when done.  The
    phase nests under the currently open span and is charged to its child
    accumulator, so the parent's self time excludes it — exactly as if
    ``count`` real child spans had run.
    """
    t = tracer if tracer is not None else get_tracer()
    if not t.enabled:
        return
    stack = _stack(t)
    parent = stack[-1] if stack else None
    if parent is None:
        path, depth = name, 0
    else:
        path, depth = f"{parent.path};{name}", parent.depth + 1
        parent._child_s += dur_s
    t.emit(
        EventKind.SPAN,
        time=time,
        data={
            "name": name,
            "path": path,
            "depth": depth,
            "count": int(count),
            "synthetic": True,
            **data,
        },
        wall={"dur_s": dur_s, "self_s": dur_s},
    )


def current_span_path(tracer: Tracer | None = None) -> str | None:
    """Path of the innermost open span, or ``None`` (introspection/tests)."""
    t = tracer if tracer is not None else get_tracer()
    stack = getattr(t, _STACK_ATTR, None)
    return stack[-1].path if stack else None
