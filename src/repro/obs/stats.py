"""Statistical summaries (box-plot percentiles, CDFs) for the metrics layer.

The paper reports box plots with whiskers at p5/p99, boxes at p25/p75 and a
median line (Fig. 7 caption); :class:`BoxStats` mirrors exactly that.

Historically this lived at ``repro.metrics.stats`` as a disconnected side
system; it now sits inside ``repro.obs`` so summaries fold into the same
:class:`~repro.obs.metrics.Metrics` registry everything else records into
(see :meth:`BoxStats.record_to`).  ``repro.metrics`` keeps re-exporting the
public names, and ``repro.metrics.stats`` remains as a deprecation shim.

This module is dependency-free (no ``repro`` imports) so it can be pulled
in from anywhere in the package without import cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

__all__ = [
    "BoxStats",
    "EmptyDataError",
    "percentile",
    "cdf_points",
    "coefficient_of_variation",
]


class EmptyDataError(ValueError):
    """A summary statistic was asked of an empty sequence.

    Subclasses :class:`ValueError` so existing ``except ValueError`` /
    ``pytest.raises(ValueError)`` call sites keep working, while letting
    benchmark drivers distinguish "no data" (a scheduler placed nothing,
    a latency series is empty) from a genuinely malformed argument.
    """


_MISSING = object()


def percentile(values: Sequence[float], q: float, *, default: float = _MISSING) -> float:
    """Linear-interpolation percentile (q in [0, 100]).

    Raises :class:`EmptyDataError` on empty input unless ``default`` is
    given, in which case it is returned instead — the escape hatch for
    benchmark tables whose series can legitimately be empty (e.g. a
    scheduler that rejected every application).
    """
    if not values:
        if default is not _MISSING:
            return default
        raise EmptyDataError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    value = ordered[low] * (1 - frac) + ordered[high] * frac
    # Clamp away float rounding: interpolation must stay inside the bracket.
    return min(max(value, ordered[low]), ordered[high])


@dataclass(frozen=True)
class BoxStats:
    """p5 / p25 / median / p75 / p99 summary (the paper's box-plot shape)."""

    p5: float
    p25: float
    median: float
    p75: float
    p99: float
    mean: float
    count: int

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "BoxStats":
        data = list(values)
        if not data:
            raise EmptyDataError("BoxStats of empty data")
        return cls(
            p5=percentile(data, 5),
            p25=percentile(data, 25),
            median=percentile(data, 50),
            p75=percentile(data, 75),
            p99=percentile(data, 99),
            mean=sum(data) / len(data),
            count=len(data),
        )

    @classmethod
    def empty(cls) -> "BoxStats":
        """NaN-filled summary with ``count == 0`` (renders as "no data")."""
        nan = math.nan
        return cls(p5=nan, p25=nan, median=nan, p75=nan, p99=nan, mean=nan, count=0)

    @classmethod
    def from_values_or_empty(cls, values: Iterable[float]) -> "BoxStats":
        """Like :meth:`from_values` but maps empty input to :meth:`empty`,
        for benchmark series that can legitimately have no samples."""
        data = list(values)
        return cls.from_values(data) if data else cls.empty()

    def record_to(self, metrics: Any, name: str, **labels: Any) -> None:
        """Fold this summary into a :class:`~repro.obs.metrics.Metrics`
        registry as a labelled gauge family: one ``stat=<p5|p25|median|
        p75|p99|mean|count>`` series per field (NaN fields are skipped).
        Duck-typed so this module stays import-cycle free."""
        gauge = metrics.gauge(name)
        for stat in ("p5", "p25", "median", "p75", "p99", "mean"):
            value = getattr(self, stat)
            if not math.isnan(value):
                gauge.set(value, stat=stat, **labels)
        gauge.set(self.count, stat="count", **labels)

    def row(self, label: str, unit: str = "") -> str:
        if self.count == 0:
            return f"{label:<12} (no data)"
        return (
            f"{label:<12} p5={self.p5:8.1f}  p25={self.p25:8.1f}  "
            f"median={self.median:8.1f}  p75={self.p75:8.1f}  "
            f"p99={self.p99:8.1f} {unit}"
        )


def cdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) points."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Population CV = stddev / mean (0 when the mean is 0)."""
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(variance) / mean
