"""Streaming timeline aggregation: raw trace events → per-tick time series.

The paper's evaluation speaks in aggregates over time — node/rack
utilisation (Fig. 3), task queuing delay (Fig. 7/11c), runtime constraint
violations (Fig. 9), container churn and scheduler queue depth — while the
tracer emits individual events.  :class:`TimelineAggregator` bridges the
two: it consumes :class:`~repro.obs.events.TraceEvent` records (live, as a
tracer sink, or post-hoc from a JSONL file) and maintains a set of
:class:`TimeSeries`, each bucketed to a tick width and **bounded in
memory**: when a series exceeds ``max_points`` buckets its tick width
doubles and adjacent buckets are merged, so arbitrarily long runs keep a
fixed-size, progressively coarser summary.

Determinism: series derived from the deterministic ``data`` payload are
themselves deterministic (same-seed runs produce identical summaries);
series derived from volatile ``wall`` payloads (solver latency, cycle wall
time) are flagged ``volatile`` and segregated under the top-level ``"wall"``
key of :meth:`TimelineAggregator.summary`, mirroring the trace-level
``canonical()`` contract.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from .events import WALL_KEY, EventKind, TraceEvent

__all__ = ["TimeSeries", "TimelineAggregator", "DEFAULT_TICK_S", "DEFAULT_MAX_POINTS"]

#: Default bucket width in simulated seconds.
DEFAULT_TICK_S = 1.0
#: Default per-series bucket cap before tick-doubling kicks in.
DEFAULT_MAX_POINTS = 512

_AGGS = ("mean", "sum", "max", "last")


class TimeSeries:
    """One named per-tick series with an aggregation mode and bounded size.

    Buckets are keyed by tick index (``int(t // tick_s)``); out-of-order
    samples merge into their bucket wherever it is.  ``agg`` decides how
    samples within a bucket combine: ``mean`` (utilisation-style levels),
    ``sum`` (churn-style rates per tick), ``max``, or ``last``
    (monotone-state samples like violation counts).
    """

    __slots__ = ("name", "agg", "tick_s", "max_points", "volatile", "_buckets")

    def __init__(
        self,
        name: str,
        *,
        agg: str = "mean",
        tick_s: float = DEFAULT_TICK_S,
        max_points: int = DEFAULT_MAX_POINTS,
        volatile: bool = False,
    ) -> None:
        if agg not in _AGGS:
            raise ValueError(f"unknown agg {agg!r}; expected one of {_AGGS}")
        if tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if max_points < 2:
            raise ValueError("max_points must be at least 2")
        self.name = name
        self.agg = agg
        self.tick_s = float(tick_s)
        self.max_points = max_points
        self.volatile = volatile
        #: tick index -> [accumulator, sample count]
        self._buckets: dict[int, list[float]] = {}

    def add(self, t: float, value: float) -> None:
        index = int(t // self.tick_s)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [float(value), 1]
            if len(self._buckets) > self.max_points:
                self._coarsen()
        else:
            self._merge(bucket, float(value), 1)

    def _merge(self, bucket: list[float], acc: float, count: int) -> None:
        if self.agg == "mean" or self.agg == "sum":
            bucket[0] += acc
        elif self.agg == "max":
            bucket[0] = max(bucket[0], acc)
        else:  # last: later samples win (callers feed in event order)
            bucket[0] = acc
        bucket[1] += count

    def _coarsen(self) -> None:
        """Double the tick width and merge adjacent buckets (bounded memory)."""
        self.tick_s *= 2.0
        merged: dict[int, list[float]] = {}
        for index in sorted(self._buckets):
            acc, count = self._buckets[index]
            target = merged.get(index // 2)
            if target is None:
                merged[index // 2] = [acc, count]
            else:
                self._merge(target, acc, count)
        self._buckets = merged

    def _value(self, bucket: list[float]) -> float:
        if self.agg == "mean":
            return bucket[0] / bucket[1]
        return bucket[0]

    def __len__(self) -> int:
        return len(self._buckets)

    def points(self) -> list[tuple[float, float]]:
        """Sorted ``(bucket start time, aggregated value)`` pairs."""
        return [
            (index * self.tick_s, self._value(self._buckets[index]))
            for index in sorted(self._buckets)
        ]

    def values(self) -> list[float]:
        return [value for _, value in self.points()]

    def to_obj(self) -> dict[str, Any]:
        points = self.points()
        values = [v for _, v in points]
        obj: dict[str, Any] = {
            "agg": self.agg,
            "tick_s": self.tick_s,
            "points": [[t, round(v, 6)] for t, v in points],
        }
        if values:
            obj["min"] = round(min(values), 6)
            obj["max"] = round(max(values), 6)
            obj["mean"] = round(sum(values) / len(values), 6)
            obj["last"] = round(values[-1], 6)
        return obj


class TimelineAggregator:
    """Streaming consumer turning a trace into the paper's signal series.

    Usable three ways:

    * as a live tracer sink (``Tracer([TimelineAggregator(), ...])``) — it
      implements the sink protocol (:meth:`emit` / :meth:`close`);
    * post-hoc over decoded event dicts (:meth:`consume` /
      :meth:`consume_all`);
    * straight from a JSONL file (:meth:`from_jsonl`).

    Series produced (deterministic unless noted):

    ======================================  ======  ==============================
    series                                  agg     source event
    ======================================  ======  ==============================
    ``utilization``                         mean    ``sim.state_hash``
    ``rack_utilization:<rack>``             mean    ``sim.state_hash``
    ``containers``                          mean    ``sim.state_hash``
    ``pending_tasks`` / ``pending_lras``    mean    ``sim.state_hash``
    ``queue_depth:<scheduler>``             mean    ``scheduler.queue``
    ``task_queue_depth``                    mean    ``scheduler.queue``
    ``task_queue_delay_s``                  mean    ``task.allocate``
    ``containers_started`` / ``_stopped``   sum     lra/task lifecycle
    ``violations`` / ``violation_subjects`` last    ``cycle.end``
    ``lra_placed`` / ``_rejected`` / ...    sum     ``cycle.end``
    ``nodes_down``                          last    ``sim.node_availability``
    ``engine_queue``                        mean    ``engine.dispatch``
    ``solver_latency_s:<scheduler>``        mean    ``scheduler.place`` (volatile)
    ``cycle_seconds``                       mean    ``cycle.end`` (volatile)
    ``solver_total_s:<backend>``            mean    ``solver.solve`` (volatile)
    ======================================  ======  ==============================
    """

    def __init__(
        self,
        *,
        tick_s: float = DEFAULT_TICK_S,
        max_points: int = DEFAULT_MAX_POINTS,
    ) -> None:
        self.tick_s = float(tick_s)
        self.max_points = max_points
        self.series: dict[str, TimeSeries] = {}
        self.events = 0
        self.kind_counts: dict[str, int] = {}
        self._clock = 0.0
        self._t_min: float | None = None
        self._t_max: float | None = None
        self._down_nodes: set[str] = set()

    # -- sink protocol -------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        self.consume(event.to_obj())

    def close(self) -> None:  # sink protocol; nothing buffered
        return None

    # -- ingestion ------------------------------------------------------------

    def _series(self, name: str, agg: str, *, volatile: bool = False) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = TimeSeries(
                name,
                agg=agg,
                tick_s=self.tick_s,
                max_points=self.max_points,
                volatile=volatile,
            )
        return series

    def consume(self, obj: Mapping[str, Any]) -> None:
        """Ingest one decoded JSONL event dict."""
        self.events += 1
        kind = obj.get("kind", "?")
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        t = obj.get("time")
        if t is None:
            # Clock-less emitters (e.g. solver internals) inherit the time
            # of the last stamped event, which precedes them in the stream.
            t = self._clock
        else:
            t = float(t)
            self._clock = t
            self._t_min = t if self._t_min is None else min(self._t_min, t)
            self._t_max = t if self._t_max is None else max(self._t_max, t)
        data = obj.get("data") or {}
        wall = obj.get(WALL_KEY) or {}
        handler = self._HANDLERS.get(kind)
        if handler is not None:
            handler(self, t, data, wall)

    def consume_all(self, events: Iterable[Mapping[str, Any] | TraceEvent]) -> None:
        for event in events:
            if isinstance(event, TraceEvent):
                self.consume(event.to_obj())
            else:
                self.consume(event)

    @classmethod
    def from_jsonl(
        cls,
        path: str,
        *,
        tick_s: float = DEFAULT_TICK_S,
        max_points: int = DEFAULT_MAX_POINTS,
    ) -> "TimelineAggregator":
        """Build a timeline from a recorded trace file — JSONL or ``.mtrc``
        — streaming one event at a time (constant memory; tolerates a
        trailing partial line/chunk; raises
        :class:`~repro.obs.report.TraceFileError` on unusable files)."""
        from .report import iter_trace

        aggregator = cls(tick_s=tick_s, max_points=max_points)
        for obj in iter_trace(path):
            aggregator.consume(obj)
        return aggregator

    # -- per-kind handlers ----------------------------------------------------

    def _on_state_hash(self, t: float, data: Mapping, wall: Mapping) -> None:
        if "utilization" in data:
            self._series("utilization", "mean").add(t, data["utilization"])
        for rack, util in sorted((data.get("utilization_by_rack") or {}).items()):
            self._series(f"rack_utilization:{rack}", "mean").add(t, util)
        for key, name in (
            ("containers", "containers"),
            ("pending_tasks", "pending_tasks"),
            ("pending_lras", "pending_lras"),
        ):
            if key in data:
                self._series(name, "mean").add(t, data[key])

    def _on_scheduler_queue(self, t: float, data: Mapping, wall: Mapping) -> None:
        scheduler = data.get("scheduler", "?")
        self._series(f"queue_depth:{scheduler}", "mean").add(
            t, data.get("pending_lras", 0)
        )
        if "pending_tasks" in data:
            self._series("task_queue_depth", "mean").add(t, data["pending_tasks"])

    def _on_cycle_end(self, t: float, data: Mapping, wall: Mapping) -> None:
        if "violations" in data:
            self._series("violations", "last").add(t, data["violations"])
        if "violation_subjects" in data:
            self._series("violation_subjects", "last").add(
                t, data["violation_subjects"]
            )
        self._series("lra_placed", "sum").add(t, len(data.get("placed", ())))
        self._series("lra_rejected", "sum").add(t, len(data.get("rejected", ())))
        self._series("lra_conflicted", "sum").add(t, len(data.get("conflicted", ())))
        if "solve_time_s" in wall:
            self._series("cycle_seconds", "mean", volatile=True).add(
                t, wall["solve_time_s"]
            )

    def _on_lra_place(self, t: float, data: Mapping, wall: Mapping) -> None:
        self._series("containers_started", "sum").add(t, data.get("containers", 0))

    def _on_lra_complete(self, t: float, data: Mapping, wall: Mapping) -> None:
        self._series("containers_stopped", "sum").add(t, data.get("containers", 0))

    def _on_task_allocate(self, t: float, data: Mapping, wall: Mapping) -> None:
        self._series("containers_started", "sum").add(t, 1)
        if "latency_s" in data:
            self._series("task_queue_delay_s", "mean").add(t, data["latency_s"])

    def _on_task_release(self, t: float, data: Mapping, wall: Mapping) -> None:
        self._series("containers_stopped", "sum").add(t, 1)

    def _on_node_availability(self, t: float, data: Mapping, wall: Mapping) -> None:
        node_id = data.get("node_id")
        if node_id is not None:
            if data.get("up"):
                self._down_nodes.discard(node_id)
            else:
                self._down_nodes.add(node_id)
        self._series("nodes_down", "last").add(t, len(self._down_nodes))

    def _on_engine_dispatch(self, t: float, data: Mapping, wall: Mapping) -> None:
        if "queued" in data:
            self._series("engine_queue", "mean").add(t, data["queued"])

    def _on_watchdog_trip(self, t: float, data: Mapping, wall: Mapping) -> None:
        self._series("watchdog_trips", "sum").add(t, 1)

    def _on_scheduler_place(self, t: float, data: Mapping, wall: Mapping) -> None:
        if "solve_time_s" in wall:
            scheduler = data.get("scheduler", "?")
            self._series(
                f"solver_latency_s:{scheduler}", "mean", volatile=True
            ).add(t, wall["solve_time_s"])

    def _on_solver_solve(self, t: float, data: Mapping, wall: Mapping) -> None:
        if "time_total_s" in wall:
            backend = data.get("backend", "?")
            self._series(
                f"solver_total_s:{backend}", "mean", volatile=True
            ).add(t, wall["time_total_s"])

    def _on_request_submit(self, t: float, data: Mapping, wall: Mapping) -> None:
        # Per-tick admitted-request count: divided by tick_s this is the
        # offered request rate the latency-under-load curves plot against.
        self._series("request_rate", "sum").add(t, 1)

    def _on_request_reject(self, t: float, data: Mapping, wall: Mapping) -> None:
        self._series("request_rejected", "sum").add(t, 1)

    def _on_request_done(self, t: float, data: Mapping, wall: Mapping) -> None:
        if not data.get("placed", False):
            self._series("request_unplaced", "sum").add(t, 1)
        if "latency_s" in wall:
            self._series("request_latency_s", "mean", volatile=True).add(
                t, wall["latency_s"]
            )
        if "queue_s" in wall:
            self._series("request_queue_s", "mean", volatile=True).add(
                t, wall["queue_s"]
            )

    _HANDLERS = {
        EventKind.SIM_STATE_HASH: _on_state_hash,
        EventKind.SCHEDULER_QUEUE: _on_scheduler_queue,
        EventKind.CYCLE_END: _on_cycle_end,
        EventKind.LRA_PLACE: _on_lra_place,
        EventKind.LRA_COMPLETE: _on_lra_complete,
        EventKind.TASK_ALLOCATE: _on_task_allocate,
        EventKind.TASK_RELEASE: _on_task_release,
        EventKind.NODE_AVAILABILITY: _on_node_availability,
        EventKind.ENGINE_DISPATCH: _on_engine_dispatch,
        EventKind.SCHEDULER_PLACE: _on_scheduler_place,
        EventKind.SOLVER_SOLVE: _on_solver_solve,
        EventKind.WATCHDOG_TRIP: _on_watchdog_trip,
        EventKind.REQUEST_SUBMIT: _on_request_submit,
        EventKind.REQUEST_REJECT: _on_request_reject,
        EventKind.REQUEST_DONE: _on_request_done,
    }

    # -- output ----------------------------------------------------------------

    def time_span(self) -> tuple[float, float] | None:
        if self._t_min is None or self._t_max is None:
            return None
        return (self._t_min, self._t_max)

    def summary(self) -> dict[str, Any]:
        """Deterministically ordered summary dict.

        Volatile (wall-clock-derived) series live under the top-level
        ``"wall"`` key so stripping it — exactly like the trace-level
        :func:`~repro.obs.events.canonical` — yields a byte-stable document
        for same-seed runs.
        """
        span = self.time_span()
        deterministic: dict[str, Any] = {}
        volatile: dict[str, Any] = {}
        for name in sorted(self.series):
            series = self.series[name]
            (volatile if series.volatile else deterministic)[name] = series.to_obj()
        out: dict[str, Any] = {
            "meta": {
                "events": self.events,
                "kinds": dict(sorted(self.kind_counts.items())),
                "tick_s": self.tick_s,
                "max_points": self.max_points,
                "time_span": list(span) if span is not None else None,
            },
            "series": deterministic,
        }
        if volatile:
            out[WALL_KEY] = {"series": volatile}
        return out
