"""The tracer and its sinks.

A :class:`Tracer` is the single entry point components emit through.  It is
**zero-cost when disabled**: instrumented call sites guard with
``if tracer.enabled:`` so neither the event payload dict nor the event
object is ever built on the fast path, and the disabled default tracer is a
shared module-level singleton.

Sinks receive fully formed :class:`~repro.obs.events.TraceEvent` records:

* :class:`MemorySink` — in-process list, used by tests and ad-hoc analysis.
* :class:`JsonlSink` — one sorted-key JSON object per line; deterministic
  fields in ``data``, volatile wall-clock fields under ``"wall"``.

A process-wide default tracer supports ambient configuration
(:func:`get_tracer` / :func:`set_tracer` / :func:`configure` /
:func:`configure_from_env`); components may also be handed an explicit
tracer for isolated runs (the determinism tests do exactly that).
"""

from __future__ import annotations

import io
import os
from typing import Any, Iterable, Mapping, TextIO

from .events import TraceEvent

__all__ = [
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "configure",
    "configure_from_env",
]

#: Environment variables read by :func:`configure_from_env`.
ENV_TRACE = "MEDEA_TRACE"
ENV_TRACE_OUT = "MEDEA_TRACE_OUT"


class TraceSink:
    """Interface sinks implement (duck-typed; subclassing is optional)."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class MemorySink(TraceSink):
    """Keep every event in a list."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def jsonl(self, *, canonical: bool = False) -> str:
        """Serialise the captured stream as JSONL text."""
        lines = [
            e.canonical_json() if canonical else e.to_json() for e in self.events
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def kinds(self) -> list[str]:
        return [e.kind for e in self.events]

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(TraceSink):
    """Stream events to a JSONL file (or any text file object)."""

    def __init__(self, target: str | os.PathLike | TextIO) -> None:
        if isinstance(target, (str, os.PathLike)):
            self._file: TextIO = open(target, "w", encoding="utf-8")
            self._owned = True
            self.path: str | None = os.fspath(target)
        else:
            self._file = target
            self._owned = False
            self.path = getattr(target, "name", None)
        self._closed = False

    def emit(self, event: TraceEvent) -> None:
        if not self._closed:
            self._file.write(event.to_json() + "\n")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.flush()
        except (ValueError, io.UnsupportedOperation):  # already closed target
            pass
        if self._owned:
            self._file.close()


class Tracer:
    """Emits typed events to zero or more sinks with a total order.

    ``enabled`` is a plain attribute so the hot-path guard is a single
    attribute read.  ``emit`` is still safe to call while disabled (it is a
    no-op), but guarded call sites avoid even building the payload.
    """

    def __init__(
        self, sinks: Iterable[TraceSink] = (), *, enabled: bool = True
    ) -> None:
        self.sinks: list[TraceSink] = list(sinks)
        self.enabled = enabled
        self._seq = 0

    def add_sink(self, sink: TraceSink) -> TraceSink:
        self.sinks.append(sink)
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        self.sinks.remove(sink)

    def emit(
        self,
        kind: str,
        *,
        time: float | None = None,
        data: Mapping[str, Any] | None = None,
        wall: Mapping[str, Any] | None = None,
    ) -> TraceEvent | None:
        """Build and dispatch one event; returns it (``None`` if disabled)."""
        if not self.enabled:
            return None
        event = TraceEvent(
            kind=kind, seq=self._seq, time=time, data=data or {}, wall=wall
        )
        self._seq += 1
        for sink in self.sinks:
            sink.emit(event)
        return event

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


#: Shared disabled tracer: the ambient default until configured.
_NULL_TRACER = Tracer(enabled=False)
_default_tracer: Tracer = _NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide default tracer (disabled unless configured)."""
    return _default_tracer


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` as the default (``None`` restores the disabled
    null tracer); returns the previous default so callers can restore it."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer if tracer is not None else _NULL_TRACER
    return previous


def configure(
    *,
    jsonl_path: str | os.PathLike | None = None,
    memory: bool = False,
    enabled: bool = True,
) -> Tracer:
    """Build a tracer with the requested sinks and install it as default."""
    sinks: list[TraceSink] = []
    if jsonl_path is not None:
        sinks.append(JsonlSink(jsonl_path))
    if memory:
        sinks.append(MemorySink())
    tracer = Tracer(sinks, enabled=enabled)
    set_tracer(tracer)
    return tracer


def configure_from_env(environ: Mapping[str, str] | None = None) -> Tracer | None:
    """Enable tracing when ``MEDEA_TRACE`` is set to a truthy value.

    ``MEDEA_TRACE_OUT`` names the JSONL output file (default
    ``medea_trace.jsonl`` in the working directory).  Returns the installed
    tracer, or ``None`` when tracing is not requested.  Does nothing if an
    enabled tracer is already installed (idempotent under repeated calls,
    e.g. from both a CLI entry point and the benchmark harness).
    """
    env = os.environ if environ is None else environ
    flag = env.get(ENV_TRACE, "").strip().lower()
    if flag in ("", "0", "false", "no", "off"):
        return None
    if _default_tracer.enabled:
        return _default_tracer
    path = env.get(ENV_TRACE_OUT, "medea_trace.jsonl")
    return configure(jsonl_path=path)
