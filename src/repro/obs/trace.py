"""The tracer and its sinks.

A :class:`Tracer` is the single entry point components emit through.  It is
**zero-cost when disabled**: instrumented call sites guard with
``if tracer.enabled:`` so neither the event payload dict nor the event
object is ever built on the fast path, and the disabled default tracer is a
shared module-level singleton.

Sinks receive fully formed :class:`~repro.obs.events.TraceEvent` records:

* :class:`MemorySink` — in-process list, used by tests and ad-hoc analysis.
* :class:`JsonlSink` — one sorted-key JSON object per line; deterministic
  fields in ``data``, volatile wall-clock fields under ``"wall"``.

A process-wide default tracer supports ambient configuration
(:func:`get_tracer` / :func:`set_tracer` / :func:`configure` /
:func:`configure_from_env`); components may also be handed an explicit
tracer for isolated runs (the determinism tests do exactly that).
"""

from __future__ import annotations

import contextvars
import io
import os
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterable, Iterator, Mapping, TextIO

from .events import TraceEvent
from .sample import (
    PROTECTED_KINDS as _PROTECTED_KINDS,
    _TERMINAL_KINDS,
    SamplingPolicy,
    TraceSampler,
    parse_sample_spec,
)

__all__ = [
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "configure",
    "configure_from_env",
    "open_trace_sink",
    "request_context",
    "current_request_id",
]

#: Environment variables read by :func:`configure_from_env`.
ENV_TRACE = "MEDEA_TRACE"
ENV_TRACE_OUT = "MEDEA_TRACE_OUT"
#: Sampling-policy spec applied to the configured tracer (see
#: :class:`repro.obs.sample.SamplingPolicy`), e.g.
#: ``MEDEA_TRACE_SAMPLE="heartbeat=0.01,task=0.1,seed=7"``.
ENV_TRACE_SAMPLE = "MEDEA_TRACE_SAMPLE"


#: Request-scoped trace context (ISSUE 10).  While a ``request_context`` is
#: active on the current thread/task, every emitted event is stamped with
#: the request id — so the whole causal chain of one placement request
#: (``request.*`` lifecycle, nested spans, solver events) can be filtered
#: out of a shared trace.  A :class:`contextvars.ContextVar` keeps the
#: stamp thread- and async-safe for the concurrent serve path, and the
#: default ``None`` keeps simulation traces byte-identical: no context, no
#: injected field.
_request_id: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "medea_request_id", default=None
)

#: ``data`` key the request context injects.
REQUEST_ID_KEY = "request_id"


def current_request_id() -> str | None:
    """The active request id, if a :func:`request_context` is open."""
    return _request_id.get()


@contextmanager
def request_context(request_id: str) -> Iterator[str]:
    """Stamp every event emitted in this scope with ``request_id``.

    Scopes nest (the innermost wins) and the stamp never overrides a
    ``request_id`` a call site set explicitly in its payload.
    """
    token = _request_id.set(request_id)
    try:
        yield request_id
    finally:
        _request_id.reset(token)


class TraceSink:
    """Interface sinks implement (duck-typed; subclassing is optional)."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class MemorySink(TraceSink):
    """Keep every event in a list."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def jsonl(self, *, canonical: bool = False) -> str:
        """Serialise the captured stream as JSONL text."""
        lines = [
            e.canonical_json() if canonical else e.to_json() for e in self.events
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def kinds(self) -> list[str]:
        return [e.kind for e in self.events]

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(TraceSink):
    """Stream events to a JSONL file (or any text file object)."""

    def __init__(self, target: str | os.PathLike | TextIO) -> None:
        if isinstance(target, (str, os.PathLike)):
            self._file: TextIO = open(target, "w", encoding="utf-8")
            self._owned = True
            self.path: str | None = os.fspath(target)
        else:
            self._file = target
            self._owned = False
            self.path = getattr(target, "name", None)
        self._closed = False

    def emit(self, event: TraceEvent) -> None:
        if not self._closed:
            self._file.write(event.to_json() + "\n")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.flush()
        except (ValueError, io.UnsupportedOperation):  # already closed target
            pass
        if self._owned:
            self._file.close()


class Tracer:
    """Emits typed events to zero or more sinks with a total order.

    ``enabled`` is a plain attribute so the hot-path guard is a single
    attribute read.  ``emit`` is still safe to call while disabled (it is a
    no-op), but guarded call sites avoid even building the payload.

    With a :class:`~repro.obs.sample.TraceSampler` attached, the sampling
    decision happens *before* the event object exists and before a
    sequence number is consumed, so the kept stream is contiguous and the
    canonical trace for a given seed + sampling spec is byte-stable.

    The tracer accounts its own cost: ``events_seen`` / ``events_emitted``
    / ``events_dropped`` counters (deterministic for a given seed and
    spec) and ``overhead_s``, the cumulative wall time spent inside
    :meth:`emit` (volatile; surfaced as ``obs_overhead_seconds``).
    """

    def __init__(
        self,
        sinks: Iterable[TraceSink] = (),
        *,
        enabled: bool = True,
        sampler: TraceSampler | None = None,
    ) -> None:
        self.sinks: list[TraceSink] = list(sinks)
        self.enabled = enabled
        self.sampler = sampler
        self._seq = 0
        self.events_emitted = 0
        self.events_dropped = 0
        self.overhead_s = 0.0

    @property
    def events_seen(self) -> int:
        """Events offered to the tracer (kept + sampled out).  Derived, so
        the per-event hot paths pay for one counter update, not two."""
        return self.events_emitted + self.events_dropped

    def kind_enabled(self, kind: str) -> bool:
        """Whether events of ``kind`` can ever be emitted under the current
        sampling policy — ``False`` exactly when the policy pins the kind's
        rate to 0 (and it is not protected).

        Unlike :meth:`wants` this involves no per-event state, so a dense
        emitter (e.g. the engine's dispatch loop) may latch it once per run
        and skip its whole tracing block: suppressed-at-source events are
        not offered to the tracer and do not appear in ``events_seen``.
        Callers must re-latch per run because the ambient tracer or its
        policy can be reconfigured between runs.
        """
        if not self.enabled:
            return False
        sampler = self.sampler
        if sampler is None or kind in _PROTECTED_KINDS:
            return True
        return sampler.policy.rate_for(kind) != 0.0

    def wants(self, kind: str, key: str | None = None) -> bool:
        """Pre-flight sampling gate for hot call sites.

        ``False`` means the event would certainly be dropped, so the
        caller can skip building the payload dict entirely — the
        difference between ~1µs and ~10µs per suppressed event, which is
        what keeps dense streams (per-task lifecycle, engine dispatch)
        within the observability budget at scale.  Suppressed events are
        still accounted in ``events_seen`` / ``events_dropped``.

        ``key`` is the event's sampling identity (what
        :meth:`TraceSampler.sample` would extract from the payload:
        app/task/container id); pass it for keyed lifecycles so the
        head-based decision is shared with ungated call sites.  Keyless
        kinds are only suppressed at rate 0 — fractional keyless rates
        return ``True`` and let :meth:`emit` decide.

        The kept stream is byte-identical whether or not a call site is
        gated; ``wants`` only changes who pays for dropped events.
        """
        if not self.enabled:
            return False
        sampler = self.sampler
        if sampler is None:
            return True
        if key is not None:
            keep = sampler._decisions.get(key)
            if keep is None:
                keep = sampler.prefilter(kind, key)
            if keep or kind in _PROTECTED_KINDS:
                return True
            if kind in _TERMINAL_KINDS:
                sampler._decisions.pop(key, None)
        elif sampler.prefilter(kind, None):
            return True
        self.events_dropped += 1
        return False

    def add_sink(self, sink: TraceSink) -> TraceSink:
        self.sinks.append(sink)
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        self.sinks.remove(sink)

    def emit(
        self,
        kind: str,
        *,
        time: float | None = None,
        data: Mapping[str, Any] | None = None,
        wall: Mapping[str, Any] | None = None,
    ) -> TraceEvent | None:
        """Build and dispatch one event; returns it (``None`` if disabled
        or sampled out)."""
        if not self.enabled:
            return None
        t0 = perf_counter()
        if self.sampler is not None:
            keep, data = self.sampler.sample(kind, data or {})
            if not keep:
                self.events_dropped += 1
                self.overhead_s += perf_counter() - t0
                return None
        rid = _request_id.get()
        if rid is not None and REQUEST_ID_KEY not in (data or {}):
            data = {**(data or {}), REQUEST_ID_KEY: rid}
        event = TraceEvent(
            kind=kind, seq=self._seq, time=time, data=data or {}, wall=wall
        )
        self._seq += 1
        for sink in self.sinks:
            sink.emit(event)
        self.events_emitted += 1
        self.overhead_s += perf_counter() - t0
        return event

    def self_stats(self) -> dict[str, Any]:
        """The tracer's own cost accounting (``overhead_s`` is volatile;
        the counters are deterministic for a fixed seed + sampling spec)."""
        stats: dict[str, Any] = {
            "events_seen": self.events_seen,
            "events_emitted": self.events_emitted,
            "events_dropped": self.events_dropped,
            "overhead_s": round(self.overhead_s, 6),
            "sampling": (
                self.sampler.policy.describe() if self.sampler is not None else None
            ),
        }
        return stats

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


#: Shared disabled tracer: the ambient default until configured.
_NULL_TRACER = Tracer(enabled=False)
_default_tracer: Tracer = _NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide default tracer (disabled unless configured)."""
    return _default_tracer


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` as the default (``None`` restores the disabled
    null tracer); returns the previous default so callers can restore it."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer if tracer is not None else _NULL_TRACER
    return previous


def open_trace_sink(path: str | os.PathLike) -> TraceSink:
    """File sink for a trace output path, chosen by extension:
    ``.mtrc`` → the columnar :class:`~repro.obs.mtrc.MtrcSink`, anything
    else → :class:`JsonlSink`."""
    if os.fspath(path).endswith(".mtrc"):
        from .mtrc import MtrcSink

        return MtrcSink(path)
    return JsonlSink(path)


def configure(
    *,
    jsonl_path: str | os.PathLike | None = None,
    memory: bool = False,
    enabled: bool = True,
    sample: str | SamplingPolicy | None = None,
) -> Tracer:
    """Build a tracer with the requested sinks and install it as default.

    ``jsonl_path`` names the trace output file; a ``.mtrc`` extension
    selects the columnar container instead of JSONL.  ``sample`` attaches
    a deterministic sampling policy (a spec string or a parsed
    :class:`~repro.obs.sample.SamplingPolicy`); trivial policies (all
    rates 1.0) are dropped so an unsampled tracer stays hook-free.
    """
    sinks: list[TraceSink] = []
    if jsonl_path is not None:
        sinks.append(open_trace_sink(jsonl_path))
    if memory:
        sinks.append(MemorySink())
    policy = SamplingPolicy.parse(sample) if isinstance(sample, str) else sample
    sampler = (
        TraceSampler(policy) if policy is not None and not policy.trivial else None
    )
    tracer = Tracer(sinks, enabled=enabled, sampler=sampler)
    set_tracer(tracer)
    return tracer


def configure_from_env(environ: Mapping[str, str] | None = None) -> Tracer | None:
    """Enable tracing when ``MEDEA_TRACE`` is set to a truthy value.

    ``MEDEA_TRACE_OUT`` names the trace output file (default
    ``medea_trace.jsonl``; a ``.mtrc`` extension selects the columnar
    container) and ``MEDEA_TRACE_SAMPLE`` attaches a sampling policy.
    Returns the installed tracer, or ``None`` when tracing is not
    requested.  Does nothing if an enabled tracer is already installed
    (idempotent under repeated calls, e.g. from both a CLI entry point and
    the benchmark harness).
    """
    env = os.environ if environ is None else environ
    flag = env.get(ENV_TRACE, "").strip().lower()
    if flag in ("", "0", "false", "no", "off"):
        return None
    if _default_tracer.enabled:
        return _default_tracer
    path = env.get(ENV_TRACE_OUT, "medea_trace.jsonl")
    return configure(
        jsonl_path=path, sample=parse_sample_spec(env.get(ENV_TRACE_SAMPLE))
    )
