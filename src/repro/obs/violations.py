"""Ground-truth constraint-violation accounting.

The paper's Fig. 9 reports "the percentage of containers that violate
constraints".  This module walks the *actual* cluster state (not scheduler
bookkeeping) and, for every placed LRA container and every active constraint
that applies to it, evaluates the constraint semantics exactly — the same
brute-force check tests use to validate the ILP encoding.

Historically this lived at ``repro.metrics.violations`` as a disconnected
side system; it now sits inside ``repro.obs`` next to the metrics registry
it records into (``repro.metrics`` remains as a deprecation shim).  The
cluster/core types only appear as annotations, so this module has no
runtime dependency on them and is safe to import from anywhere in
``repro.obs`` (the online watchdog cross-checks against it every few
heartbeats).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from .metrics import Metrics, get_metrics

if TYPE_CHECKING:  # annotation-only: keeps obs free of core/cluster imports
    from ..cluster.state import ClusterState
    from ..core.constraint_manager import ConstraintManager
    from ..core.constraints import CompoundConstraint, PlacementConstraint

__all__ = ["ViolationRecord", "ViolationReport", "evaluate_violations"]


@dataclass
class ViolationRecord:
    container_id: str
    constraint: "PlacementConstraint"
    extent: float


@dataclass
class ViolationReport:
    """Cluster-wide violation summary."""

    #: Number of LRA containers subject to >= 1 constraint.
    subject_containers: int = 0
    #: Containers with at least one violated constraint.
    violating_containers: int = 0
    #: Total violation extent (Eq. 8 units) across all records.
    total_extent: float = 0.0
    records: list[ViolationRecord] = field(default_factory=list)

    @property
    def violation_fraction(self) -> float:
        """Fraction of constrained containers in violation (Fig. 9 y-axis)."""
        if self.subject_containers == 0:
            return 0.0
        return self.violating_containers / self.subject_containers

    def record_to(self, metrics: Metrics, **labels: Any) -> None:
        """Fold this audit into a :class:`~repro.obs.metrics.Metrics`
        registry: an evaluation counter plus ``violations_containers``
        (labelled ``status=subject|violating``) and
        ``violations_total_extent`` gauges."""
        metrics.counter("violations_evaluations_total").inc(**labels)
        containers = metrics.gauge("violations_containers")
        containers.set(self.subject_containers, status="subject", **labels)
        containers.set(self.violating_containers, status="violating", **labels)
        metrics.gauge("violations_total_extent").set(self.total_extent, **labels)


def evaluate_violations(
    state: "ClusterState",
    constraints: Sequence["PlacementConstraint"] | None = None,
    manager: "ConstraintManager" | None = None,
    compound: Sequence["CompoundConstraint"] = (),
    *,
    metrics: Metrics | None = None,
) -> ViolationReport:
    """Audit the current placements against the active constraints.

    Pass either an explicit constraint list or a :class:`ConstraintManager`.
    Compound (DNF) constraints count as violated only if *every* conjunct is
    violated for the subject.

    The resulting report is also recorded into ``metrics`` (the ambient
    registry by default) — see :meth:`ViolationReport.record_to` — so
    violation accounting shares the one telemetry channel instead of living
    as a side system.
    """
    indexed_manager = None
    if constraints is None:
        if manager is None:
            raise ValueError("need constraints or a constraint manager")
        # Per-container applicability comes from the manager's subject-tag
        # index (same constraints, same order as the linear scan).
        indexed_manager = manager
        constraints = manager.active_constraints()
        compound = tuple(manager.active_compound_constraints()) or compound

    report = ViolationReport()
    for placed in state.containers.values():
        if not placed.allocation.long_running:
            continue
        tags = placed.allocation.tags
        if indexed_manager is not None:
            applicable = indexed_manager.constraints_applying_to(tags)
        else:
            applicable = [c for c in constraints if c.applies_to(tags)]
        applicable_compound = [
            comp
            for comp in compound
            if any(c.applies_to(tags) for c in comp.all_constraints())
        ]
        if not applicable and not applicable_compound:
            continue
        report.subject_containers += 1
        violated = False
        for constraint in applicable:
            ok, extent = state.check_placement(
                constraint, placed.node_id, tags, placed=True
            )
            if not ok:
                violated = True
                report.total_extent += extent
                report.records.append(
                    ViolationRecord(placed.container_id, constraint, extent)
                )
        for comp in applicable_compound:
            best_extent = None
            for conjunct in comp.conjuncts:
                conj_extent = 0.0
                conj_ok = True
                for constraint in conjunct:
                    if not constraint.applies_to(tags):
                        continue
                    ok, extent = state.check_placement(
                        constraint, placed.node_id, tags, placed=True
                    )
                    if not ok:
                        conj_ok = False
                        conj_extent += extent
                if conj_ok:
                    best_extent = 0.0
                    break
                if best_extent is None or conj_extent < best_extent:
                    best_extent = conj_extent
            if best_extent:
                violated = True
                report.total_extent += best_extent
        if violated:
            report.violating_containers += 1
    report.record_to(metrics if metrics is not None else get_metrics())
    return report
