"""Online invariant watchdogs: corruption detection at the moment of
corruption.

The trace replayer (:mod:`repro.obs.replay`) already proves, *post
mortem*, that a run's event stream is a faithful account of its state.
On a shared production cluster that is too late — a 400-node run that
silently leaks containers produces garbage for hours before anyone reads
the trace.  The :class:`Watchdog` moves those checks online: hooked into
the simulation's engine heartbeat, it re-derives the cluster's conserved
quantities from first principles every few ticks and trips the moment the
authoritative state stops agreeing with itself.

Checks (each independently intervalled; 1 = every heartbeat):

* ``node_conservation`` — per node, the free-resource vector must equal
  capacity minus the sum of its allocations, and never go negative.
* ``container_conservation`` — the cluster-wide container map and the
  union of per-node allocation maps must hold exactly the same container
  ids (a leaked container lives on a node but not in the map; a
  double-free is the reverse).
* ``violation_consistency`` — :func:`repro.obs.violations
  .evaluate_violations` must be internally consistent (violating ⊆
  subject, records ↔ counts, non-negative extent) and its evaluation
  counter monotone.
* ``fingerprint`` — :func:`repro.cluster.state.placement_fingerprint`
  recomputed from the per-node allocations must match the state's own
  digest (the same cross-check replay performs, but live).

A tripped watchdog emits a typed ``watchdog.trip`` trace event whose
``data`` payload is fully deterministic (check name, tick, structured
diagnosis naming nodes/containers), bumps ``watchdog_trips_total``, logs
an ``error`` record, and — in ``abort`` mode — raises
:class:`WatchdogError` so the run exits non-zero instead of continuing on
corrupt state.

Zero-cost when off: the simulation holds ``watchdog=None`` unless
``MEDEA_WATCHDOG`` (``1``/``warn``/``abort``) or an explicit instance
enables it, so disabled runs execute no checks and emit no events.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from .events import EventKind
from .log import RunLogger, get_run_logger
from .metrics import Metrics, get_metrics
from .trace import Tracer, get_tracer

if TYPE_CHECKING:  # annotation-only; the watchdog works on duck-typed sims
    from ..sim.cluster_sim import ClusterSimulation

__all__ = [
    "Watchdog",
    "WatchdogError",
    "WatchdogTrip",
    "CHECKS",
    "watchdog_from_env",
]

#: Environment variable read by :func:`watchdog_from_env`.
ENV_WATCHDOG = "MEDEA_WATCHDOG"

#: The check catalogue, in evaluation order.
CHECKS = (
    "node_conservation",
    "container_conservation",
    "violation_consistency",
    "fingerprint",
)

_MODES = ("warn", "abort")


class WatchdogError(RuntimeError):
    """A watchdog tripped in ``abort`` mode; the run must not continue."""

    def __init__(self, trip: "WatchdogTrip") -> None:
        super().__init__(
            f"watchdog tripped at t={trip.time}: {trip.check}: {trip.summary()}"
        )
        self.trip = trip


@dataclass
class WatchdogTrip:
    """One detected invariant violation."""

    check: str
    time: float
    #: Deterministic structured diagnosis (sorted ids, expected/actual).
    diagnosis: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        parts = [f"{key}={self.diagnosis[key]}" for key in sorted(self.diagnosis)]
        return " ".join(parts) if parts else "(no diagnosis)"

    def to_data(self) -> dict[str, Any]:
        """``watchdog.trip`` event payload (deterministic)."""
        return {"check": self.check, **self.diagnosis}


class Watchdog:
    """Online invariant monitor over a :class:`ClusterSimulation`.

    ``mode`` decides what a trip does: ``warn`` records it and keeps
    running (the trip event + log line are the alert), ``abort`` raises
    :class:`WatchdogError` after recording.  Identical consecutive
    diagnoses for a check are emitted once, so a persistent corruption
    does not flood the trace — the first trip pins the corrupting tick.
    """

    def __init__(
        self,
        *,
        mode: str = "warn",
        fingerprint_interval: int = 1,
        violations_interval: int = 5,
        tracer: Tracer | None = None,
        metrics: Metrics | None = None,
        logger: RunLogger | None = None,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"unknown watchdog mode {mode!r}; expected {_MODES}")
        if fingerprint_interval < 1 or violations_interval < 1:
            raise ValueError("check intervals must be >= 1")
        self.mode = mode
        #: Run the fingerprint self-check every N-th heartbeat.
        self.fingerprint_interval = fingerprint_interval
        #: Run the (expensive) violation audit every N-th heartbeat.
        self.violations_interval = violations_interval
        self.trips: list[WatchdogTrip] = []
        self.checks_run = 0
        self._tracer = tracer
        self._metrics = metrics
        self._logger = logger
        #: check -> last emitted diagnosis, for consecutive-trip dedup.
        self._last_diagnosis: dict[str, dict[str, Any]] = {}
        #: High-water mark of the violations evaluation counter.
        self._violation_evals = 0.0

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def metrics(self) -> Metrics:
        return self._metrics if self._metrics is not None else get_metrics()

    @property
    def logger(self) -> RunLogger:
        return self._logger if self._logger is not None else get_run_logger()

    # -- the heartbeat hook --------------------------------------------------

    def check(self, sim: "ClusterSimulation", *, now: float) -> list[WatchdogTrip]:
        """Run the due checks against ``sim`` at simulated time ``now``.

        Returns the trips detected *this call* (also appended to
        :attr:`trips`).  Raises :class:`WatchdogError` on the first trip
        when in ``abort`` mode.
        """
        self.checks_run += 1
        new_trips: list[WatchdogTrip] = []
        state = sim.state
        new_trips.extend(self._check_node_conservation(state, now))
        new_trips.extend(self._check_container_conservation(state, now))
        if self.checks_run % self.violations_interval == 0:
            new_trips.extend(self._check_violation_consistency(sim, now))
        if self.checks_run % self.fingerprint_interval == 0:
            new_trips.extend(self._check_fingerprint(state, now))
        for trip in new_trips:
            self._record(trip)
        if new_trips and self.mode == "abort":
            raise WatchdogError(new_trips[0])
        return new_trips

    # -- individual invariants ----------------------------------------------

    def _check_node_conservation(self, state, now: float) -> list[WatchdogTrip]:
        """Per-node resource accounting: free == capacity − Σ allocations,
        both components non-negative."""
        trips = []
        for node in state.topology:
            allocated_mem = 0
            allocated_vcores = 0
            container_count = 0
            for allocation in node.iter_allocations():
                allocated_mem += allocation.resource.memory_mb
                allocated_vcores += allocation.resource.vcores
                container_count += 1
            free = node.free
            capacity = node.capacity
            expected_mem = capacity.memory_mb - allocated_mem
            expected_vcores = capacity.vcores - allocated_vcores
            drift = (
                free.memory_mb != expected_mem or free.vcores != expected_vcores
            )
            negative = free.memory_mb < 0 or free.vcores < 0
            over = allocated_mem > capacity.memory_mb or (
                allocated_vcores > capacity.vcores
            )
            if drift or negative or over:
                trips.append(
                    WatchdogTrip(
                        "node_conservation",
                        now,
                        {
                            "node_id": node.node_id,
                            "containers": container_count,
                            "free_memory_mb": free.memory_mb,
                            "free_vcores": free.vcores,
                            "expected_free_memory_mb": expected_mem,
                            "expected_free_vcores": expected_vcores,
                            "negative_free": negative,
                            "over_capacity": over,
                        },
                    )
                )
        return trips

    def _check_container_conservation(self, state, now: float) -> list[WatchdogTrip]:
        """The cluster-wide container map and the union of per-node
        allocations must agree exactly (ids and hosting node)."""
        node_side: dict[str, str] = {}
        duplicated: list[str] = []
        for node in state.topology:
            for allocation in node.iter_allocations():
                if allocation.container_id in node_side:
                    duplicated.append(allocation.container_id)
                node_side[allocation.container_id] = node.node_id
        state_side = {
            container_id: placed.node_id
            for container_id, placed in state.containers.items()
        }
        if node_side == state_side and not duplicated:
            return []
        leaked = sorted(set(node_side) - set(state_side))
        missing = sorted(set(state_side) - set(node_side))
        moved = sorted(
            container_id
            for container_id in set(node_side) & set(state_side)
            if node_side[container_id] != state_side[container_id]
        )
        diagnosis: dict[str, Any] = {
            "state_containers": len(state_side),
            "node_containers": len(node_side),
        }
        if leaked:
            # On a node but unknown to the cluster map: a leak.  Name the
            # culprits and where they sit so the operator can act.
            diagnosis["leaked"] = [
                [container_id, node_side[container_id]] for container_id in leaked
            ]
        if missing:
            # In the cluster map but on no node: a double-free / lost alloc.
            diagnosis["missing"] = [
                [container_id, state_side[container_id]] for container_id in missing
            ]
        if moved:
            diagnosis["moved"] = [
                [container_id, state_side[container_id], node_side[container_id]]
                for container_id in moved
            ]
        if duplicated:
            diagnosis["duplicated"] = sorted(set(duplicated))
        return [WatchdogTrip("container_conservation", now, diagnosis)]

    def _check_violation_consistency(self, sim, now: float) -> list[WatchdogTrip]:
        """The violation auditor must agree with itself, and its evaluation
        counter must be monotone."""
        from .violations import evaluate_violations

        report = evaluate_violations(
            sim.state, manager=sim.medea.manager, metrics=self.metrics
        )
        distinct_violating = len({r.container_id for r in report.records})
        problems: dict[str, Any] = {}
        if report.violating_containers > report.subject_containers:
            problems["violating"] = report.violating_containers
            problems["subjects"] = report.subject_containers
        if report.total_extent < 0:
            problems["total_extent"] = report.total_extent
        # Compound constraints contribute to the violating count without a
        # per-record entry, so records can only undercount — never exceed.
        if distinct_violating > report.violating_containers:
            problems["record_containers"] = distinct_violating
            problems["violating"] = report.violating_containers
        evals = self.metrics.counter("violations_evaluations_total").total()
        if evals < self._violation_evals:
            problems["evaluations"] = evals
            problems["previous_evaluations"] = self._violation_evals
        self._violation_evals = max(self._violation_evals, evals)
        if not problems:
            return []
        return [WatchdogTrip("violation_consistency", now, problems)]

    def _check_fingerprint(self, state, now: float) -> list[WatchdogTrip]:
        """Recompute the placement fingerprint from the per-node allocation
        maps and compare with the state's own digest."""
        from ..cluster.state import placement_fingerprint

        node_side = {
            allocation.container_id: node.node_id
            for node in state.topology
            for allocation in node.iter_allocations()
        }
        recomputed = placement_fingerprint(node_side, state.down_node_ids())
        recorded = state.fingerprint()
        if recomputed == recorded:
            return []
        return [
            WatchdogTrip(
                "fingerprint",
                now,
                {"recorded": recorded, "recomputed": recomputed},
            )
        ]

    # -- trip plumbing -------------------------------------------------------

    def _record(self, trip: WatchdogTrip) -> None:
        if self._last_diagnosis.get(trip.check) == trip.diagnosis:
            return  # same persistent corruption; already reported
        self._last_diagnosis[trip.check] = dict(trip.diagnosis)
        self.trips.append(trip)
        self.metrics.counter("watchdog_trips_total").inc(check=trip.check)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.WATCHDOG_TRIP, time=trip.time, data=trip.to_data()
            )
        log = self.logger
        if log.enabled:
            log.error(
                "watchdog",
                f"invariant {trip.check} violated",
                tick=trip.time,
                **{k: v for k, v in trip.diagnosis.items()},
            )


def watchdog_from_env(
    environ: Mapping[str, str] | None = None, **kwargs: Any
) -> Watchdog | None:
    """Build a watchdog when ``MEDEA_WATCHDOG`` requests one.

    ``1``/``true``/``on``/``warn`` → warn mode; ``abort`` → abort mode;
    unset/falsy → ``None`` (the zero-cost default).  Extra ``kwargs`` pass
    through to :class:`Watchdog`.
    """
    env = os.environ if environ is None else environ
    flag = env.get(ENV_WATCHDOG, "").strip().lower()
    if flag in ("", "0", "false", "no", "off"):
        return None
    mode = "abort" if flag == "abort" else "warn"
    return Watchdog(mode=mode, **kwargs)
