"""Placement → performance model (substitute for real workload execution)."""

from __future__ import annotations

from .features import PlacementFeatures, extract_features
from .interference import (
    ITERATIVE_PARAMS,
    SERVING_PARAMS,
    PerfParams,
    iterative_runtime,
    serving_runtime,
    serving_throughput,
    tail_latency_factor,
    worker_slowdowns,
)
from .latency import LatencyModel, lookup_distance_classes, sample_lookup_latencies

__all__ = [
    "PlacementFeatures",
    "extract_features",
    "ITERATIVE_PARAMS",
    "SERVING_PARAMS",
    "PerfParams",
    "iterative_runtime",
    "serving_runtime",
    "serving_throughput",
    "tail_latency_factor",
    "worker_slowdowns",
    "LatencyModel",
    "lookup_distance_classes",
    "sample_lookup_latencies",
]
