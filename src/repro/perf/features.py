"""Placement feature extraction.

The performance model consumes *placement features* — per-node collocation
counts, node/rack span, and external load on the hosting nodes — computed
from the live cluster state for one application's worker containers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..cluster.state import ClusterState

__all__ = ["PlacementFeatures", "extract_features"]


@dataclass(frozen=True)
class PlacementFeatures:
    """What the performance model needs to know about one app's placement."""

    app_id: str
    #: node id -> number of this app's matching workers on that node.
    workers_per_node: Mapping[str, int]
    #: node id -> number of matching workers of ANY app (same worker tag).
    class_workers_per_node: Mapping[str, int]
    #: node id -> memory utilisation due to other apps' containers.
    external_util: Mapping[str, float]
    distinct_nodes: int
    distinct_racks: int
    total_workers: int
    #: cluster-wide memory utilisation (network-congestion proxy).
    cluster_util: float

    def max_collocation(self) -> int:
        return max(self.class_workers_per_node.values(), default=0)


def extract_features(
    state: ClusterState, app_id: str, worker_tag: str
) -> PlacementFeatures:
    """Compute features for ``app_id``'s containers tagged ``worker_tag``.

    ``class_workers_per_node`` counts *all* containers with the worker tag on
    the app's nodes (interference is caused by any collocated worker of the
    same class, matching the paper's inter-application cardinality
    constraints).
    """
    workers_per_node: dict[str, int] = {}
    for placed in state.containers_of_app(app_id):
        if worker_tag not in placed.allocation.tags:
            continue
        workers_per_node[placed.node_id] = workers_per_node.get(placed.node_id, 0) + 1

    class_counts: dict[str, int] = {}
    external: dict[str, float] = {}
    racks: set[str] = set()
    for node_id in workers_per_node:
        node = state.topology.node(node_id)
        racks.add(node.rack)
        class_count = 0
        foreign_mem = 0
        for allocation in node.allocations.values():
            if worker_tag in allocation.tags:
                class_count += 1
            if allocation.app_id != app_id:
                foreign_mem += allocation.resource.memory_mb
        class_counts[node_id] = class_count
        external[node_id] = (
            foreign_mem / node.capacity.memory_mb if node.capacity.memory_mb else 0.0
        )

    return PlacementFeatures(
        app_id=app_id,
        workers_per_node=workers_per_node,
        class_workers_per_node=class_counts,
        external_util=external,
        distinct_nodes=len(workers_per_node),
        distinct_racks=len(racks),
        total_workers=sum(workers_per_node.values()),
        cluster_util=state.cluster_memory_utilization(),
    )
