"""Interference / locality performance model.

This stands in for running real HBase, TensorFlow and Storm workloads (see
DESIGN.md §1).  It maps a placement to runtime or throughput through three
effects, each anchored to a finding in the paper:

1. **Self/class interference** — collocated workers of the same class
   compete for CPU caches, memory bandwidth and I/O, resources *not managed
   by the OS kernel* (§2.2, anti-affinity study).  Mild and linear while the
   per-node worker count is small; superlinear once it exceeds the node's
   core budget.
2. **External interference** — batch containers on the same node slow a
   worker in proportion to the node memory they occupy.
3. **Communication cost** — spreading workers over more nodes costs network
   time, and the cost inflates with cluster utilisation (congested fabric):
   this is why the optimal cardinality in Fig. 2c/2d *shifts up* in the
   highly-utilised cluster.

``cgroups=True`` multiplies the interference terms (not the communication
term) by ``isolation_factor``, reproducing the §2.2 observation that cgroups
recover ~20% of the loss but cannot match anti-affinity.

Calibration targets (paper numbers these constants were tuned to):

* Fig. 2d, high-utilised: runtime(card 16) ≈ 0.58×runtime(32) ≈ 0.66×runtime(1);
  optimal cardinality 16 (high util) vs 4 (low util).
* Fig. 2b: no-constraints ≈ 34% lower YCSB throughput than anti-affinity;
  cgroups recover ~20%; p99 latency up to ~3.9× worse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .features import PlacementFeatures

__all__ = ["PerfParams", "ITERATIVE_PARAMS", "SERVING_PARAMS",
           "worker_slowdowns", "iterative_runtime", "serving_throughput",
           "serving_runtime", "tail_latency_factor"]


@dataclass(frozen=True)
class PerfParams:
    """Coefficients of the interference/locality model."""

    #: Linear per-collocated-worker slowdown (cache/membw contention).
    collocation_linear: float = 0.012
    #: Superlinear penalty once collocated workers exceed the core budget.
    collocation_steep: float = 0.02
    #: Node core budget before the steep regime kicks in.
    core_budget: int = 16
    #: Slowdown per unit of external (other-app) memory utilisation.
    external: float = 0.25
    #: Communication cost coefficient (fraction of base runtime when fully
    #: spread: one worker per node).
    comm: float = 0.30
    #: How strongly cluster utilisation congests the network.
    congestion: float = 3.0
    #: Residual interference under cgroups isolation.
    isolation_factor: float = 0.45
    #: Exponent mapping mean slowdown to tail-latency inflation.
    tail_exponent: float = 3.3


#: Iterative, straggler-bound apps (TensorFlow-style).
ITERATIVE_PARAMS = PerfParams()

#: Serving / I/O-bound apps (HBase-style): collocation hits disks and is
#: linearly brutal; communication matters less (client-facing traffic).
SERVING_PARAMS = PerfParams(
    collocation_linear=0.25,
    collocation_steep=0.02,
    core_budget=16,
    external=0.35,
    comm=0.05,
    congestion=2.0,
)


def worker_slowdowns(
    features: PlacementFeatures,
    params: PerfParams,
    *,
    cgroups: bool = False,
) -> list[float]:
    """Per-worker slowdown factors (>= 1), one entry per worker container."""
    iso = params.isolation_factor if cgroups else 1.0
    slowdowns: list[float] = []
    for node_id, own in features.workers_per_node.items():
        collocated = features.class_workers_per_node.get(node_id, own)
        linear = params.collocation_linear * max(0, collocated - 1)
        over = max(0, collocated - params.core_budget)
        steep = params.collocation_steep * over ** 1.5
        ext = params.external * features.external_util.get(node_id, 0.0)
        slowdown = 1.0 + iso * (linear + steep + ext)
        slowdowns.extend([slowdown] * own)
    return slowdowns or [1.0]


def _comm_factor(features: PlacementFeatures, params: PerfParams) -> float:
    """Additive communication cost (fraction of base runtime)."""
    if features.total_workers <= 1:
        return 0.0
    spread = (features.distinct_nodes - 1) / features.total_workers
    rack_spread = 0.25 * max(0, features.distinct_racks - 1)
    congestion = 1.0 + params.congestion * features.cluster_util
    return params.comm * (spread + rack_spread) * congestion


def iterative_runtime(
    base_runtime: float,
    features: PlacementFeatures,
    params: PerfParams = ITERATIVE_PARAMS,
    *,
    cgroups: bool = False,
) -> float:
    """Runtime of a straggler-bound iterative job (every iteration waits for
    the slowest worker, then pays the synchronisation cost)."""
    slowdowns = worker_slowdowns(features, params, cgroups=cgroups)
    return base_runtime * (max(slowdowns) + _comm_factor(features, params))


def serving_throughput(
    base_throughput: float,
    features: PlacementFeatures,
    params: PerfParams = SERVING_PARAMS,
    *,
    cgroups: bool = False,
) -> float:
    """Aggregate throughput of a serving app: workers contribute equally and
    each is derated by its slowdown; spread costs a small routing factor."""
    slowdowns = worker_slowdowns(features, params, cgroups=cgroups)
    per_worker = base_throughput / len(slowdowns)
    comm = 1.0 + _comm_factor(features, params)
    return sum(per_worker / s for s in slowdowns) / comm


def serving_runtime(
    base_runtime: float,
    features: PlacementFeatures,
    params: PerfParams = SERVING_PARAMS,
    *,
    cgroups: bool = False,
) -> float:
    """Time to push a fixed amount of work through a serving app — inverse
    of throughput, normalised so a perfect placement takes ``base_runtime``."""
    ideal = base_runtime  # throughput model already normalises per worker
    slowdowns = worker_slowdowns(features, params, cgroups=cgroups)
    mean_inverse = sum(1.0 / s for s in slowdowns) / len(slowdowns)
    comm = 1.0 + _comm_factor(features, params)
    return ideal * comm / mean_inverse


def tail_latency_factor(
    features: PlacementFeatures,
    params: PerfParams = SERVING_PARAMS,
    *,
    cgroups: bool = False,
) -> float:
    """p99 latency inflation relative to an interference-free placement.

    Queueing tails grow much faster than means; we model the p99 as the mean
    slowdown raised to ``tail_exponent`` (calibrated to the paper's "up to
    3.9× for the 99th percentile").
    """
    slowdowns = worker_slowdowns(features, params, cgroups=cgroups)
    mean = sum(slowdowns) / len(slowdowns)
    return mean ** params.tail_exponent
