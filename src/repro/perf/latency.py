"""Request-latency model for the Storm + Memcached affinity study (Fig. 2a).

A Storm supervisor's Memcached lookup latency is dominated by the network
distance between the supervisor and the Memcached container, amplified by
queueing noise.  Distances (same node / same rack / cross rack) come from
the *actual* placement; the latency for each class is sampled from a
lognormal whose mean reproduces the paper's ratios:

* intra-inter (same node)   — mean ≈ 30 ms
* intra-only  (same rack)   — mean ≈ 140 ms (≈ 4.6× the intra-inter mean)
* no constraints (cross rack / mixed) — mean ≈ 230 ms

End-to-end topology latency additionally benefits from supervisor
collocation (intra-application affinity): 31% improvement for intra-only
over no-constraints, 5× for intra-inter over intra-only (§2.2).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from ..cluster.state import ClusterState

__all__ = ["LatencyModel", "lookup_distance_classes", "sample_lookup_latencies"]

#: Lognormal location parameters per distance class (means ~30/140/230 ms).
_CLASS_MU = {"node": math.log(25.0), "rack": math.log(115.0), "remote": math.log(190.0)}
_CLASS_SIGMA = {"node": 0.6, "rack": 0.6, "remote": 0.7}


@dataclass(frozen=True)
class LatencyModel:
    """Sampling configuration for lookup latencies."""

    samples_per_pair: int = 200
    seed: int = 7


def lookup_distance_classes(
    state: ClusterState, storm_app_id: str, memcached_app_id: str
) -> list[str]:
    """Distance class (``node`` / ``rack`` / ``remote``) of each
    (supervisor, memcached) pair in the current placement."""
    storm_nodes = [
        placed.node_id for placed in state.containers_of_app(storm_app_id)
    ]
    mem_nodes = [
        placed.node_id for placed in state.containers_of_app(memcached_app_id)
    ]
    if not storm_nodes or not mem_nodes:
        raise ValueError("both applications must be placed before measuring")
    classes = []
    for s_node in storm_nodes:
        for m_node in mem_nodes:
            if s_node == m_node:
                classes.append("node")
            elif state.topology.node(s_node).rack == state.topology.node(m_node).rack:
                classes.append("rack")
            else:
                classes.append("remote")
    return classes


def sample_lookup_latencies(
    distance_classes: Sequence[str], model: LatencyModel = LatencyModel()
) -> list[float]:
    """Sampled lookup latencies (ms) for the given pair distance classes."""
    rng = random.Random(model.seed)
    samples: list[float] = []
    for cls in distance_classes:
        mu, sigma = _CLASS_MU[cls], _CLASS_SIGMA[cls]
        for _ in range(model.samples_per_pair):
            samples.append(rng.lognormvariate(mu, sigma))
    return samples
