"""ASCII table / series renderers shared by the benchmark harness.

Every benchmark prints the rows or series the corresponding paper artefact
reports, through these helpers, so output stays uniform and grep-able.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["render_table", "render_series", "render_cdf_summary", "banner"]


def banner(title: str) -> str:
    line = "=" * max(60, len(title) + 4)
    return f"\n{line}\n  {title}\n{line}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as a fixed-width ASCII table."""
    text_rows = [list(headers)]
    for row in rows:
        text_rows.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(text_rows[r][c]) for r in range(len(text_rows)))
        for c in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(text_rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
        if index == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    float_format: str = "{:.2f}",
) -> str:
    """Render one x-axis and several named series as columns (one figure
    line per column)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [s[i] for s in series.values()])
    return render_table(headers, rows, float_format=float_format)


def render_cdf_summary(
    name: str, values: Sequence[float], *, unit: str = ""
) -> str:
    """Percentile summary of a distribution (compact CDF stand-in)."""
    from .obs.stats import percentile

    if not values:
        return f"{name}: (empty)"
    points = [5, 25, 50, 75, 95, 99, 100]
    parts = ", ".join(f"p{p}={percentile(values, p):.2f}{unit}" for p in points)
    return f"{name}: {parts}"
