"""Discrete-event cluster simulation."""

from __future__ import annotations

from .cluster_sim import ClusterSimulation, SimConfig
from .engine import SimulationEngine

__all__ = ["ClusterSimulation", "SimConfig", "SimulationEngine"]
