"""Cluster simulation: Medea running against simulated machines.

Wires the discrete-event engine to the Medea facade: periodic node
heartbeats drive the task-based scheduler, periodic scheduling cycles drive
the LRA scheduler, task containers complete after their duration, and LRAs
optionally tear down.  Machine unavailability traces can be replayed to take
nodes down and up (used by the resilience experiments).

A :class:`~repro.obs.Tracer` (explicit, or the ambient one) threads through
every layer: the engine stamps ``engine.dispatch`` events, the facade the
LRA lifecycle, and the simulation itself emits ``sim.heartbeat``,
``sim.state_hash`` (the per-tick placement fingerprint + utilisation
aggregates the replayer and timeline consume), ``task.finish`` and
``sim.node_availability`` transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..cluster.state import ClusterState
from ..cluster.topology import ClusterTopology
from ..core.medea import MedeaScheduler
from ..core.requests import LRARequest, TaskRequest
from ..core.scheduler import LRAScheduler
from ..obs.events import EventKind
from ..obs.log import get_run_logger
from ..obs.metrics import Metrics, get_metrics
from ..obs.spans import span
from ..obs.trace import Tracer, get_tracer
from ..obs.watchdog import Watchdog, watchdog_from_env
from ..taskscheduler.base import TaskBasedScheduler
from ..taskscheduler.capacity import CapacityScheduler
from .engine import PeriodicHandle, SimulationEngine

__all__ = ["ClusterSimulation", "SimConfig"]


@dataclass(frozen=True)
class SimConfig:
    """Timing and scale knobs for a simulation run."""

    scheduling_interval_s: float = 10.0
    heartbeat_interval_s: float = 1.0
    #: Hard stop for periodic activity; ``run()`` may stop earlier.
    horizon_s: float = 3600.0
    #: Event-engine mode for the periodic series.  ``"periodic"`` fires
    #: heartbeats and scheduling cycles every interval until the horizon;
    #: ``"ondemand"`` suspends a series while it has no work (no queued
    #: tasks / no pending LRAs) and resumes it — on the same time grid —
    #: when work arrives, so idle heartbeats cost nothing.  Watchdog and
    #: tracing hooks ride the ticks that actually fire.
    engine: str = "periodic"
    #: Cluster-state backend (``"object"`` | ``"array"``); ``None`` defers
    #: to ``MEDEA_STATE_BACKEND`` / the default.
    backend: str | None = None
    #: Free-memory bucket width (MB) for the candidate index; ``None``
    #: defers to ``MEDEA_INDEX_BUCKET_MB`` / the default.
    index_bucket_mb: int | None = None

    def __post_init__(self) -> None:
        if self.engine not in ("periodic", "ondemand"):
            raise ValueError(
                f"unknown engine mode {self.engine!r} "
                "(choose 'periodic' or 'ondemand')"
            )


class _OnDemandSeries:
    """A periodic series that skips the work of ticks with no demand.

    Duck-types :class:`~repro.sim.engine.PeriodicHandle` (``cancel()``,
    ``cancelled``, ``fired``, ``active``).  The series stays *scheduled*
    exactly like an uninterrupted ``schedule_periodic`` series — every
    grid tick ``k * interval`` dispatches, and tick ``k+1``'s event is
    created during tick ``k``'s dispatch.  Keeping the event-creation
    points identical is what makes on-demand mode byte-equivalent to the
    periodic engine: at equal timestamps the heap breaks ties by creation
    sequence, so a tick resumed any other way (e.g. scheduled lazily when
    work arrives) can invert its order against same-time events such as
    task completions, and placements diverge.

    What *is* skipped is the callback: when ``demand()`` is false the tick
    reduces to one heap operation and a counter check — no span, no state
    fingerprint, no watchdog sweep.  Those per-tick costs, not the heap,
    are what dominate idle time at 10k nodes.  ``fired`` counts only the
    ticks that ran the callback; ``ticks`` counts every grid point.
    """

    __slots__ = (
        "_engine", "_interval", "_until", "_callback", "_demand",
        "cancelled", "fired", "ticks", "_event",
    )

    def __init__(
        self,
        engine: SimulationEngine,
        interval: float,
        callback: Callable[[SimulationEngine], None],
        *,
        demand: Callable[[], bool],
        until: float | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._engine = engine
        self._interval = interval
        self._until = until
        self._callback = callback
        self._demand = demand
        self.cancelled = False
        #: Ticks whose callback actually ran (PeriodicHandle protocol).
        self.fired = 0
        #: Grid ticks dispatched, including skipped ones.
        self.ticks = 0
        self._event = None
        if until is None or interval <= until:
            self._event = engine.schedule_at(interval, self._tick)

    def _tick(self, engine: SimulationEngine) -> None:
        self._event = None
        if self.cancelled:
            return
        self.ticks += 1
        if self._demand():
            self.fired += 1
            self._callback(engine)
        next_time = (self.ticks + 1) * self._interval
        if not self.cancelled and (self._until is None or next_time <= self._until):
            self._event = engine.schedule_at(next_time, self._tick)

    def cancel(self) -> None:
        self.cancelled = True
        if self._event is not None:
            self._event.cancelled = True
            self._event = None

    @property
    def active(self) -> bool:
        return not self.cancelled and self._event is not None


class ClusterSimulation:
    """One simulated cluster with a Medea scheduler on top."""

    def __init__(
        self,
        topology: ClusterTopology,
        lra_scheduler: LRAScheduler,
        *,
        task_scheduler: TaskBasedScheduler | None = None,
        config: SimConfig | None = None,
        ilp_all: bool = False,
        tracer: Tracer | None = None,
        metrics: Metrics | None = None,
        watchdog: Watchdog | None = None,
    ) -> None:
        self.config = config or SimConfig()
        self.state = ClusterState(
            topology,
            backend=self.config.backend,
            index_bucket_mb=self.config.index_bucket_mb,
        )
        self._tracer = tracer
        self._metrics = metrics
        self.task_scheduler = task_scheduler or CapacityScheduler(
            self.state, tracer=tracer, metrics=metrics
        )
        if self.task_scheduler.state is not self.state:
            raise ValueError("task scheduler must be built on the simulation state")
        self.medea = MedeaScheduler(
            self.state,
            lra_scheduler,
            self.task_scheduler,
            scheduling_interval_s=self.config.scheduling_interval_s,
            ilp_all=ilp_all,
            tracer=tracer,
            metrics=metrics,
        )
        self.engine = SimulationEngine(tracer=tracer)
        self._task_durations: dict[str, float] = {}
        self._lra_durations: dict[str, float] = {}
        #: Observers called after every LRA scheduling cycle with (sim, result).
        self.cycle_observers: list[Callable] = []
        #: Cancellable handles for the heartbeat and cycle series.
        self.heartbeat_handle: PeriodicHandle | None = None
        self.cycle_handle: PeriodicHandle | None = None
        #: Online invariant monitor; ``None`` (the default, unless
        #: ``MEDEA_WATCHDOG`` asks for one) keeps the hot path check-free.
        self.watchdog = watchdog if watchdog is not None else watchdog_from_env()
        self._install_periodic_activity()

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def metrics(self) -> Metrics:
        return self._metrics if self._metrics is not None else get_metrics()

    # -- periodic machinery ------------------------------------------------------

    def _install_periodic_activity(self) -> None:
        if self.config.engine == "ondemand":
            # Same install order as the periodic branch below so the first
            # ticks carry the same sequence numbers (observable when both
            # series share a timestamp).
            self.heartbeat_handle = _OnDemandSeries(
                self.engine,
                self.config.heartbeat_interval_s,
                self._heartbeat_tick,
                demand=lambda: self.task_scheduler.pending_tasks() > 0,
                until=self.config.horizon_s,
            )
            self.cycle_handle = _OnDemandSeries(
                self.engine,
                self.config.scheduling_interval_s,
                self._cycle_tick,
                demand=lambda: self.medea.pending_lras() > 0,
                until=self.config.horizon_s,
            )
            return
        self.heartbeat_handle = self.engine.schedule_periodic(
            self.config.heartbeat_interval_s,
            self._heartbeat_tick,
            until=self.config.horizon_s,
        )
        self.cycle_handle = self.engine.schedule_periodic(
            self.config.scheduling_interval_s,
            self._cycle_tick,
            until=self.config.horizon_s,
        )

    def stop_periodic_activity(self) -> None:
        """Cancel the heartbeat and scheduling-cycle series (teardown)."""
        if self.heartbeat_handle is not None:
            self.heartbeat_handle.cancel()
        if self.cycle_handle is not None:
            self.cycle_handle.cancel()

    def _heartbeat_tick(self, engine: SimulationEngine) -> None:
        with span("sim.heartbeat", tracer=self.tracer, time=engine.now):
            self._heartbeat_tick_impl(engine)

    def _heartbeat_tick_impl(self, engine: SimulationEngine) -> None:
        allocations = self.medea.heartbeat_all(engine.now)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.SIM_HEARTBEAT,
                time=engine.now,
                data={"allocations": len(allocations)},
            )
            tracer.emit(
                EventKind.SIM_STATE_HASH,
                time=engine.now,
                data=self._state_hash_data(),
            )
        for allocation in allocations:
            duration = self._task_durations.pop(allocation.task_id, None)
            if duration is not None:
                engine.schedule_in(
                    duration,
                    lambda _e, tid=allocation.task_id: self._finish_task(tid),
                )
        # Online invariant checks ride the same heartbeat that drives the
        # task scheduler: corruption is caught at the tick it happens, not
        # in a post-mortem replay.
        if self.watchdog is not None:
            self.watchdog.check(self, now=engine.now)

    def _cycle_tick(self, engine: SimulationEngine) -> None:
        with span("sim.cycle", tracer=self.tracer, time=engine.now):
            self._cycle_tick_impl(engine)

    def _cycle_tick_impl(self, engine: SimulationEngine) -> None:
        result = self.medea.run_cycle(now=engine.now)
        for placement in result.placements:
            app_id = placement.app_id
            duration = self._lra_durations.get(app_id)
            if duration is not None:
                # Schedule teardown once per app (pop marks it scheduled).
                self._lra_durations.pop(app_id)
                engine.schedule_in(
                    duration, lambda _e, a=app_id: self._finish_lra(a)
                )
        for observer in self.cycle_observers:
            observer(self, result)

    def _state_hash_data(self) -> dict:
        """Deterministic payload of one ``sim.state_hash`` event: the
        placement-map fingerprint the replayer cross-checks, plus the
        utilisation / queue-depth aggregates the timeline buckets."""
        state = self.state
        down = state.down_node_ids()
        return {
            "hash": state.fingerprint(),
            "containers": len(state.containers),
            "utilization": round(state.cluster_memory_utilization(), 6),
            "utilization_by_rack": {
                rack: round(util, 6)
                for rack, util in state.rack_memory_utilization().items()
            },
            "pending_tasks": self.task_scheduler.pending_tasks(),
            "pending_lras": self.medea.pending_lras(),
            "nodes_down": len(down),
        }

    def _finish_task(self, task_id: str) -> None:
        # The task may already be gone if the run was torn down.
        if task_id in self.state.containers:
            self.task_scheduler.release_task(task_id, now=self.engine.now)
            tracer = self.tracer
            if tracer.enabled and tracer.wants(EventKind.TASK_FINISH, task_id):
                tracer.emit(
                    EventKind.TASK_FINISH,
                    time=self.engine.now,
                    data={"task_id": task_id},
                )

    def _finish_lra(self, app_id: str) -> None:
        self.medea.complete_lra(app_id, now=self.engine.now)

    # -- submissions ------------------------------------------------------------------

    def submit_lra(
        self, request: LRARequest, *, at: float = 0.0, duration_s: float | None = None
    ) -> None:
        if duration_s is not None:
            self._lra_durations[request.app_id] = duration_s
        self.engine.schedule_at(
            at, lambda engine, r=request: self.medea.submit_lra(r, now=engine.now)
        )

    def submit_task(self, task: TaskRequest, *, at: float = 0.0) -> None:
        self._task_durations[task.task_id] = task.duration_s
        self.engine.schedule_at(
            at, lambda engine, t=task: self.medea.submit_task(t, now=engine.now)
        )

    def submit_task_now(self, task: TaskRequest) -> None:
        """Submit a task at the current simulated time, from *inside* an
        engine callback.  Streaming arrival generators at scale use this
        (one callback submits a whole batch) instead of pre-scheduling one
        event per task, which would hold the entire workload in the heap."""
        self._task_durations[task.task_id] = task.duration_s
        self.medea.submit_task(task, now=self.engine.now)

    def set_node_availability(self, node_id: str, up: bool, *, at: float) -> None:
        """Replay one unavailability transition from a failure trace."""

        def flip(engine: SimulationEngine) -> None:
            self.state.topology.node(node_id).available = up
            log = get_run_logger()
            if log.enabled:
                log.info(
                    "sim", "node availability flip", tick=engine.now,
                    node=node_id, up=up,
                )
            tracer = self.tracer
            if tracer.enabled:
                tracer.emit(
                    EventKind.NODE_AVAILABILITY,
                    time=engine.now,
                    data={"node_id": node_id, "up": up},
                )
            self.metrics.counter("sim_node_transitions_total").inc(
                direction="up" if up else "down"
            )

        self.engine.schedule_at(at, flip)

    # -- running ---------------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        return self.engine.run(until if until is not None else self.config.horizon_s)

    # -- convenience metrics ------------------------------------------------------------

    def task_latencies(self) -> list[float]:
        return [a.latency_s for a in self.task_scheduler.completed_allocations]

    def lra_latencies(self) -> list[float]:
        return self.medea.placed_lra_latencies()
