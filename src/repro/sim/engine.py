"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are (time, sequence) ordered,
callbacks receive the engine so they can schedule follow-ups.  This is the
substrate standing in for the paper's simulator, which "executes Medea with
simulated machines, merely ignoring RPCs and task execution" (§7.1).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["SimulationEngine"]

Callback = Callable[["SimulationEngine"], None]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class SimulationEngine:
    """Deterministic single-threaded event loop with a simulated clock."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self._running = False

    def schedule_at(self, time: float, callback: Callback) -> _Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        event = _Event(time, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: float, callback: Callback) -> _Event:
        """Schedule ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self.now + delay, callback)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callback,
        *,
        start: float | None = None,
        until: float | None = None,
    ) -> None:
        """Invoke ``callback`` every ``interval`` seconds until ``until``."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        first = self.now + interval if start is None else start

        def tick(engine: "SimulationEngine") -> None:
            callback(engine)
            next_time = engine.now + interval
            if until is None or next_time <= until:
                engine.schedule_at(next_time, tick)

        if until is None or first <= until:
            self.schedule_at(first, tick)

    def cancel(self, event: _Event) -> None:
        event.cancelled = True

    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    def run(self, until: float | None = None) -> float:
        """Drain events (optionally up to simulated time ``until``); returns
        the final clock value."""
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self.now = event.time
                event.callback(self)
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
        return self.now

    def step(self) -> bool:
        """Process exactly one event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback(self)
            return True
        return False
