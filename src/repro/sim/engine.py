"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are (time, sequence) ordered,
callbacks receive the engine so they can schedule follow-ups.  This is the
substrate standing in for the paper's simulator, which "executes Medea with
simulated machines, merely ignoring RPCs and task execution" (§7.1).

Observability: when built with an enabled :class:`~repro.obs.Tracer` (or
when the ambient default tracer is enabled), the engine emits one
``engine.dispatch`` event per callback invocation, carrying the simulated
time, the dispatch sequence number, and the callback's qualified name —
the uniform, replayable event feed trace-driven analyses consume.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..obs.events import EventKind
from ..obs.log import get_run_logger
from ..obs.spans import span
from ..obs.trace import Tracer, get_tracer

__all__ = ["SimulationEngine", "PeriodicHandle"]

Callback = Callable[["SimulationEngine"], None]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class PeriodicHandle:
    """Cancellable handle for a :meth:`SimulationEngine.schedule_periodic`
    series.

    Unlike the one-shot ``schedule_at`` / ``schedule_in`` events, a periodic
    callback reschedules itself, so cancelling any single underlying event
    is not enough — this handle tracks the *current* pending event and stops
    the series as a whole.  Accepted by :meth:`SimulationEngine.cancel`.
    """

    __slots__ = ("_event", "cancelled", "fired")

    def __init__(self) -> None:
        self._event: _Event | None = None
        self.cancelled = False
        #: Number of times the periodic callback has run.
        self.fired = 0

    def cancel(self) -> None:
        """Stop the series: the pending tick (if any) will not fire and no
        further ticks are scheduled."""
        self.cancelled = True
        if self._event is not None:
            self._event.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled and self._event is not None


class SimulationEngine:
    """Deterministic single-threaded event loop with a simulated clock."""

    def __init__(self, *, tracer: Tracer | None = None) -> None:
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self._running = False
        #: Explicit tracer; ``None`` falls back to the ambient default.
        self._tracer = tracer

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def schedule_at(self, time: float, callback: Callback) -> _Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        event = _Event(time, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: float, callback: Callback) -> _Event:
        """Schedule ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self.now + delay, callback)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callback,
        *,
        start: float | None = None,
        until: float | None = None,
    ) -> PeriodicHandle:
        """Invoke ``callback`` every ``interval`` seconds until ``until``.

        Returns a :class:`PeriodicHandle` so the series can be torn down
        (e.g. stopping heartbeats when a simulation drains early) — like
        ``schedule_at`` / ``schedule_in``, what was scheduled can be
        cancelled, either via ``handle.cancel()`` or :meth:`cancel`.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        first = self.now + interval if start is None else start
        handle = PeriodicHandle()

        def tick(engine: "SimulationEngine") -> None:
            handle._event = None
            if handle.cancelled:
                return
            handle.fired += 1
            callback(engine)
            # Multiplicative grid (first + k*interval), not an additive
            # now+interval recurrence: tick times are a pure function of
            # the fire count, so no float drift accumulates and suspended
            # series (the on-demand engine mode) resume onto the exact
            # timestamps an uninterrupted series would have used.
            next_time = first + handle.fired * interval
            if not handle.cancelled and (until is None or next_time <= until):
                handle._event = engine.schedule_at(next_time, tick)

        if until is None or first <= until:
            handle._event = self.schedule_at(first, tick)
        return handle

    def cancel(self, event: _Event | PeriodicHandle) -> None:
        """Cancel a pending one-shot event or a whole periodic series."""
        if isinstance(event, PeriodicHandle):
            event.cancel()
        else:
            event.cancelled = True

    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    def _dispatch(self, event: _Event, traced: bool | None = None) -> None:
        self.now = event.time
        tracer = self.tracer
        # ``traced`` is the run-level latch (see ``Tracer.kind_enabled``):
        # the dispatch stream is the densest in the system, so a rate-0
        # sampling policy must cost one bool check here, not a call.
        if traced is None:
            traced = tracer.enabled and tracer.kind_enabled(
                EventKind.ENGINE_DISPATCH
            )
        if traced:
            tracer.emit(
                EventKind.ENGINE_DISPATCH,
                time=event.time,
                data={
                    "event_seq": event.seq,
                    "callback": getattr(
                        event.callback, "__qualname__", type(event.callback).__name__
                    ),
                    # O(1) depth of the event queue at dispatch (includes
                    # cancelled-but-unpopped events); feeds the timeline's
                    # engine backlog series.
                    "queued": len(self._queue),
                },
            )
        event.callback(self)

    def run(self, until: float | None = None) -> float:
        """Drain events (optionally up to simulated time ``until``); returns
        the final clock value.

        Traced as an ``engine.run`` span, the root of the simulation's span
        tree: heartbeat / cycle / solver phases all nest inside it, and its
        self time is the loop's own dispatch overhead.
        """
        log = get_run_logger()
        if log.enabled:
            log.info(
                "engine", "run start", tick=self.now,
                until=until, pending=self.pending(),
            )
        with span("engine.run", tracer=self.tracer, time=self.now):
            final = self._run(until)
        if log.enabled:
            log.info("engine", "run end", tick=final, pending=self.pending())
        return final

    def _run(self, until: float | None) -> float:
        self._running = True
        tracer = self.tracer
        traced = tracer.enabled and tracer.kind_enabled(EventKind.ENGINE_DISPATCH)
        try:
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._dispatch(event, traced)
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
        return self.now

    def step(self) -> bool:
        """Process exactly one event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._dispatch(event)
            return True
        return False
