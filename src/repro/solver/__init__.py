"""MILP solving infrastructure (CPLEX substitute).

Public entry point::

    from repro.solver import MilpModel, Sense, solve
    model = MilpModel(Sense.MAXIMIZE)
    x = model.add_binary("x")
    model.add_objective_term(x, 3.0)
    solution = solve(model)              # HiGHS backend (default)
    solution = solve(model, backend="bnb")  # from-scratch branch & bound
"""

from __future__ import annotations

import warnings

from .branch_and_bound import BnBOptions, solve_branch_and_bound
from .highs import HighsOptions, solve_highs
from .model import INF, MilpModel, MilpSolution, Sense, SolveStatus
from .presolve import PresolveResult, StandardForm, presolve, standard_form

__all__ = [
    "INF",
    "MilpModel",
    "MilpSolution",
    "Sense",
    "SolverStats",
    "SolveStatus",
    "BnBOptions",
    "HighsOptions",
    "PresolveResult",
    "StandardForm",
    "presolve",
    "standard_form",
    "solve",
    "solve_branch_and_bound",
    "solve_highs",
]

def __getattr__(name: str):
    # Deprecation alias: SolverStats moved to the unified observability
    # layer.  Kept importable from here so the PR-1 plumbing keeps working.
    if name == "SolverStats":
        warnings.warn(
            "repro.solver.SolverStats has moved to repro.obs.SolverStats; "
            "update imports (the alias will be removed in a future release)",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..obs.metrics import SolverStats

        return SolverStats
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


_BACKENDS = {
    "highs": lambda model, options: solve_highs(model, options),
    "bnb": lambda model, options: solve_branch_and_bound(model, options),
}


def solve(
    model: MilpModel,
    backend: str = "highs",
    options: HighsOptions | BnBOptions | None = None,
) -> MilpSolution:
    """Solve ``model`` with the named backend (``highs`` or ``bnb``)."""
    try:
        runner = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {sorted(_BACKENDS)}"
        ) from None
    return runner(model, options)
