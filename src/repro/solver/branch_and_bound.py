"""From-scratch branch-and-bound MILP solver.

The paper's implementation calls CPLEX; we substitute an exact solver built
on LP relaxations (SciPy's HiGHS ``linprog``) with best-first
branch-and-bound.  It is deliberately simple — most-fractional branching, no
cuts — but exact within tolerances, which lets tests cross-validate the
HiGHS MILP backend and vice versa.

Internally everything is converted to *minimisation*; results are reported
back in the model's declared sense.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .model import INF, MilpModel, MilpSolution, Sense, SolveStatus

__all__ = ["solve_branch_and_bound", "BnBOptions"]

_INT_TOL = 1e-6


@dataclass(frozen=True)
class BnBOptions:
    """Termination and search knobs for the branch-and-bound solver."""

    max_nodes: int = 200_000
    time_limit_s: float = 120.0
    #: Stop when the relative optimality gap falls below this value.
    gap: float = 1e-6


@dataclass
class _BnBNode:
    bound: float  # LP relaxation objective (minimisation sense)
    lower: np.ndarray
    upper: np.ndarray


def _solve_lp(
    c: np.ndarray,
    a_ub: sparse.csr_matrix | None,
    b_ub: np.ndarray | None,
    a_eq: sparse.csr_matrix | None,
    b_eq: np.ndarray | None,
    lower: np.ndarray,
    upper: np.ndarray,
):
    bounds = [
        (lo, None if math.isinf(up) else up) for lo, up in zip(lower, upper)
    ]
    return linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )


def _split_constraints(model: MilpModel):
    """Convert range constraints into (A_ub, b_ub) and (A_eq, b_eq) blocks."""
    matrix, lb, ub = model.constraint_matrix()
    ub_rows, ub_rhs = [], []
    eq_rows, eq_rhs = [], []
    for row in range(matrix.shape[0]):
        row_vec = matrix.getrow(row)
        lo, hi = lb[row], ub[row]
        if lo == hi:
            eq_rows.append(row_vec)
            eq_rhs.append(hi)
            continue
        if hi != INF:
            ub_rows.append(row_vec)
            ub_rhs.append(hi)
        if lo != -INF:
            ub_rows.append(-row_vec)
            ub_rhs.append(-lo)
    a_ub = sparse.vstack(ub_rows).tocsr() if ub_rows else None
    b_ub = np.array(ub_rhs) if ub_rows else None
    a_eq = sparse.vstack(eq_rows).tocsr() if eq_rows else None
    b_eq = np.array(eq_rhs) if eq_rows else None
    return a_ub, b_ub, a_eq, b_eq


def _most_fractional(values: np.ndarray, integer_indices: list[int]) -> int | None:
    """Index of the integer variable whose LP value is farthest from integral."""
    best_index, best_frac = None, _INT_TOL
    for index in integer_indices:
        frac = abs(values[index] - round(values[index]))
        if frac > best_frac:
            best_index, best_frac = index, frac
    return best_index


def solve_branch_and_bound(
    model: MilpModel, options: BnBOptions | None = None
) -> MilpSolution:
    """Solve ``model`` exactly (within tolerances) by branch-and-bound."""
    options = options or BnBOptions()
    sign = -1.0 if model.sense is Sense.MAXIMIZE else 1.0
    c = sign * model.objective_vector()
    a_ub, b_ub, a_eq, b_eq = _split_constraints(model)
    root_lower, root_upper = model.variable_bounds()
    integer_indices = model.integer_indices()

    deadline = time.monotonic() + options.time_limit_s
    counter = itertools.count()  # heap tiebreaker

    root = _solve_lp(c, a_ub, b_ub, a_eq, b_eq, root_lower, root_upper)
    if root.status == 2:
        return MilpSolution(SolveStatus.INFEASIBLE, math.nan, ())
    if root.status == 3:
        return MilpSolution(SolveStatus.UNBOUNDED, math.nan, ())
    if root.status != 0:
        return MilpSolution(SolveStatus.ERROR, math.nan, ())

    incumbent: np.ndarray | None = None
    incumbent_obj = math.inf  # minimisation sense
    heap: list[tuple[float, int, _BnBNode]] = []
    heapq.heappush(
        heap, (root.fun, next(counter), _BnBNode(root.fun, root_lower, root_upper))
    )
    nodes_explored = 0
    proven_optimal = True

    while heap:
        if nodes_explored >= options.max_nodes or time.monotonic() > deadline:
            proven_optimal = False
            break
        bound, _, node = heapq.heappop(heap)
        if incumbent is not None and bound >= incumbent_obj - abs(incumbent_obj) * options.gap - 1e-12:
            continue  # cannot beat the incumbent
        result = _solve_lp(c, a_ub, b_ub, a_eq, b_eq, node.lower, node.upper)
        nodes_explored += 1
        if result.status != 0:
            continue  # infeasible subproblem (or numerical failure): prune
        if incumbent is not None and result.fun >= incumbent_obj - 1e-12:
            continue
        branch_var = _most_fractional(result.x, integer_indices)
        if branch_var is None:
            # Integral solution: new incumbent.
            candidate = np.array(
                [
                    round(result.x[i]) if i in set(integer_indices) else result.x[i]
                    for i in range(len(result.x))
                ]
            )
            incumbent = candidate
            incumbent_obj = result.fun
            continue
        value = result.x[branch_var]
        floor_val, ceil_val = math.floor(value), math.ceil(value)
        # Down branch: x <= floor.
        down_upper = node.upper.copy()
        down_upper[branch_var] = floor_val
        if node.lower[branch_var] <= floor_val:
            heapq.heappush(
                heap,
                (result.fun, next(counter), _BnBNode(result.fun, node.lower, down_upper)),
            )
        # Up branch: x >= ceil.
        up_lower = node.lower.copy()
        up_lower[branch_var] = ceil_val
        if ceil_val <= node.upper[branch_var]:
            heapq.heappush(
                heap,
                (result.fun, next(counter), _BnBNode(result.fun, up_lower, node.upper)),
            )

    if incumbent is None:
        if proven_optimal:
            return MilpSolution(SolveStatus.INFEASIBLE, math.nan, (), nodes_explored)
        return MilpSolution(SolveStatus.ERROR, math.nan, (), nodes_explored)

    objective = sign * incumbent_obj
    status = SolveStatus.OPTIMAL if proven_optimal else SolveStatus.FEASIBLE
    return MilpSolution(status, objective, tuple(incumbent.tolist()), nodes_explored)
