"""From-scratch branch-and-bound MILP solver (hot-path edition).

The paper's implementation calls CPLEX; we substitute an exact solver built
on LP relaxations (SciPy's HiGHS ``linprog``) with best-first
branch-and-bound.  The search core is tuned for the Medea placement models
while staying exact within tolerances, which lets tests cross-validate the
HiGHS MILP backend and vice versa:

* an exact presolve (:mod:`repro.solver.presolve`) shrinks the model before
  the search — bound tightening, fixed-column substitution, redundant-row
  removal;
* node LPs are **warm started**: the constraint matrix is loaded into one
  incremental HiGHS instance once per solve (factorization-ready CSC), and
  each node only swaps the variable-bound array in place, so dual simplex
  restarts from the previous node's basis instead of refactorizing from
  scratch (falls back to per-node ``linprog`` calls when SciPy's internal
  HiGHS bindings are unavailable);
* per-node bound propagation (two sparse mat-vecs) prunes infeasible
  subproblems without paying for an LP solve;
* branching uses pseudocosts with a reliability fallback: variables whose
  pseudocost history is too thin are scored with the average pseudocost,
  which degrades gracefully to most-fractional branching when no history
  exists yet;
* a rounding-based primal heuristic tries to turn every LP solution into an
  incumbent, tightening the cutoff early.

Internally everything is converted to *minimisation*; results are reported
back in the model's declared sense.  A :class:`~repro.solver.model.SolverStats`
record (nodes, LP solves, presolve reductions, per-phase wall time) is
attached to every returned solution.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

try:  # SciPy ships the HiGHS bindings `milp` uses; the incremental
    # ``_Highs`` object gives true basis-reusing warm starts between the
    # node LPs.  Private API, so everything degrades to ``linprog`` when
    # the import or model load fails.
    from scipy.optimize._highspy import _core as _hcore
except Exception:  # pragma: no cover - depends on scipy build
    _hcore = None

from ..obs.events import EventKind
from ..obs.spans import span, span_phase
from ..obs.log import get_run_logger
from ..obs.trace import get_tracer
from .model import MilpModel, MilpSolution, Sense, SolverStats, SolveStatus
from .presolve import PresolveResult, StandardForm, presolve, standard_form

__all__ = ["solve_branch_and_bound", "BnBOptions"]

_INT_TOL = 1e-6
_FEAS_TOL = 1e-7


@dataclass(frozen=True)
class BnBOptions:
    """Termination and search knobs for the branch-and-bound solver."""

    max_nodes: int = 200_000
    time_limit_s: float = 120.0
    #: Stop when the relative optimality gap falls below this value.
    gap: float = 1e-6
    #: Run the exact presolve before the search.
    presolve: bool = True
    #: Solve node LPs on one incremental HiGHS instance so each re-solve
    #: warm starts from the previous basis; ``False`` restores per-node
    #: cold ``linprog`` calls.
    warm_start: bool = True
    #: Prune nodes by activity-based bound propagation before solving LPs.
    node_propagation: bool = True
    #: Branch on pseudocosts (with reliability fallback); ``False`` restores
    #: plain most-fractional branching.
    pseudocost_branching: bool = True
    #: Branchings per direction before a variable's own pseudocost is
    #: trusted over the global average.
    reliability_threshold: int = 2
    #: Try to round every LP solution into an incumbent.
    rounding_heuristic: bool = True
    #: Maximum depth-first plunge length: after branching, the child on the
    #: LP solution's side is explored immediately — but only while it is
    #: *strictly* the best-bound node overall, so search order degrades to
    #: pure best-first on models with flat LP bounds (like the Medea
    #: placement MILPs, whose relaxations are highly degenerate).  Diving
    #: keeps consecutive LPs one bound change apart, which is where the
    #: warm-started basis pays most.  ``0`` disables diving entirely.
    plunge_depth: int = 512

    @classmethod
    def naive(cls, **overrides) -> "BnBOptions":
        """The pre-overhaul configuration (most-fractional branching, pure
        best-first, no presolve/propagation/heuristic) — kept for A/B
        benchmarking."""
        base = dict(
            presolve=False,
            warm_start=False,
            node_propagation=False,
            pseudocost_branching=False,
            rounding_heuristic=False,
            plunge_depth=0,
        )
        base.update(overrides)
        return cls(**base)


class _Node:
    __slots__ = ("bound", "lower", "upper", "branch_var", "branch_dir", "frac_dist")

    def __init__(self, bound, lower, upper, branch_var=-1, branch_dir=0, frac_dist=0.0):
        self.bound = bound
        self.lower = lower
        self.upper = upper
        self.branch_var = branch_var       # reduced-space column, -1 at root
        self.branch_dir = branch_dir       # -1 down, +1 up
        self.frac_dist = frac_dist         # fractional distance of the branch


class _LpResult:
    """Node LP outcome, ``linprog``-status-compatible (0 optimal,
    2 infeasible, 3 unbounded, 4 numerical error)."""

    __slots__ = ("status", "fun", "x")

    def __init__(self, status: int, fun: float, x: np.ndarray | None) -> None:
        self.status = status
        self.fun = fun
        self.x = x


class _LpContext:
    """Per-solve cache of everything node LPs share, plus warm starts.

    When SciPy's internal HiGHS bindings are importable, the constraint
    matrix is passed to one incremental ``Highs`` instance exactly once; a
    node solve then only swaps the variable-bound array in place and
    re-runs, so HiGHS restarts dual simplex from the previous node's basis
    (typically a handful of iterations instead of a cold factorization).
    Otherwise the model is split once into the ``A_ub``/``A_eq`` blocks
    ``linprog`` wants — in CSC, the layout HiGHS factorizes from — and each
    node pays a cold solve.  Positive/negative splits of the range matrix
    support the LP-free activity propagation either way.
    """

    def __init__(self, form: StandardForm, warm_start: bool = True) -> None:
        self.form = form
        self.c = form.c
        a = form.a.tocsr()
        # Positive/negative splits for propagation and heuristic checks.
        self.a_pos = a.maximum(0).tocsr()
        self.a_neg = a.minimum(0).tocsr()
        self.lp_solves = 0
        self.lp_time = 0.0
        self._highs = (
            self._build_highs() if warm_start and _hcore is not None else None
        )
        self.warm_started = self._highs is not None
        if self._highs is None:
            eq_mask = np.isclose(form.row_lb, form.row_ub) & np.isfinite(form.row_ub)
            ub_rows = []
            ub_rhs = []
            range_mask = ~eq_mask
            finite_ub = range_mask & np.isfinite(form.row_ub)
            finite_lb = range_mask & np.isfinite(form.row_lb)
            if finite_ub.any():
                ub_rows.append(a[finite_ub])
                ub_rhs.append(form.row_ub[finite_ub])
            if finite_lb.any():
                ub_rows.append(-a[finite_lb])
                ub_rhs.append(-form.row_lb[finite_lb])
            self.a_ub = sparse.vstack(ub_rows).tocsc() if ub_rows else None
            self.b_ub = np.concatenate(ub_rhs) if ub_rhs else None
            self.a_eq = a[eq_mask].tocsc() if eq_mask.any() else None
            self.b_eq = form.row_ub[eq_mask] if eq_mask.any() else None

    def _build_highs(self):
        try:
            form = self.form
            csc = form.a.tocsc()
            lp = _hcore.HighsLp()
            lp.num_col_ = form.num_cols
            lp.num_row_ = form.num_rows
            lp.col_cost_ = np.asarray(self.c, dtype=float)
            lp.col_lower_ = np.asarray(form.col_lb, dtype=float)
            lp.col_upper_ = np.asarray(form.col_ub, dtype=float)
            lp.row_lower_ = np.asarray(form.row_lb, dtype=float)
            lp.row_upper_ = np.asarray(form.row_ub, dtype=float)
            lp.a_matrix_.format_ = _hcore.MatrixFormat.kColwise
            lp.a_matrix_.start_ = csc.indptr.astype(np.int32)
            lp.a_matrix_.index_ = csc.indices.astype(np.int32)
            lp.a_matrix_.value_ = csc.data.astype(float)
            highs = _hcore._Highs()
            highs.setOptionValue("output_flag", False)
            if highs.passModel(lp) != _hcore.HighsStatus.kOk:
                return None
            self._col_idx = np.arange(form.num_cols, dtype=np.int32)
            return highs
        except Exception:  # pragma: no cover - private-API safety net
            return None

    def solve(self, lower: np.ndarray, upper: np.ndarray) -> _LpResult:
        start = time.perf_counter()
        if self._highs is not None:
            result = self._solve_highs(lower, upper)
        else:
            result = self._solve_linprog(lower, upper)
        self.lp_time += time.perf_counter() - start
        self.lp_solves += 1
        return result

    def _solve_highs(self, lower: np.ndarray, upper: np.ndarray) -> _LpResult:
        highs = self._highs
        highs.changeColsBounds(
            lower.size,
            self._col_idx,
            np.asarray(lower, dtype=float),
            np.asarray(upper, dtype=float),
        )
        highs.run()
        status = highs.getModelStatus()
        if status == _hcore.HighsModelStatus.kUnboundedOrInfeasible:
            # Presolve could not tell the two apart; the simplex run
            # without presolve always can.
            highs.setOptionValue("presolve", "off")
            highs.run()
            status = highs.getModelStatus()
            highs.setOptionValue("presolve", "choose")
        if status == _hcore.HighsModelStatus.kOptimal:
            x = np.asarray(highs.getSolution().col_value, dtype=float)
            return _LpResult(0, highs.getInfo().objective_function_value, x)
        if status == _hcore.HighsModelStatus.kInfeasible:
            return _LpResult(2, math.inf, None)
        if status == _hcore.HighsModelStatus.kUnbounded:
            return _LpResult(3, -math.inf, None)
        return _LpResult(4, math.nan, None)

    def _solve_linprog(self, lower: np.ndarray, upper: np.ndarray) -> _LpResult:
        result = linprog(
            self.c,
            A_ub=self.a_ub,
            b_ub=self.b_ub,
            A_eq=self.a_eq,
            b_eq=self.b_eq,
            bounds=np.column_stack((lower, upper)),
            method="highs",
        )
        x = np.asarray(result.x, dtype=float) if result.status == 0 else None
        fun = float(result.fun) if result.fun is not None else math.nan
        return _LpResult(result.status, fun, x)

    def provably_infeasible(self, lower: np.ndarray, upper: np.ndarray) -> bool:
        """Activity-based infeasibility check: two mat-vecs, no LP."""
        with np.errstate(invalid="ignore"):
            min_act = self.a_pos @ lower + self.a_neg @ upper
            max_act = self.a_pos @ upper + self.a_neg @ lower
        min_act = np.nan_to_num(min_act, nan=-np.inf)
        max_act = np.nan_to_num(max_act, nan=np.inf)
        return bool(
            np.any(min_act > self.form.row_ub + _FEAS_TOL)
            or np.any(max_act < self.form.row_lb - _FEAS_TOL)
        )

    def point_feasible(self, x: np.ndarray) -> bool:
        activity = self.form.a @ x
        return bool(
            np.all(activity >= self.form.row_lb - _FEAS_TOL)
            and np.all(activity <= self.form.row_ub + _FEAS_TOL)
        )


class _Pseudocosts:
    """Per-variable objective-degradation estimates for branching.

    ``update`` records (gain / fractional distance) whenever a child LP is
    solved.  ``score`` combines the up and down estimates with the product
    rule; columns whose history is thinner than the reliability threshold
    use the global average pseudocost instead, so with no history at all
    the score is proportional to ``f·(1-f)`` — i.e. most-fractional
    branching.
    """

    def __init__(self, n: int, reliability: int) -> None:
        self.reliability = reliability
        self.sum_up = np.zeros(n)
        self.cnt_up = np.zeros(n, dtype=int)
        self.sum_dn = np.zeros(n)
        self.cnt_dn = np.zeros(n, dtype=int)

    def update(self, var: int, direction: int, gain_per_unit: float) -> None:
        if direction > 0:
            self.sum_up[var] += gain_per_unit
            self.cnt_up[var] += 1
        else:
            self.sum_dn[var] += gain_per_unit
            self.cnt_dn[var] += 1

    def select(self, candidates: np.ndarray, values: np.ndarray) -> int:
        """Best candidate by the product rule over up/down estimates."""
        frac = values[candidates] - np.floor(values[candidates])
        total_cnt = self.cnt_up.sum() + self.cnt_dn.sum()
        avg = (
            (self.sum_up.sum() + self.sum_dn.sum()) / total_cnt
            if total_cnt
            else 1.0
        )
        avg = max(avg, 1e-6)
        cnt_up = self.cnt_up[candidates]
        cnt_dn = self.cnt_dn[candidates]
        est_up = np.where(
            cnt_up >= self.reliability,
            self.sum_up[candidates] / np.maximum(cnt_up, 1),
            avg,
        )
        est_dn = np.where(
            cnt_dn >= self.reliability,
            self.sum_dn[candidates] / np.maximum(cnt_dn, 1),
            avg,
        )
        score = np.maximum(est_up * (1.0 - frac), 1e-9) * np.maximum(
            est_dn * frac, 1e-9
        )
        # Early in the search most scores collapse to the same average-based
        # value; break those ties by fractionality instead of column order.
        best = score.max()
        near = score >= best * 0.9
        tie_break = np.where(near, frac * (1.0 - frac), -1.0)
        return int(candidates[np.argmax(tie_break)])


def _select_branch_var(
    values: np.ndarray,
    int_cols: np.ndarray,
    pseudocosts: _Pseudocosts | None,
) -> int:
    """Reduced-space column to branch on, or -1 when integral."""
    vals = values[int_cols]
    frac = np.abs(vals - np.round(vals))
    candidates = int_cols[frac > _INT_TOL]
    if candidates.size == 0:
        return -1
    if pseudocosts is None:
        fracs = np.abs(values[candidates] - np.round(values[candidates]))
        return int(candidates[np.argmax(fracs)])
    return pseudocosts.select(candidates, values)


def _solution(
    status: SolveStatus,
    objective: float,
    values: tuple[float, ...],
    stats: SolverStats,
    start: float,
) -> MilpSolution:
    stats.time_total_s = time.perf_counter() - start
    log = get_run_logger()
    if log.enabled:
        log.debug(
            "solver",
            "milp solve finished",
            backend=stats.backend,
            status=status.value,
            nodes=stats.nodes_explored,
            lps=stats.lp_solves,
            total_ms=round(stats.time_total_s * 1000, 3),
        )
    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit(
            EventKind.SOLVER_SOLVE,
            data={
                "backend": stats.backend,
                "status": status.value,
                "nodes_explored": stats.nodes_explored,
                "lp_solves": stats.lp_solves,
                "lp_solves_avoided": stats.lp_solves_avoided,
                "heuristic_incumbents": stats.heuristic_incumbents,
            },
            wall={
                "time_total_s": stats.time_total_s,
                "time_presolve_s": stats.time_presolve_s,
                "time_lp_s": stats.time_lp_s,
                "time_heuristic_s": stats.time_heuristic_s,
            },
        )
    return MilpSolution(status, objective, values, stats.nodes_explored, stats)


def solve_branch_and_bound(
    model: MilpModel, options: BnBOptions | None = None
) -> MilpSolution:
    """Solve ``model`` exactly (within tolerances) by branch-and-bound.

    When tracing is on, the solve runs inside a ``solver.bnb`` span with
    synthetic ``presolve`` / ``lp`` / ``heuristic`` child phases taken from
    the solve's :class:`SolverStats` — the span's *self* time is therefore
    the branching/search remainder.  Per-node LPs are far too hot for real
    child spans; the aggregated phases keep the trace bounded.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return _solve_bnb(model, options)
    with span("solver.bnb", tracer=tracer):
        solution = _solve_bnb(model, options)
        stats = solution.stats
        if stats is not None:
            span_phase("presolve", stats.time_presolve_s, tracer=tracer)
            span_phase(
                "lp",
                stats.time_lp_s,
                count=max(1, stats.lp_solves),
                tracer=tracer,
            )
            span_phase("heuristic", stats.time_heuristic_s, tracer=tracer)
    return solution


def _solve_bnb(
    model: MilpModel, options: BnBOptions | None = None
) -> MilpSolution:
    options = options or BnBOptions()
    start = time.perf_counter()
    stats = SolverStats(backend="bnb")
    sign = -1.0 if model.sense is Sense.MAXIMIZE else 1.0

    form = standard_form(model)
    n_original = form.num_cols
    if options.presolve:
        t0 = time.perf_counter()
        reduction = presolve(form)
        stats.time_presolve_s = time.perf_counter() - t0
        stats.presolve_rows_removed = reduction.rows_removed
        stats.presolve_cols_fixed = reduction.cols_fixed
        stats.presolve_bounds_tightened = reduction.bounds_tightened
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(
                EventKind.SOLVER_PRESOLVE,
                data={
                    "rows_removed": reduction.rows_removed,
                    "cols_fixed": reduction.cols_fixed,
                    "bounds_tightened": reduction.bounds_tightened,
                    "cols_before": n_original,
                    "infeasible": reduction.status is SolveStatus.INFEASIBLE,
                },
                wall={"time_presolve_s": stats.time_presolve_s},
            )
        if reduction.status is SolveStatus.INFEASIBLE:
            return _solution(SolveStatus.INFEASIBLE, math.nan, (), stats, start)
        form = reduction.form
    else:
        reduction = None

    def lift(x_reduced: np.ndarray) -> tuple[float, ...]:
        if reduction is not None:
            return tuple(reduction.postsolve(x_reduced).tolist())
        return tuple(np.asarray(x_reduced, dtype=float).tolist())

    # Everything eliminated: the fixed values are the solution (presolve
    # already proved the remaining rows feasible).
    if form.num_cols == 0:
        values = lift(np.zeros(0))
        objective = sign * form.c0
        return _solution(SolveStatus.OPTIMAL, objective, values, stats, start)

    ctx = _LpContext(form, warm_start=options.warm_start)
    int_mask = form.integer_mask
    int_cols = np.nonzero(int_mask)[0]
    root_lower = form.col_lb.copy()
    root_upper = form.col_ub.copy()

    deadline = start + options.time_limit_s
    counter = itertools.count()  # heap tiebreaker

    root = ctx.solve(root_lower, root_upper)
    if root.status == 2:
        stats.lp_solves, stats.time_lp_s = ctx.lp_solves, ctx.lp_time
        return _solution(SolveStatus.INFEASIBLE, math.nan, (), stats, start)
    if root.status == 3:
        stats.lp_solves, stats.time_lp_s = ctx.lp_solves, ctx.lp_time
        return _solution(SolveStatus.UNBOUNDED, math.nan, (), stats, start)
    if root.status != 0:
        stats.lp_solves, stats.time_lp_s = ctx.lp_solves, ctx.lp_time
        return _solution(SolveStatus.ERROR, math.nan, (), stats, start)

    incumbent: np.ndarray | None = None
    incumbent_obj = math.inf  # reduced minimisation sense (excludes c0)
    pseudocosts = (
        _Pseudocosts(form.num_cols, options.reliability_threshold)
        if options.pseudocost_branching
        else None
    )

    def cutoff() -> float:
        if incumbent is None:
            return math.inf
        full = incumbent_obj + form.c0
        return incumbent_obj - abs(full) * options.gap - 1e-12

    has_continuous = int_cols.size < form.num_cols
    tried_roundings: set[bytes] = set()

    def try_rounding(values: np.ndarray) -> None:
        """Round the LP point to the integer lattice; adopt if feasible.

        Pure-integer models get a direct feasibility check.  Mixed models
        additionally re-optimise the continuous columns with the rounded
        integers fixed (a one-LP "completion"; counted under the LP phase),
        gated on the LP point being nearly integral so the extra solves
        stay rare.
        """
        nonlocal incumbent, incumbent_obj
        if not options.rounding_heuristic:
            return
        t0 = time.perf_counter()
        candidate = np.where(int_mask, np.round(values), values)
        np.clip(candidate, root_lower, root_upper, out=candidate)
        frac = np.abs(candidate[int_cols] - np.round(candidate[int_cols]))
        if np.any(frac > _INT_TOL):
            # Clipping against fractional bounds broke integrality.
            stats.time_heuristic_s += time.perf_counter() - t0
            return
        key = candidate[int_cols].tobytes()
        if key in tried_roundings:
            stats.time_heuristic_s += time.perf_counter() - t0
            return
        tried_roundings.add(key)
        if not has_continuous:
            obj = float(ctx.c @ candidate)
            if obj < incumbent_obj - 1e-12 and ctx.point_feasible(candidate):
                incumbent = candidate
                incumbent_obj = obj
                stats.heuristic_incumbents += 1
            stats.time_heuristic_s += time.perf_counter() - t0
            return
        # Mixed-integer: the LP's continuous values were optimal for the
        # *fractional* integers, so re-complete them.  Only worth an LP
        # when the point is nearly integral.
        lp_frac = np.abs(values[int_cols] - np.round(values[int_cols]))
        n_frac = int(np.count_nonzero(lp_frac > _INT_TOL))
        if n_frac > max(8, int_cols.size // 5):
            stats.time_heuristic_s += time.perf_counter() - t0
            return
        fixed_lower = root_lower.copy()
        fixed_upper = root_upper.copy()
        fixed_lower[int_cols] = candidate[int_cols]
        fixed_upper[int_cols] = candidate[int_cols]
        if ctx.provably_infeasible(fixed_lower, fixed_upper):
            # The rounded integers leave some row unreachable even with the
            # continuous columns free — skip the completion LP.
            stats.time_heuristic_s += time.perf_counter() - t0
            return
        lp_before = ctx.lp_time
        completion = ctx.solve(fixed_lower, fixed_upper)
        if completion.status == 0 and completion.fun < incumbent_obj - 1e-12:
            incumbent = np.where(int_mask, np.round(completion.x), completion.x)
            incumbent_obj = completion.fun
            stats.heuristic_incumbents += 1
        # The completion LP's time is booked under the LP phase; the
        # heuristic phase keeps only the rounding overhead.  Clamped: timer
        # resolution can make the LP-time delta exceed the outer elapsed
        # time, and a negative phase would break the ≤ time_total_s
        # invariant the phase accounting promises.
        stats.time_heuristic_s += max(
            0.0, (time.perf_counter() - t0) - (ctx.lp_time - lp_before)
        )

    heap: list[tuple[float, int, _Node]] = []
    heapq.heappush(
        heap, (root.fun, next(counter), _Node(root.fun, root_lower, root_upper))
    )
    proven_optimal = True
    dive_node: _Node | None = None
    dive_depth = 0

    while heap or dive_node is not None:
        if stats.nodes_explored >= options.max_nodes or time.perf_counter() > deadline:
            proven_optimal = False
            break
        if dive_node is not None:
            node, dive_node = dive_node, None
            bound = node.bound
        else:
            bound, _, node = heapq.heappop(heap)
            dive_depth = 0
        if bound >= cutoff():
            continue  # cannot beat the incumbent
        if (
            options.node_propagation
            and node.branch_var >= 0
            and ctx.provably_infeasible(node.lower, node.upper)
        ):
            stats.lp_solves_avoided += 1
            continue
        result = ctx.solve(node.lower, node.upper)
        stats.nodes_explored += 1
        if result.status != 0:
            continue  # infeasible subproblem (or numerical failure): prune
        if pseudocosts is not None and node.branch_var >= 0 and node.frac_dist > _INT_TOL:
            gain = max(0.0, result.fun - node.bound)
            pseudocosts.update(node.branch_var, node.branch_dir, gain / node.frac_dist)
        if result.fun >= cutoff() or (
            incumbent is not None and result.fun >= incumbent_obj - 1e-12
        ):
            continue
        branch_var = _select_branch_var(result.x, int_cols, pseudocosts)
        if branch_var < 0:
            # Integral solution: new incumbent.
            incumbent = np.where(int_mask, np.round(result.x), result.x)
            incumbent_obj = result.fun
            continue
        try_rounding(result.x)
        if result.fun >= cutoff():
            continue  # the heuristic may have closed the gap
        value = result.x[branch_var]
        floor_val, ceil_val = math.floor(value), math.ceil(value)
        down_child = up_child = None
        # Down branch: x <= floor.
        if node.lower[branch_var] <= floor_val:
            down_upper = node.upper.copy()
            down_upper[branch_var] = floor_val
            down_child = _Node(result.fun, node.lower, down_upper,
                               branch_var, -1, value - floor_val)
        # Up branch: x >= ceil.
        if ceil_val <= node.upper[branch_var]:
            up_lower = node.lower.copy()
            up_lower[branch_var] = ceil_val
            up_child = _Node(result.fun, up_lower, node.upper,
                             branch_var, +1, ceil_val - value)
        # Plunge: keep diving on the child the LP solution leans toward —
        # but only while that child is still the best-bound node overall
        # (otherwise it would not have been popped next anyway, and diving
        # past better nodes inflates the tree).  Diving keeps consecutive
        # LPs a single bound change apart, which is where the warm-started
        # basis pays most.  Everything else goes to the best-first heap in
        # deterministic (down, up) order.
        preferred = (
            up_child if value - floor_val > 0.5 else down_child
        ) or down_child or up_child
        if (
            preferred is not None
            and dive_depth < options.plunge_depth
            and (not heap or preferred.bound < heap[0][0] - 1e-9)
        ):
            dive_node = preferred
            dive_depth += 1
        for child in (down_child, up_child):
            if child is not None and child is not dive_node:
                heapq.heappush(heap, (child.bound, next(counter), child))

    stats.lp_solves, stats.time_lp_s = ctx.lp_solves, ctx.lp_time

    if incumbent is None:
        if proven_optimal:
            return _solution(SolveStatus.INFEASIBLE, math.nan, (), stats, start)
        return _solution(SolveStatus.ERROR, math.nan, (), stats, start)

    objective = sign * (incumbent_obj + form.c0)
    status = SolveStatus.OPTIMAL if proven_optimal else SolveStatus.FEASIBLE
    return _solution(status, objective, lift(incumbent), stats, start)
