"""HiGHS backend: delegate a :class:`MilpModel` to ``scipy.optimize.milp``.

This is the production backend (fast, battle-tested); the branch-and-bound
solver next door provides an independent implementation for
cross-validation.
"""

from __future__ import annotations

import math
import time

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..obs.events import EventKind
from ..obs.spans import span
from ..obs.trace import get_tracer
from .model import MilpModel, MilpSolution, Sense, SolverStats, SolveStatus

__all__ = ["solve_highs", "HighsOptions"]


def _trace_solve(status: SolveStatus, stats: SolverStats) -> None:
    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit(
            EventKind.SOLVER_SOLVE,
            data={
                "backend": stats.backend,
                "status": status.value,
                "nodes_explored": stats.nodes_explored,
            },
            wall={"time_total_s": stats.time_total_s},
        )


class HighsOptions:
    """Options accepted by the HiGHS MILP backend."""

    def __init__(self, time_limit_s: float = 120.0, mip_rel_gap: float = 1e-6) -> None:
        self.time_limit_s = time_limit_s
        self.mip_rel_gap = mip_rel_gap


_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ERROR,       # iteration/time limit without a solution
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def solve_highs(model: MilpModel, options: HighsOptions | None = None) -> MilpSolution:
    """Solve via SciPy's HiGHS backend; traced as a ``solver.highs`` span.

    HiGHS is a black box, so unlike :func:`solve_branch_and_bound` the span
    has no phase children — its self time is the whole solve.
    """
    with span("solver.highs"):
        return _solve_highs(model, options)


def _solve_highs(model: MilpModel, options: HighsOptions | None = None) -> MilpSolution:
    options = options or HighsOptions()
    start = time.perf_counter()
    sign = -1.0 if model.sense is Sense.MAXIMIZE else 1.0
    c = sign * model.objective_vector()
    lower, upper = model.variable_bounds()
    constraints = []
    if model.num_constraints:
        matrix, lb, ub = model.constraint_matrix()
        constraints.append(LinearConstraint(matrix, lb, ub))
    result = milp(
        c=c,
        constraints=constraints,
        bounds=Bounds(lower, upper),
        integrality=model.integrality(),
        options={
            "time_limit": options.time_limit_s,
            "mip_rel_gap": options.mip_rel_gap,
        },
    )
    stats = SolverStats(
        backend="highs",
        nodes_explored=int(getattr(result, "mip_node_count", 0) or 0),
        time_total_s=time.perf_counter() - start,
    )
    if result.x is None:
        status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
        if result.status == 4 and "unbounded" in (result.message or "").lower():
            # HiGHS presolve reports "infeasible or unbounded" without
            # telling which.  A zero-objective re-solve settles it: a
            # feasible rational MILP whose status is one of the two must
            # be unbounded.
            feas = milp(
                c=np.zeros_like(c),
                constraints=constraints,
                bounds=Bounds(lower, upper),
                integrality=model.integrality(),
                options={"time_limit": options.time_limit_s},
            )
            if feas.status == 0:
                status = SolveStatus.UNBOUNDED
            elif feas.status == 2:
                status = SolveStatus.INFEASIBLE
        _trace_solve(status, stats)
        return MilpSolution(status, math.nan, (), stats.nodes_explored, stats)
    status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
    if status is SolveStatus.ERROR and result.x is not None:
        status = SolveStatus.FEASIBLE  # limit hit but incumbent available
    values = np.asarray(result.x, dtype=float)
    # Snap integer variables to exact integers to shield downstream code
    # from solver tolerance noise.
    for index in model.integer_indices():
        values[index] = round(values[index])
    objective = sign * float(result.fun)
    _trace_solve(status, stats)
    return MilpSolution(status, objective, tuple(values.tolist()), stats.nodes_explored, stats)
