"""A small modelling layer for mixed-integer linear programs.

The Medea ILP scheduler (paper §5.2, Fig. 5) builds its formulation against
this interface, which is then solved by one of two interchangeable backends:
the from-scratch branch-and-bound solver in
:mod:`repro.solver.branch_and_bound` or SciPy's HiGHS wrapper in
:mod:`repro.solver.highs`.  The model stores a *maximisation* or
*minimisation* objective, range constraints ``lb <= a·x <= ub``, and per-
variable bounds with an integrality flag.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np
from scipy import sparse

# SolverStats moved to the unified observability layer (repro.obs.metrics);
# re-exported here so ``from repro.solver.model import SolverStats`` keeps
# working for both backends and existing callers.
from ..obs.metrics import SolverStats

__all__ = ["Sense", "SolveStatus", "MilpModel", "MilpSolution", "SolverStats", "INF"]

INF = float("inf")


class Sense(enum.Enum):
    MINIMIZE = "min"
    MAXIMIZE = "max"


class SolveStatus(enum.Enum):
    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # incumbent found but optimality not proven
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass(frozen=True)
class MilpSolution:
    """Result of a solve: status, objective in the *model's* sense, and a
    value per variable (empty when no solution exists)."""

    status: SolveStatus
    objective: float
    values: tuple[float, ...]
    nodes_explored: int = 0
    #: Phase/effort breakdown of the solve that produced this solution.
    stats: SolverStats | None = None

    def value(self, index: int) -> float:
        return self.values[index]

    def rounded(self, index: int) -> int:
        return int(round(self.values[index]))


@dataclass
class _Variable:
    name: str
    lower: float
    upper: float
    integer: bool


@dataclass
class _Constraint:
    coeffs: dict[int, float]
    lower: float
    upper: float
    name: str


class MilpModel:
    """Incrementally built MILP."""

    def __init__(self, sense: Sense = Sense.MAXIMIZE, name: str = "milp") -> None:
        self.sense = sense
        self.name = name
        self._variables: list[_Variable] = []
        self._constraints: list[_Constraint] = []
        self._objective: dict[int, float] = {}

    # -- variables -------------------------------------------------------------

    def add_variable(
        self,
        name: str,
        *,
        lower: float = 0.0,
        upper: float = INF,
        integer: bool = False,
    ) -> int:
        """Add a variable and return its column index."""
        if lower > upper:
            raise ValueError(f"variable {name!r}: lower {lower} > upper {upper}")
        self._variables.append(_Variable(name, lower, upper, integer))
        return len(self._variables) - 1

    def add_binary(self, name: str) -> int:
        return self.add_variable(name, lower=0.0, upper=1.0, integer=True)

    def add_continuous(self, name: str, *, lower: float = 0.0, upper: float = INF) -> int:
        return self.add_variable(name, lower=lower, upper=upper, integer=False)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def variable_name(self, index: int) -> str:
        return self._variables[index].name

    # -- objective ---------------------------------------------------------------

    def set_objective_coefficient(self, index: int, coeff: float) -> None:
        if coeff == 0.0:
            self._objective.pop(index, None)
        else:
            self._objective[index] = coeff

    def add_objective_term(self, index: int, coeff: float) -> None:
        new = self._objective.get(index, 0.0) + coeff
        self.set_objective_coefficient(index, new)

    # -- constraints ---------------------------------------------------------------

    def add_constraint(
        self,
        coeffs: Mapping[int, float],
        *,
        lower: float = -INF,
        upper: float = INF,
        name: str = "",
    ) -> int:
        """Add a range constraint ``lower <= sum(coeffs[i] * x_i) <= upper``."""
        if lower == -INF and upper == INF:
            raise ValueError(f"constraint {name!r} is vacuous (no bounds)")
        if lower > upper:
            raise ValueError(f"constraint {name!r}: lower {lower} > upper {upper}")
        cleaned = {i: float(c) for i, c in coeffs.items() if c != 0.0}
        for index in cleaned:
            if not 0 <= index < len(self._variables):
                raise IndexError(f"constraint {name!r} references unknown variable {index}")
        self._constraints.append(_Constraint(cleaned, lower, upper, name))
        return len(self._constraints) - 1

    def add_le(self, coeffs: Mapping[int, float], rhs: float, name: str = "") -> int:
        return self.add_constraint(coeffs, upper=rhs, name=name)

    def add_ge(self, coeffs: Mapping[int, float], rhs: float, name: str = "") -> int:
        return self.add_constraint(coeffs, lower=rhs, name=name)

    def add_eq(self, coeffs: Mapping[int, float], rhs: float, name: str = "") -> int:
        return self.add_constraint(coeffs, lower=rhs, upper=rhs, name=name)

    # -- matrix export ------------------------------------------------------------

    def objective_vector(self) -> np.ndarray:
        c = np.zeros(len(self._variables))
        for index, coeff in self._objective.items():
            c[index] = coeff
        return c

    def constraint_matrix(self) -> tuple[sparse.csr_matrix, np.ndarray, np.ndarray]:
        """``(A, lb, ub)`` with one row per constraint."""
        rows, cols, data = [], [], []
        for row, constraint in enumerate(self._constraints):
            for col, coeff in constraint.coeffs.items():
                rows.append(row)
                cols.append(col)
                data.append(coeff)
        matrix = sparse.csr_matrix(
            (data, (rows, cols)),
            shape=(len(self._constraints), len(self._variables)),
        )
        lb = np.array([c.lower for c in self._constraints])
        ub = np.array([c.upper for c in self._constraints])
        return matrix, lb, ub

    def variable_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        lower = np.array([v.lower for v in self._variables])
        upper = np.array([v.upper for v in self._variables])
        return lower, upper

    def integrality(self) -> np.ndarray:
        """1 where the variable is integer-constrained, else 0 (scipy
        ``milp`` convention)."""
        return np.array([1 if v.integer else 0 for v in self._variables])

    def integer_indices(self) -> list[int]:
        return [i for i, v in enumerate(self._variables) if v.integer]

    # -- evaluation -----------------------------------------------------------------

    def objective_value(self, values: Sequence[float]) -> float:
        return sum(coeff * values[index] for index, coeff in self._objective.items())

    def is_feasible(self, values: Sequence[float], tol: float = 1e-6) -> bool:
        """Check a candidate point against all bounds and constraints."""
        for i, var in enumerate(self._variables):
            v = values[i]
            if v < var.lower - tol or v > var.upper + tol:
                return False
            if var.integer and abs(v - round(v)) > tol:
                return False
        for constraint in self._constraints:
            total = sum(coeff * values[i] for i, coeff in constraint.coeffs.items())
            if total < constraint.lower - tol or total > constraint.upper + tol:
                return False
        return True
