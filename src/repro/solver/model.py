"""A small modelling layer for mixed-integer linear programs.

The Medea ILP scheduler (paper §5.2, Fig. 5) builds its formulation against
this interface, which is then solved by one of two interchangeable backends:
the from-scratch branch-and-bound solver in
:mod:`repro.solver.branch_and_bound` or SciPy's HiGHS wrapper in
:mod:`repro.solver.highs`.  The model stores a *maximisation* or
*minimisation* objective, range constraints ``lb <= a·x <= ub``, and per-
variable bounds with an integrality flag.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np
from scipy import sparse

__all__ = ["Sense", "SolveStatus", "MilpModel", "MilpSolution", "SolverStats", "INF"]

INF = float("inf")


class Sense(enum.Enum):
    MINIMIZE = "min"
    MAXIMIZE = "max"


class SolveStatus(enum.Enum):
    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # incumbent found but optimality not proven
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class SolverStats:
    """Where a MILP solve spent its effort.

    Produced by both backends (the branch-and-bound solver fills every
    field; HiGHS reports what ``scipy.optimize.milp`` exposes, which is
    wall time only) and threaded through ``IlpScheduler`` and
    ``PlacementResult`` so Fig. 11a-style latency runs can report where
    placement time goes.
    """

    backend: str = "bnb"
    nodes_explored: int = 0
    lp_solves: int = 0
    #: Nodes pruned by bound propagation before any LP was solved.
    lp_solves_avoided: int = 0
    presolve_rows_removed: int = 0
    presolve_cols_fixed: int = 0
    presolve_bounds_tightened: int = 0
    #: Incumbents found by the rounding primal heuristic.
    heuristic_incumbents: int = 0
    time_presolve_s: float = 0.0
    time_lp_s: float = 0.0
    time_heuristic_s: float = 0.0
    time_total_s: float = 0.0
    #: Number of solves merged into this record (1 for a single solve).
    solves: int = 1

    def merge(self, other: "SolverStats") -> None:
        """Accumulate ``other`` into this record (for per-experiment totals)."""
        if self.solves == 0:
            self.backend = other.backend
        elif other.backend not in self.backend.split("+"):
            self.backend = f"{self.backend}+{other.backend}"
        self.nodes_explored += other.nodes_explored
        self.lp_solves += other.lp_solves
        self.lp_solves_avoided += other.lp_solves_avoided
        self.presolve_rows_removed += other.presolve_rows_removed
        self.presolve_cols_fixed += other.presolve_cols_fixed
        self.presolve_bounds_tightened += other.presolve_bounds_tightened
        self.heuristic_incumbents += other.heuristic_incumbents
        self.time_presolve_s += other.time_presolve_s
        self.time_lp_s += other.time_lp_s
        self.time_heuristic_s += other.time_heuristic_s
        self.time_total_s += other.time_total_s
        self.solves += other.solves

    def summary(self) -> str:
        """One line suitable for benchmark output."""
        return (
            f"solver[{self.backend}] solves={self.solves} "
            f"nodes={self.nodes_explored} lps={self.lp_solves} "
            f"(avoided={self.lp_solves_avoided}) "
            f"presolve(rows-={self.presolve_rows_removed} "
            f"cols-={self.presolve_cols_fixed} "
            f"tighten={self.presolve_bounds_tightened}) "
            f"heur-inc={self.heuristic_incumbents} "
            f"t_presolve={self.time_presolve_s * 1000:.1f}ms "
            f"t_lp={self.time_lp_s * 1000:.1f}ms "
            f"t_heur={self.time_heuristic_s * 1000:.1f}ms "
            f"t_total={self.time_total_s * 1000:.1f}ms"
        )


@dataclass(frozen=True)
class MilpSolution:
    """Result of a solve: status, objective in the *model's* sense, and a
    value per variable (empty when no solution exists)."""

    status: SolveStatus
    objective: float
    values: tuple[float, ...]
    nodes_explored: int = 0
    #: Phase/effort breakdown of the solve that produced this solution.
    stats: SolverStats | None = None

    def value(self, index: int) -> float:
        return self.values[index]

    def rounded(self, index: int) -> int:
        return int(round(self.values[index]))


@dataclass
class _Variable:
    name: str
    lower: float
    upper: float
    integer: bool


@dataclass
class _Constraint:
    coeffs: dict[int, float]
    lower: float
    upper: float
    name: str


class MilpModel:
    """Incrementally built MILP."""

    def __init__(self, sense: Sense = Sense.MAXIMIZE, name: str = "milp") -> None:
        self.sense = sense
        self.name = name
        self._variables: list[_Variable] = []
        self._constraints: list[_Constraint] = []
        self._objective: dict[int, float] = {}

    # -- variables -------------------------------------------------------------

    def add_variable(
        self,
        name: str,
        *,
        lower: float = 0.0,
        upper: float = INF,
        integer: bool = False,
    ) -> int:
        """Add a variable and return its column index."""
        if lower > upper:
            raise ValueError(f"variable {name!r}: lower {lower} > upper {upper}")
        self._variables.append(_Variable(name, lower, upper, integer))
        return len(self._variables) - 1

    def add_binary(self, name: str) -> int:
        return self.add_variable(name, lower=0.0, upper=1.0, integer=True)

    def add_continuous(self, name: str, *, lower: float = 0.0, upper: float = INF) -> int:
        return self.add_variable(name, lower=lower, upper=upper, integer=False)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def variable_name(self, index: int) -> str:
        return self._variables[index].name

    # -- objective ---------------------------------------------------------------

    def set_objective_coefficient(self, index: int, coeff: float) -> None:
        if coeff == 0.0:
            self._objective.pop(index, None)
        else:
            self._objective[index] = coeff

    def add_objective_term(self, index: int, coeff: float) -> None:
        new = self._objective.get(index, 0.0) + coeff
        self.set_objective_coefficient(index, new)

    # -- constraints ---------------------------------------------------------------

    def add_constraint(
        self,
        coeffs: Mapping[int, float],
        *,
        lower: float = -INF,
        upper: float = INF,
        name: str = "",
    ) -> int:
        """Add a range constraint ``lower <= sum(coeffs[i] * x_i) <= upper``."""
        if lower == -INF and upper == INF:
            raise ValueError(f"constraint {name!r} is vacuous (no bounds)")
        if lower > upper:
            raise ValueError(f"constraint {name!r}: lower {lower} > upper {upper}")
        cleaned = {i: float(c) for i, c in coeffs.items() if c != 0.0}
        for index in cleaned:
            if not 0 <= index < len(self._variables):
                raise IndexError(f"constraint {name!r} references unknown variable {index}")
        self._constraints.append(_Constraint(cleaned, lower, upper, name))
        return len(self._constraints) - 1

    def add_le(self, coeffs: Mapping[int, float], rhs: float, name: str = "") -> int:
        return self.add_constraint(coeffs, upper=rhs, name=name)

    def add_ge(self, coeffs: Mapping[int, float], rhs: float, name: str = "") -> int:
        return self.add_constraint(coeffs, lower=rhs, name=name)

    def add_eq(self, coeffs: Mapping[int, float], rhs: float, name: str = "") -> int:
        return self.add_constraint(coeffs, lower=rhs, upper=rhs, name=name)

    # -- matrix export ------------------------------------------------------------

    def objective_vector(self) -> np.ndarray:
        c = np.zeros(len(self._variables))
        for index, coeff in self._objective.items():
            c[index] = coeff
        return c

    def constraint_matrix(self) -> tuple[sparse.csr_matrix, np.ndarray, np.ndarray]:
        """``(A, lb, ub)`` with one row per constraint."""
        rows, cols, data = [], [], []
        for row, constraint in enumerate(self._constraints):
            for col, coeff in constraint.coeffs.items():
                rows.append(row)
                cols.append(col)
                data.append(coeff)
        matrix = sparse.csr_matrix(
            (data, (rows, cols)),
            shape=(len(self._constraints), len(self._variables)),
        )
        lb = np.array([c.lower for c in self._constraints])
        ub = np.array([c.upper for c in self._constraints])
        return matrix, lb, ub

    def variable_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        lower = np.array([v.lower for v in self._variables])
        upper = np.array([v.upper for v in self._variables])
        return lower, upper

    def integrality(self) -> np.ndarray:
        """1 where the variable is integer-constrained, else 0 (scipy
        ``milp`` convention)."""
        return np.array([1 if v.integer else 0 for v in self._variables])

    def integer_indices(self) -> list[int]:
        return [i for i, v in enumerate(self._variables) if v.integer]

    # -- evaluation -----------------------------------------------------------------

    def objective_value(self, values: Sequence[float]) -> float:
        return sum(coeff * values[index] for index, coeff in self._objective.items())

    def is_feasible(self, values: Sequence[float], tol: float = 1e-6) -> bool:
        """Check a candidate point against all bounds and constraints."""
        for i, var in enumerate(self._variables):
            v = values[i]
            if v < var.lower - tol or v > var.upper + tol:
                return False
            if var.integer and abs(v - round(v)) > tol:
                return False
        for constraint in self._constraints:
            total = sum(coeff * values[i] for i, coeff in constraint.coeffs.items())
            if total < constraint.lower - tol or total > constraint.upper + tol:
                return False
        return True
