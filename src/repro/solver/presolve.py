"""Exact presolve for the branch-and-bound MILP core.

Operates on a :class:`StandardForm` — the dense-objective / sparse-range-
constraint snapshot of a :class:`~repro.solver.model.MilpModel` — and
applies only *exact* reductions, so the reduced problem has the same
optimal objective as the original and every reduced solution maps back to
an original one via :meth:`PresolveResult.postsolve`:

* integer bound rounding (fractional bounds on integer columns snap
  inward);
* singleton rows folded into variable bounds and removed;
* fixed columns (``lb == ub``) substituted into the rows and the
  objective constant;
* redundant rows (activity range provably inside the row bounds) removed;
* activity-based bound tightening, which also detects infeasibility when
  a row's minimum activity exceeds its upper bound (or vice versa).

The passes loop to a fixpoint: folding a singleton row can fix a column,
which can make another row redundant, and so on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from .model import MilpModel, Sense, SolveStatus

__all__ = ["StandardForm", "PresolveResult", "presolve", "standard_form"]

_FEAS_TOL = 1e-7
#: Minimum improvement for a bound change to count (avoids float churn).
_TIGHTEN_TOL = 1e-9
_MAX_ROUNDS = 10


@dataclass
class StandardForm:
    """Minimisation-sense MILP: ``min c·x + c0`` s.t.
    ``row_lb <= A x <= row_ub``, ``col_lb <= x <= col_ub``, integrality
    per ``integer_mask``."""

    c: np.ndarray
    c0: float
    a: sparse.csr_matrix
    row_lb: np.ndarray
    row_ub: np.ndarray
    col_lb: np.ndarray
    col_ub: np.ndarray
    integer_mask: np.ndarray

    @property
    def num_rows(self) -> int:
        return self.a.shape[0]

    @property
    def num_cols(self) -> int:
        return len(self.c)


def standard_form(model: MilpModel) -> StandardForm:
    """Snapshot ``model`` into minimisation-sense arrays (sign-flipping a
    maximisation objective)."""
    sign = -1.0 if model.sense is Sense.MAXIMIZE else 1.0
    matrix, row_lb, row_ub = model.constraint_matrix()
    col_lb, col_ub = model.variable_bounds()
    return StandardForm(
        c=sign * model.objective_vector(),
        c0=0.0,
        a=matrix.tocsr(),
        row_lb=np.asarray(row_lb, dtype=float),
        row_ub=np.asarray(row_ub, dtype=float),
        col_lb=np.asarray(col_lb, dtype=float),
        col_ub=np.asarray(col_ub, dtype=float),
        integer_mask=model.integrality().astype(bool),
    )


@dataclass
class PresolveResult:
    """Reduced problem plus the bookkeeping to undo the reduction."""

    #: ``SolveStatus.INFEASIBLE`` when presolve proved infeasibility,
    #: else ``None`` (the reduced problem still needs solving).
    status: SolveStatus | None
    form: StandardForm
    #: Original column index of each reduced column.
    kept_cols: np.ndarray
    #: Full-length vector holding the value of every eliminated column.
    fixed_values: np.ndarray
    rows_removed: int = 0
    cols_fixed: int = 0
    bounds_tightened: int = 0
    rounds: int = 0

    def postsolve(self, x_reduced: np.ndarray) -> np.ndarray:
        """Lift a reduced-space solution back to the original variables."""
        x = self.fixed_values.copy()
        x[self.kept_cols] = x_reduced
        return x


def _identity_result(form: StandardForm) -> PresolveResult:
    return PresolveResult(
        status=None,
        form=form,
        kept_cols=np.arange(form.num_cols),
        fixed_values=np.zeros(form.num_cols),
    )


def presolve(form: StandardForm) -> PresolveResult:
    """Apply exact reductions to ``form``; never mutates the input."""
    n = form.num_cols
    m = form.num_rows
    c = form.c.copy()
    c0 = form.c0
    a = form.a.tocsr(copy=True)
    row_lb, row_ub = form.row_lb.copy(), form.row_ub.copy()
    col_lb, col_ub = form.col_lb.copy(), form.col_ub.copy()
    integer = form.integer_mask.copy()

    row_active = np.ones(m, dtype=bool)
    col_active = np.ones(n, dtype=bool)
    fixed_values = np.zeros(n)
    rows_removed = cols_fixed = bounds_tightened = rounds = 0
    infeasible = False

    # Static structure of ``a`` (never modified; activity masks do the
    # bookkeeping), flattened for vectorized per-entry passes.
    data = a.data
    col_ids = a.indices
    row_ids = np.repeat(np.arange(m), np.diff(a.indptr))

    def round_integer_bounds() -> bool:
        nonlocal bounds_tightened, infeasible
        active_int = col_active & integer
        new_lo = np.ceil(col_lb - _FEAS_TOL)
        new_hi = np.floor(col_ub + _FEAS_TOL)
        raise_lo = active_int & np.isfinite(col_lb) & (new_lo > col_lb + _TIGHTEN_TOL)
        drop_hi = active_int & np.isfinite(col_ub) & (new_hi < col_ub - _TIGHTEN_TOL)
        col_lb[raise_lo] = new_lo[raise_lo]
        col_ub[drop_hi] = new_hi[drop_hi]
        tightened = int(raise_lo.sum()) + int(drop_hi.sum())
        bounds_tightened += tightened
        if np.any(col_active & (col_lb > col_ub + _FEAS_TOL)):
            infeasible = True
        return tightened > 0

    def tighten_col(j: int, lo: float | None, hi: float | None) -> bool:
        """Apply an implied bound to column ``j``; True when it improved."""
        nonlocal bounds_tightened, infeasible
        changed = False
        if lo is not None and lo > col_lb[j] + _TIGHTEN_TOL:
            col_lb[j] = math.ceil(lo - _FEAS_TOL) if integer[j] else lo
            bounds_tightened += 1
            changed = True
        if hi is not None and hi < col_ub[j] - _TIGHTEN_TOL:
            col_ub[j] = math.floor(hi + _FEAS_TOL) if integer[j] else hi
            bounds_tightened += 1
            changed = True
        if col_lb[j] > col_ub[j] + _FEAS_TOL:
            infeasible = True
        return changed

    def fold_singleton_rows() -> bool:
        nonlocal rows_removed
        changed = False
        mask = row_active[row_ids] & col_active[col_ids] & (data != 0.0)
        counts = np.bincount(row_ids[mask], minlength=m)
        for i in np.nonzero(row_active & (counts == 1))[0]:
            for p in range(a.indptr[i], a.indptr[i + 1]):
                j = col_ids[p]
                coeff = data[p]
                if not col_active[j] or coeff == 0.0:
                    continue
                lo, hi = row_lb[i], row_ub[i]
                if coeff > 0:
                    implied_lo = lo / coeff if not math.isinf(lo) else None
                    implied_hi = hi / coeff if not math.isinf(hi) else None
                else:
                    implied_lo = hi / coeff if not math.isinf(hi) else None
                    implied_hi = lo / coeff if not math.isinf(lo) else None
                tighten_col(j, implied_lo, implied_hi)
                break
            row_active[i] = False
            rows_removed += 1
            changed = True
            if infeasible:
                return changed
        return changed

    def substitute_fixed_cols() -> bool:
        nonlocal cols_fixed, c0
        fix = col_active & (col_ub - col_lb <= _FEAS_TOL)
        if not fix.any():
            return False
        values = np.where(integer, np.round(col_lb), 0.5 * (col_lb + col_ub))
        fixed_values[fix] = values[fix]
        c0 += float(c[fix] @ values[fix])
        # One mat-vec shifts every row's bounds by the fixed contribution.
        v = np.zeros(n)
        v[fix] = values[fix]
        shift = a @ v
        finite_lo = np.isfinite(row_lb)
        finite_hi = np.isfinite(row_ub)
        row_lb[finite_lo] -= shift[finite_lo]
        row_ub[finite_hi] -= shift[finite_hi]
        col_active[fix] = False
        cols_fixed += int(fix.sum())
        return True

    def sweep_rows() -> bool:
        """Redundancy removal + activity-based bound tightening.

        Vectorized over the flattened nonzero entries: per-entry min/max
        contributions, per-row activity sums via ``bincount``, then implied
        column bounds aggregated with ``maximum.at``/``minimum.at``.  All
        implications come from the bound snapshot at sweep start; stale
        (looser) activities only weaken implied bounds, never falsify them,
        and the fixpoint loop picks up what a sequential sweep would have
        caught in-pass.
        """
        nonlocal rows_removed, infeasible, bounds_tightened
        changed = False
        eact = row_active[row_ids] & col_active[col_ids] & (data != 0.0)
        d = np.where(eact, data, 0.0)
        lbv = col_lb[col_ids]
        ubv = col_ub[col_ids]
        pos = d > 0
        neg = d < 0
        with np.errstate(invalid="ignore"):
            cmin = np.where(pos, d * lbv, np.where(neg, d * ubv, 0.0))
            cmax = np.where(pos, d * ubv, np.where(neg, d * lbv, 0.0))
            min_act = np.bincount(row_ids, weights=cmin, minlength=m)
            max_act = np.bincount(row_ids, weights=cmax, minlength=m)
        counts = np.bincount(row_ids[eact], minlength=m)
        # Empty active rows: feasible iff 0 lies inside the range.
        empty = row_active & (counts == 0)
        if empty.any():
            if np.any(empty & ((row_lb > _FEAS_TOL) | (row_ub < -_FEAS_TOL))):
                infeasible = True
                return changed
            row_active[empty] = False
            rows_removed += int(empty.sum())
            changed = True
        live = row_active & (counts > 0)
        # NaN activities (mixed ±inf contributions) compare False
        # everywhere, so they neither prove infeasibility nor redundancy.
        if np.any(live & ((min_act > row_ub + _FEAS_TOL) | (max_act < row_lb - _FEAS_TOL))):
            infeasible = True
            return changed
        redundant = live & (min_act >= row_lb - _FEAS_TOL) & (max_act <= row_ub + _FEAS_TOL)
        if redundant.any():
            row_active[redundant] = False
            rows_removed += int(redundant.sum())
            changed = True
        # Bound tightening from residual activity (row minus the entry's
        # own contribution; only defined when that contribution is finite).
        idx = np.nonzero(eact & row_active[row_ids])[0]
        if idx.size == 0:
            return changed
        de = data[idx]
        rj = row_ids[idx]
        cj = col_ids[idx]
        with np.errstate(invalid="ignore"):
            min_wo = np.where(np.isfinite(cmin[idx]), min_act[rj] - cmin[idx], min_act[rj])
            max_wo = np.where(np.isfinite(cmax[idx]), max_act[rj] - cmax[idx], max_act[rj])
        lo_r = row_lb[rj]
        hi_r = row_ub[rj]
        with np.errstate(invalid="ignore", divide="ignore"):
            res_hi = (hi_r - min_wo) / de
            res_lo = (lo_r - max_wo) / de
        valid_hi = np.isfinite(hi_r) & np.isfinite(min_wo)
        valid_lo = np.isfinite(lo_r) & np.isfinite(max_wo)
        pos_e = de > 0
        imp_hi = np.full(idx.size, np.inf)
        imp_lo = np.full(idx.size, -np.inf)
        take = valid_hi & pos_e
        imp_hi[take] = res_hi[take]
        take = valid_hi & ~pos_e
        imp_lo[take] = res_hi[take]
        take = valid_lo & pos_e
        imp_lo[take] = np.maximum(imp_lo[take], res_lo[take])
        take = valid_lo & ~pos_e
        imp_hi[take] = np.minimum(imp_hi[take], res_lo[take])
        imp_lo = np.where(np.isnan(imp_lo), -np.inf, imp_lo)
        imp_hi = np.where(np.isnan(imp_hi), np.inf, imp_hi)
        best_lo = np.full(n, -np.inf)
        best_hi = np.full(n, np.inf)
        np.maximum.at(best_lo, cj, imp_lo)
        np.minimum.at(best_hi, cj, imp_hi)
        raise_lo = col_active & (best_lo > col_lb + _TIGHTEN_TOL)
        drop_hi = col_active & (best_hi < col_ub - _TIGHTEN_TOL)
        new_lb = np.where(integer, np.ceil(best_lo - _FEAS_TOL), best_lo)
        new_ub = np.where(integer, np.floor(best_hi + _FEAS_TOL), best_hi)
        col_lb[raise_lo] = new_lb[raise_lo]
        col_ub[drop_hi] = new_ub[drop_hi]
        tightened = int(raise_lo.sum()) + int(drop_hi.sum())
        bounds_tightened += tightened
        if tightened:
            changed = True
            if np.any(col_active & (col_lb > col_ub + _FEAS_TOL)):
                infeasible = True
        return changed

    changed = True
    while changed and rounds < _MAX_ROUNDS and not infeasible:
        rounds += 1
        changed = False
        changed |= round_integer_bounds()
        if infeasible:
            break
        changed |= fold_singleton_rows()
        if infeasible:
            break
        changed |= substitute_fixed_cols()
        changed |= sweep_rows()
        if infeasible:
            break

    result_template = dict(
        rows_removed=rows_removed,
        cols_fixed=cols_fixed,
        bounds_tightened=bounds_tightened,
        rounds=rounds,
    )
    if infeasible:
        return PresolveResult(
            status=SolveStatus.INFEASIBLE,
            form=form,
            kept_cols=np.arange(n),
            fixed_values=np.zeros(n),
            **result_template,
        )

    kept_cols = np.nonzero(col_active)[0]
    kept_rows = np.nonzero(row_active)[0]
    reduced = StandardForm(
        c=c[kept_cols],
        c0=c0,
        a=a[kept_rows][:, kept_cols].tocsr(),
        row_lb=row_lb[kept_rows],
        row_ub=row_ub[kept_rows],
        col_lb=col_lb[kept_cols],
        col_ub=col_ub[kept_cols],
        integer_mask=integer[kept_cols],
    )
    return PresolveResult(
        status=None,
        form=reduced,
        kept_cols=kept_cols,
        fixed_values=fixed_values,
        **result_template,
    )
