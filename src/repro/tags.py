"""Container tags and tag cardinality (paper §4.1).

Tags are the mechanism by which Medea constraints refer to containers of the
same or different — possibly not yet deployed — applications.  A container
request carries a set of tags; the *node tag set* 𝒯n is the union of tags of
containers currently running on node ``n``, and the *tag cardinality*
γn(t) counts occurrences of tag ``t`` on ``n``.  Both generalise to arbitrary
node sets (racks, upgrade domains, ...).

This module implements tags as plain strings with an optional ``ns:value``
namespace convention and provides :class:`TagMultiset`, the multiset that
backs γ for nodes and node groups.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

__all__ = [
    "NODE_SCOPE",
    "RACK_SCOPE",
    "APP_ID_NAMESPACE",
    "app_id_tag",
    "is_namespaced",
    "tag_namespace",
    "validate_tag",
    "TagMultiset",
]

APP_ID_NAMESPACE = "appID"

#: Predefined node-group names (paper §4.1); defined here, at the root of the
#: dependency graph, because both the cluster topology and the constraint
#: model refer to them.
NODE_SCOPE = "node"
RACK_SCOPE = "rack"

# Tags are short identifiers; we forbid whitespace and the comma used by
# constraint serialisation.  A single ":" separates namespace from value.
_FORBIDDEN = set(" \t\n\r,{}")


def validate_tag(tag: str) -> str:
    """Return ``tag`` if well-formed, raise ``ValueError`` otherwise."""
    if not tag:
        raise ValueError("tag must be a non-empty string")
    if any(ch in _FORBIDDEN for ch in tag):
        raise ValueError(f"tag {tag!r} contains forbidden characters")
    if tag.count(":") > 1:
        raise ValueError(f"tag {tag!r} has more than one namespace separator")
    if tag.startswith(":") or tag.endswith(":"):
        raise ValueError(f"tag {tag!r} has an empty namespace or value")
    return tag


def is_namespaced(tag: str) -> bool:
    return ":" in tag


def tag_namespace(tag: str) -> str | None:
    """The namespace part of ``tag`` or ``None`` if un-namespaced."""
    if ":" not in tag:
        return None
    return tag.split(":", 1)[0]


def app_id_tag(app_id: str) -> str:
    """The predefined per-application tag automatically attached to each
    container (paper §4.2 footnote 5)."""
    return f"{APP_ID_NAMESPACE}:{app_id}"


class TagMultiset:
    """A multiset of tags implementing the tag cardinality function γ.

    The paper defines, for node ``n``, the tag set 𝒯n and cardinality
    γn : 𝒯n → N.  Allocating a container *adds* its tags; releasing it
    *removes* them.  Node-set tag sets 𝒯𝒮 are unions over members, which is
    multiset *sum* for cardinality purposes (the worked rack example in §4.1
    has γr1(hb)=3 from γn1(hb)=2 and γn2(hb)=1).
    """

    __slots__ = ("_counts",)

    def __init__(self, tags: Iterable[str] = ()) -> None:
        self._counts: Counter[str] = Counter()
        for tag in tags:
            self.add(tag)

    # -- mutation -----------------------------------------------------------

    def add(self, tag: str, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        validate_tag(tag)
        if count:
            self._counts[tag] += count

    def add_all(self, tags: Iterable[str]) -> None:
        for tag in tags:
            self.add(tag)

    def remove(self, tag: str, count: int = 1) -> None:
        """Remove ``count`` occurrences of ``tag``.

        Raises ``KeyError`` if fewer than ``count`` occurrences exist: a
        release that does not match a prior allocation is a bookkeeping bug
        and must not pass silently.
        """
        have = self._counts.get(tag, 0)
        if have < count:
            raise KeyError(f"cannot remove {count} x {tag!r}: only {have} present")
        if have == count:
            del self._counts[tag]
        else:
            self._counts[tag] -= count

    def remove_all(self, tags: Iterable[str]) -> None:
        for tag in tags:
            self.remove(tag)

    # -- queries ------------------------------------------------------------

    def cardinality(self, tag: str) -> int:
        """γ(tag): number of occurrences (0 if absent)."""
        return self._counts.get(tag, 0)

    def min_cardinality(self, tags: Iterable[str]) -> int:
        """Cardinality of a *conjunction* of tags.

        A conjunction such as ``hb ∧ mem`` is satisfied by containers that
        carry *all* the tags; without per-container bookkeeping at the group
        level the tightest sound count is the minimum of the individual
        cardinalities (exact when each tag combination is emitted by one
        container role, which holds for all constraints in the paper).
        """
        return min((self.cardinality(t) for t in tags), default=0)

    def __contains__(self, tag: str) -> bool:
        return tag in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def __len__(self) -> int:
        """Number of *distinct* tags (|𝒯|)."""
        return len(self._counts)

    def total(self) -> int:
        """Total occurrences across all tags."""
        return sum(self._counts.values())

    def distinct(self) -> frozenset[str]:
        """The tag set 𝒯 as a frozen set."""
        return frozenset(self._counts)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    # -- algebra ------------------------------------------------------------

    def union_sum(self, other: "TagMultiset") -> "TagMultiset":
        """Multiset sum — the group-level γ𝒮 of two disjoint node sets."""
        merged = TagMultiset()
        merged._counts = self._counts + other._counts
        return merged

    def copy(self) -> "TagMultiset":
        dup = TagMultiset()
        dup._counts = Counter(self._counts)
        return dup

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TagMultiset):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}:{c}" for t, c in sorted(self._counts.items()))
        return f"TagMultiset({{{inner}}})"
