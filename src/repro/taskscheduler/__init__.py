"""Task-based schedulers (YARN Capacity / Fair / FIFO)."""

from __future__ import annotations

from .base import PlacementConflictError, TaskAllocation, TaskBasedScheduler, TASK_TAG
from .capacity import CapacityScheduler
from .fair import FairScheduler
from .fifo import FifoScheduler
from .queues import LeafQueue, QueueConfig, QueueSystem

__all__ = [
    "TASK_TAG",
    "PlacementConflictError",
    "TaskAllocation",
    "TaskBasedScheduler",
    "CapacityScheduler",
    "FairScheduler",
    "FifoScheduler",
    "LeafQueue",
    "QueueConfig",
    "QueueSystem",
]
