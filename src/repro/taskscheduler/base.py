"""Task-based scheduler interface (the second half of the two-scheduler design).

The task-based scheduler is the *only* component that performs actual
allocations (paper §3): LRA placements computed by the LRA scheduler are
handed to it as placement hints (:meth:`apply_lra_placement`), and plain
task requests are allocated directly on node heartbeats, YARN-style.  This
single-allocator property is what lets Medea avoid the conflicting-placement
problem of multi-level schedulers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable

from ..cluster.resources import Resource
from ..cluster.state import ClusterState
from ..core.requests import TaskRequest
from ..core.scheduler import ContainerPlacement
from ..obs.events import EventKind
from ..obs.metrics import Metrics, get_metrics
from ..obs.trace import Tracer, get_tracer
from .queues import QueueConfig, QueueSystem

__all__ = ["TaskAllocation", "PlacementConflictError", "TaskBasedScheduler"]

#: Tag automatically attached to short-running task containers so metrics can
#: tell them apart from LRA containers.
TASK_TAG = "task"


@dataclass(frozen=True)
class TaskAllocation:
    """A task container successfully allocated on a node."""

    task_id: str
    app_id: str
    node_id: str
    resource: Resource
    submit_time: float
    allocation_time: float

    @property
    def latency_s(self) -> float:
        return self.allocation_time - self.submit_time


class PlacementConflictError(RuntimeError):
    """Raised when an LRA placement hint can no longer be honoured because
    the cluster state changed between decision and allocation (paper §5.4);
    Medea's policy is to resubmit the LRA."""


class TaskBasedScheduler(abc.ABC):
    """Heartbeat-driven allocator for short-running containers."""

    name = "task-based"

    def __init__(
        self,
        state: ClusterState,
        queue_configs: Iterable[QueueConfig] = (),
        *,
        tracer: Tracer | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        self.state = state
        cluster_mem = state.topology.total_capacity().memory_mb
        self.queues = QueueSystem(queue_configs, cluster_mem)
        #: task_id -> submit time for everything submitted but not allocated.
        self._submit_times: dict[str, float] = {}
        #: task_id -> queue name, kept until release for capacity refunds.
        self._task_queue: dict[str, str] = {}
        self.completed_allocations: list[TaskAllocation] = []
        #: Total allocations ever made (kept even when ``retain_completed``
        #: is off — million-lifecycle runs cannot afford the record list).
        self.completed_count = 0
        #: When False, :attr:`completed_allocations` stays empty and only
        #: the counter/metrics channels record per-task outcomes.
        self.retain_completed = True
        #: Queued tasks carrying locality preferences.  While zero, skipping
        #: a heartbeat that cannot possibly allocate (see
        #: :meth:`min_head_demand`) is free of side effects; delay
        #: scheduling makes skip counting observable otherwise.
        self._pending_locality = 0
        #: Explicit tracer/metrics; ``None`` falls back to the ambient ones.
        self._tracer = tracer
        self._metrics = metrics

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def metrics(self) -> Metrics:
        return self._metrics if self._metrics is not None else get_metrics()

    # -- task path -------------------------------------------------------------

    def submit(self, task: TaskRequest, now: float = 0.0) -> None:
        self.queues.enqueue(task)
        self._submit_times[task.task_id] = now
        self._task_queue[task.task_id] = task.queue
        if task.locality:
            self._pending_locality += 1
        self.metrics.counter("task_submitted_total").inc(queue=task.queue)
        tracer = self.tracer
        if tracer.enabled and tracer.wants(EventKind.TASK_SUBMIT, task.task_id):
            tracer.emit(
                EventKind.TASK_SUBMIT,
                time=now,
                data={"task_id": task.task_id, "queue": task.queue},
            )

    def pending_tasks(self) -> int:
        return self.queues.pending_count()

    def demand_bound_safe(self) -> bool:
        """True when the caller may skip heartbeats for nodes that cannot
        fit :meth:`min_head_demand` without changing behaviour.  Requires
        no queued locality preferences: delay scheduling counts skipped
        offers inside ``_select_task``, so such heartbeats have observable
        side effects even when nothing is allocated."""
        return self._pending_locality == 0

    def min_head_demand(self) -> tuple[int, int] | None:
        """Element-wise minimum ``(memory_mb, vcores)`` over the heads of
        the non-empty queues, or ``None`` when nothing is pending.

        Every ``_select_task`` implementation only ever returns a queue
        head, so a node whose free vector is below this bound in either
        dimension cannot receive an allocation this heartbeat — a sound
        (possibly loose) skip test for :meth:`MedeaScheduler.heartbeat_all`.
        """
        min_mem: int | None = None
        min_vc = 0
        for queue in self.queues.nonempty_queues():
            task = queue.head()
            if task is None:
                continue
            resource = task.resource
            if min_mem is None:
                min_mem = resource.memory_mb
                min_vc = resource.vcores
            else:
                min_mem = min(min_mem, resource.memory_mb)
                min_vc = min(min_vc, resource.vcores)
        if min_mem is None:
            return None
        return (min_mem, min_vc)

    def handle_heartbeat(self, node_id: str, now: float) -> list[TaskAllocation]:
        """Allocate queued tasks onto the heartbeating node until it is full
        or no queue can use it.  Returns the new allocations."""
        node = self.state.topology.node(node_id)
        allocations: list[TaskAllocation] = []
        while node.available:
            task = self._select_task(node_id)
            if task is None:
                break
            if not node.can_fit(task.resource):
                break
            queue = self.queues.queue(task.queue)
            queue.pop_head()
            if task.locality:
                self._pending_locality -= 1
            queue.charge(task.resource)
            self.state.allocate(
                task.task_id,
                node_id,
                task.resource,
                (TASK_TAG,),
                task.app_id,
                long_running=False,
            )
            allocation = TaskAllocation(
                task_id=task.task_id,
                app_id=task.app_id,
                node_id=node_id,
                resource=task.resource,
                submit_time=self._submit_times.pop(task.task_id, now),
                allocation_time=now,
            )
            allocations.append(allocation)
            self.completed_count += 1
            if self.retain_completed:
                self.completed_allocations.append(allocation)
            self.metrics.counter("task_allocated_total").inc(queue=task.queue)
            self.metrics.timer("task_queue_latency_seconds").observe(
                allocation.latency_s, queue=task.queue
            )
        tracer = self.tracer
        if tracer.enabled:
            for allocation in allocations:
                if not tracer.wants(EventKind.TASK_ALLOCATE, allocation.task_id):
                    continue
                tracer.emit(
                    EventKind.TASK_ALLOCATE,
                    time=now,
                    data={
                        "task_id": allocation.task_id,
                        "node_id": allocation.node_id,
                        "queue": self._task_queue.get(allocation.task_id, ""),
                        "latency_s": allocation.latency_s,
                    },
                )
        return allocations

    def release_task(self, task_id: str, *, now: float | None = None) -> None:
        """Release a finished task container.  ``now`` stamps the trace
        event with the simulated clock so the timeline can bucket container
        churn; ``None`` (legacy callers) leaves the event unstamped."""
        placed = self.state.release(task_id)
        queue_name = self._task_queue.pop(task_id, None)
        if queue_name is not None:
            self.queues.queue(queue_name).refund(placed.allocation.resource)
        self.metrics.counter("task_released_total").inc()
        tracer = self.tracer
        if tracer.enabled and tracer.wants(EventKind.TASK_RELEASE, task_id):
            tracer.emit(
                EventKind.TASK_RELEASE,
                time=now,
                data={"task_id": task_id, "node_id": placed.node_id},
            )

    @abc.abstractmethod
    def _select_task(self, node_id: str) -> TaskRequest | None:
        """Pick the next queued task this node should serve (without
        dequeuing it), or ``None`` if nothing is eligible."""

    # -- LRA path ------------------------------------------------------------------

    def apply_lra_placement(self, placement: ContainerPlacement) -> None:
        """Perform the actual allocation for an LRA placement hint.

        Raises :class:`PlacementConflictError` if the target node no longer
        has room — the caller (Medea facade) resubmits the LRA.
        """
        node = self.state.topology.node(placement.node_id)
        if not node.can_fit(placement.resource):
            raise PlacementConflictError(
                f"placement of {placement.container_id} on {placement.node_id} "
                f"conflicts: need {placement.resource}, free {node.free}"
            )
        self.state.allocate(
            placement.container_id,
            placement.node_id,
            placement.resource,
            placement.tags,
            placement.app_id,
            long_running=True,
        )

    def apply_lra_placements(
        self, placements: Iterable[ContainerPlacement]
    ) -> list[ContainerPlacement]:
        """Apply a batch atomically: on conflict, roll back the containers
        already applied from this batch and re-raise.  The Medea facade
        calls this once per application so a conflict rejects only the
        affected LRA."""
        applied: list[ContainerPlacement] = []
        try:
            for placement in placements:
                self.apply_lra_placement(placement)
                applied.append(placement)
        except PlacementConflictError:
            for placement in applied:
                self.state.release(placement.container_id)
            self.metrics.counter("task_lra_apply_conflicts_total").inc()
            raise
        return applied
