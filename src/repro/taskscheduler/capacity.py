"""Capacity Scheduler — the task-based scheduler Medea uses by default (§6).

YARN's Capacity Scheduler orders queues by how far below their guaranteed
capacity they are (least-served first) and serves each leaf queue FIFO,
honouring a task's locality preferences with delay scheduling: a task with
preferences skips a bounded number of non-matching heartbeats before
relaxing to node → rack → any.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.requests import TaskRequest
from .base import TaskBasedScheduler

__all__ = ["CapacityScheduler"]


class CapacityScheduler(TaskBasedScheduler):
    name = "capacity"

    #: Heartbeats a locality-constrained task waits before accepting any node.
    locality_delay = 3

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._skip_counts: defaultdict[str, int] = defaultdict(int)

    def _select_task(self, node_id: str) -> TaskRequest | None:
        node = self.state.topology.node(node_id)
        for queue in sorted(
            self.queues.nonempty_queues(), key=lambda q: q.utilization()
        ):
            task = queue.head()
            if task is None:
                continue
            if not queue.can_use(task.resource):
                continue
            if self._locality_ok(task, node_id, node.rack):
                self._skip_counts.pop(task.task_id, None)
                return task
            self._skip_counts[task.task_id] += 1
        return None

    def _locality_ok(self, task: TaskRequest, node_id: str, rack: str) -> bool:
        if not task.locality:
            return True
        if node_id in task.locality or rack in task.locality:
            return True
        # Delay scheduling: relax to "any node" after enough skipped offers.
        return self._skip_counts[task.task_id] >= self.locality_delay
