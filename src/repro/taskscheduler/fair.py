"""Fair Scheduler — drop-in alternative task-based scheduler (paper §6:
"Fair Scheduler can be used instead, simply by changing a configuration
parameter").

Queues are served in max-min fair order by dominant resource share relative
to their fair share of the cluster, with FIFO ordering inside each queue.
"""

from __future__ import annotations

from ..cluster.resources import Resource
from ..core.requests import TaskRequest
from .base import TaskBasedScheduler

__all__ = ["FairScheduler"]


class FairScheduler(TaskBasedScheduler):
    name = "fair"

    def _select_task(self, node_id: str) -> TaskRequest | None:
        node = self.state.topology.node(node_id)
        total = self.state.topology.total_capacity()
        candidates = []
        for queue in self.queues.nonempty_queues():
            task = queue.head()
            if task is None or not queue.can_use(task.resource):
                continue
            used = Resource(queue.used_mb, 0)
            share = used.dominant_share(total)
            fair_share = queue.config.capacity_fraction
            # Deficit-ordered: most under-served queue (share/fair) first.
            ratio = share / fair_share if fair_share > 0 else float("inf")
            candidates.append((ratio, queue.name, task))
        if not candidates:
            return None
        candidates.sort(key=lambda item: (item[0], item[1]))
        return candidates[0][2]
