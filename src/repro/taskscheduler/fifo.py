"""FIFO scheduler — the simplest task-based scheduler; useful as a baseline
and in unit tests where queue policy is irrelevant."""

from __future__ import annotations

from ..core.requests import TaskRequest
from .base import TaskBasedScheduler

__all__ = ["FifoScheduler"]


class FifoScheduler(TaskBasedScheduler):
    name = "fifo"

    def _select_task(self, node_id: str) -> TaskRequest | None:
        for queue in self.queues.nonempty_queues():
            task = queue.head()
            if task is not None and queue.can_use(task.resource):
                return task
        return None
