"""Hierarchical scheduler queues (YARN-style).

The task-based scheduler organises applications into queues with guaranteed
capacities (fractions of the cluster) and optional maximum capacities.  We
model the common two-level layout: a root queue with leaf queues under it.
Capacity accounting is in memory MB, YARN's primary scheduling dimension.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable

from ..cluster.resources import Resource
from ..core.requests import TaskRequest

__all__ = ["QueueConfig", "LeafQueue", "QueueSystem"]


@dataclass(frozen=True)
class QueueConfig:
    """Static configuration of one leaf queue."""

    name: str
    capacity_fraction: float
    max_capacity_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.capacity_fraction <= 1.0:
            raise ValueError(f"queue {self.name}: capacity must be in (0, 1]")
        if self.max_capacity_fraction < self.capacity_fraction:
            raise ValueError(
                f"queue {self.name}: max capacity below guaranteed capacity"
            )


class LeafQueue:
    """A FIFO leaf queue with capacity accounting."""

    def __init__(self, config: QueueConfig, cluster_memory_mb: int) -> None:
        self.config = config
        self.guaranteed_mb = int(config.capacity_fraction * cluster_memory_mb)
        self.max_mb = int(config.max_capacity_fraction * cluster_memory_mb)
        self.used_mb = 0
        self.pending: Deque[TaskRequest] = deque()

    @property
    def name(self) -> str:
        return self.config.name

    def utilization(self) -> float:
        """Used capacity relative to the guarantee (the Capacity Scheduler's
        ordering key — least-served queue first)."""
        if self.guaranteed_mb == 0:
            return float("inf")
        return self.used_mb / self.guaranteed_mb

    def can_use(self, demand: Resource) -> bool:
        return self.used_mb + demand.memory_mb <= self.max_mb

    def charge(self, demand: Resource) -> None:
        self.used_mb += demand.memory_mb

    def refund(self, demand: Resource) -> None:
        self.used_mb = max(0, self.used_mb - demand.memory_mb)

    def enqueue(self, task: TaskRequest) -> None:
        self.pending.append(task)

    def head(self) -> TaskRequest | None:
        return self.pending[0] if self.pending else None

    def pop_head(self) -> TaskRequest:
        return self.pending.popleft()

    def __len__(self) -> int:
        return len(self.pending)


class QueueSystem:
    """The root queue and its leaves."""

    def __init__(
        self, configs: Iterable[QueueConfig], cluster_memory_mb: int
    ) -> None:
        configs = list(configs)
        if not configs:
            configs = [QueueConfig("default", 1.0)]
        total = sum(c.capacity_fraction for c in configs)
        if total > 1.0 + 1e-9:
            raise ValueError(f"queue capacities sum to {total:.3f} > 1")
        self.queues: dict[str, LeafQueue] = {
            c.name: LeafQueue(c, cluster_memory_mb) for c in configs
        }

    def queue(self, name: str) -> LeafQueue:
        try:
            return self.queues[name]
        except KeyError:
            raise KeyError(
                f"unknown queue {name!r} (known: {sorted(self.queues)})"
            ) from None

    def enqueue(self, task: TaskRequest) -> None:
        self.queue(task.queue).enqueue(task)

    def pending_count(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def nonempty_queues(self) -> list[LeafQueue]:
        return [q for q in self.queues.values() if len(q) > 0]
