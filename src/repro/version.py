"""Build identity derived from the packaging metadata.

One authority for "which build is this": the installed distribution
metadata when the package is installed (``pip install -e .`` in CI), the
adjacent ``pyproject.toml`` when running from a source checkout with
``PYTHONPATH=src``.  Consumed by ``repro --version``, the telemetry
server's ``Server:`` banner, and the ``repro watch`` ``User-Agent`` —
so scraped endpoints identify the exact build that produced a series.
"""

from __future__ import annotations

import re
from functools import lru_cache
from pathlib import Path

__all__ = ["DIST_NAME", "get_version", "build_info", "server_banner", "user_agent"]

#: Distribution name in pyproject.toml.
DIST_NAME = "repro"

#: Fallback when neither distribution metadata nor pyproject.toml exists
#: (e.g. a vendored single-directory copy of src/repro).
_FALLBACK_VERSION = "0+unknown"


def _version_from_pyproject() -> str | None:
    """Parse ``version = "..."`` out of the checkout's pyproject.toml."""
    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        text = pyproject.read_text(encoding="utf-8")
    except OSError:
        return None
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE)
    return match.group(1) if match else None


@lru_cache(maxsize=1)
def get_version() -> str:
    """The build's version string (metadata → pyproject → fallback)."""
    try:
        from importlib import metadata

        return metadata.version(DIST_NAME)
    except Exception:  # PackageNotFoundError, broken metadata backends
        pass
    return _version_from_pyproject() or _FALLBACK_VERSION


def build_info() -> dict[str, str]:
    """Deterministic name/version record embedded in served snapshots."""
    return {"name": DIST_NAME, "version": get_version()}


def server_banner() -> str:
    """``Server:`` header value for the telemetry endpoint."""
    return f"{DIST_NAME}/{get_version()}"


def user_agent(component: str = "cli") -> str:
    """``User-Agent`` for outbound HTTP (``repro watch`` polling)."""
    return f"{DIST_NAME}-{component}/{get_version()}"
