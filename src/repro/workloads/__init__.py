"""Synthetic workload generators (GridMix, Google trace, YCSB, LRA populations)."""

from __future__ import annotations

from .googletrace import GoogleTraceConfig, generate_trace
from .gridmix import GridMixConfig, fill_cluster, generate_tasks
from .lra_gen import complexity_population, hbase_population, population_for_utilization
from .ycsb import YCSB_WORKLOADS, YcsbWorkload, workload

__all__ = [
    "GoogleTraceConfig",
    "generate_trace",
    "GridMixConfig",
    "fill_cluster",
    "generate_tasks",
    "complexity_population",
    "hbase_population",
    "population_for_utilization",
    "YCSB_WORKLOADS",
    "YcsbWorkload",
    "workload",
]
