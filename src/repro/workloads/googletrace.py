"""Synthetic Google-cluster-trace task stream (Fig. 11c substitute).

The paper replays the 2011 Google cluster trace sped up 200×.  The trace is
not redistributable here, so we generate a stream with its well-documented
shape: bursty arrivals (exponential inter-arrivals modulated by an on/off
burst process), Pareto-ish task durations dominated by sub-minute tasks,
and small, varied container sizes.  The 200× speedup is a parameter.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterator

from ..cluster.resources import Resource
from ..core.requests import TaskRequest

__all__ = ["GoogleTraceConfig", "generate_trace"]



@dataclass(frozen=True)
class GoogleTraceConfig:
    seed: int = 29
    #: Original-trace mean inter-arrival (seconds); divided by speedup.
    mean_interarrival_s: float = 20.0
    speedup: float = 200.0
    #: Pareto shape for durations (heavy tail) and minimum duration.
    duration_alpha: float = 1.5
    duration_min_s: float = 5.0
    #: Burstiness: probability of staying in a burst, and burst rate boost.
    burst_enter: float = 0.05
    burst_exit: float = 0.3
    burst_factor: float = 8.0
    queue: str = "default"


_SIZES = [Resource(512, 1), Resource(1024, 1), Resource(2048, 1), Resource(4096, 2)]
_SIZE_WEIGHTS = [0.45, 0.35, 0.15, 0.05]


def generate_trace(
    config: GoogleTraceConfig = GoogleTraceConfig(),
    *,
    count: int,
) -> Iterator[tuple[float, TaskRequest]]:
    """Yield ``count`` (arrival_time, task) pairs at the sped-up timescale."""
    rng = random.Random(config.seed)
    # Per-invocation numbering: same seed => same ids, regardless of how
    # many streams were generated earlier in the process.
    ids = itertools.count(1)
    now = 0.0
    bursting = False
    base_rate = config.speedup / config.mean_interarrival_s  # arrivals/sec
    for _ in range(count):
        if bursting:
            if rng.random() < config.burst_exit:
                bursting = False
        else:
            if rng.random() < config.burst_enter:
                bursting = True
        rate = base_rate * (config.burst_factor if bursting else 1.0)
        now += rng.expovariate(rate)
        duration = config.duration_min_s * rng.paretovariate(config.duration_alpha)
        # Durations shrink with the speedup too (trace replay semantics).
        duration /= config.speedup
        job = f"goog-{next(ids):07d}"
        yield now, TaskRequest(
            task_id=f"{job}/t0",
            app_id=job,
            resource=rng.choices(_SIZES, _SIZE_WEIGHTS)[0],
            duration_s=duration,
            queue=config.queue,
        )
