"""GridMix-style synthetic batch workload generator.

The paper uses GridMix to generate Tez batch jobs "resembling some of our
production workloads" as background load (5%–70% of cluster memory in the
various experiments).  We reproduce the statistical shape: jobs with a
heavy-tailed number of tasks, lognormal task durations in the tens of
seconds, and small containers (<1 GB, 1 CPU>), arriving in a Poisson
process.

Two entry points:

* :func:`generate_tasks` — an open stream of :class:`TaskRequest` for
  latency experiments (Figs. 7d, 11c);
* :func:`fill_cluster` — immediately allocate batch containers onto a
  cluster state until a target memory utilisation is reached (background
  load for the placement-quality experiments, Figs. 2, 9, 10).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterator

from ..cluster.resources import Resource
from ..cluster.state import ClusterState
from ..core.requests import TaskRequest
from ..taskscheduler.base import TASK_TAG

__all__ = ["GridMixConfig", "generate_tasks", "fill_cluster"]

# Task/job ids are numbered per generator invocation, NOT from a
# process-global counter: same seed + same knobs must yield the exact
# same stream (ids included) no matter how many runs preceded it in the
# process — the determinism contract `repro diff` verifies.


@dataclass(frozen=True)
class GridMixConfig:
    """Statistical knobs for the batch workload."""

    seed: int = 13
    #: Mean task inter-arrival time (Poisson process).
    mean_interarrival_s: float = 0.5
    #: Lognormal task duration parameters (median ~20 s, heavy tail).
    duration_mu: float = 3.0
    duration_sigma: float = 0.8
    task_resource: Resource = Resource(1024, 1)
    #: Tasks per job (geometric, mean ~1/p).
    tasks_per_job_p: float = 0.1
    queue: str = "default"


def generate_tasks(
    config: GridMixConfig = GridMixConfig(),
    *,
    count: int | None = None,
    horizon_s: float | None = None,
) -> Iterator[tuple[float, TaskRequest]]:
    """Yield ``(arrival_time, task)`` pairs until ``count`` tasks or the
    time ``horizon_s`` is exhausted (at least one bound is required)."""
    if count is None and horizon_s is None:
        raise ValueError("need count or horizon_s to bound the stream")
    rng = random.Random(config.seed)
    ids = itertools.count(1)
    now = 0.0
    emitted = 0
    job_remaining = 0
    job_id = ""
    while True:
        if count is not None and emitted >= count:
            return
        now += rng.expovariate(1.0 / config.mean_interarrival_s)
        if horizon_s is not None and now > horizon_s:
            return
        if job_remaining == 0:
            job_id = f"gridmix-{next(ids):06d}"
            # Geometric number of tasks per job (>= 1).
            job_remaining = 1
            while rng.random() > config.tasks_per_job_p:
                job_remaining += 1
        duration = rng.lognormvariate(config.duration_mu, config.duration_sigma)
        task = TaskRequest(
            task_id=f"{job_id}/t{next(ids):07d}",
            app_id=job_id,
            resource=config.task_resource,
            duration_s=duration,
            queue=config.queue,
        )
        job_remaining -= 1
        emitted += 1
        yield now, task


def fill_cluster(
    state: ClusterState,
    target_memory_fraction: float,
    *,
    config: GridMixConfig = GridMixConfig(),
    app_id: str = "gridmix-bg",
    fill_resource: Resource = Resource(2048, 1),
) -> int:
    """Allocate batch containers onto random nodes until cluster memory
    utilisation reaches ``target_memory_fraction``.  Returns the number of
    containers placed.  Used to create background load deterministically
    (the paper's "GridMix jobs using X% of the cluster's memory").

    ``fill_resource`` defaults to <2 GB, 1 core> rather than the streaming
    config's 1 GB tasks: on 16 GB / 8-core nodes, 1 GB-per-core tasks
    exhaust vcores at 50% memory and higher targets become unreachable.
    """
    if not 0.0 <= target_memory_fraction < 1.0:
        raise ValueError("target fraction must be in [0, 1)")
    rng = random.Random(config.seed)
    ids = itertools.count(1)
    nodes = [n for n in state.topology if n.available]
    placed = 0
    attempts = 0
    max_attempts = len(nodes) * 1000
    while state.cluster_memory_utilization() < target_memory_fraction:
        attempts += 1
        if attempts > max_attempts:
            break  # cluster cannot be filled further with this container size
        node = rng.choice(nodes)
        if not node.can_fit(fill_resource):
            continue
        state.allocate(
            f"{app_id}/t{next(ids):07d}",
            node.node_id,
            fill_resource,
            (TASK_TAG,),
            app_id,
            long_running=False,
        )
        placed += 1
    return placed
