"""LRA population generators for the global-objectives experiments (Fig. 9).

Three generators:

* :func:`hbase_population` — N HBase instances with the paper's §7.1
  constraints (the workload of Figs. 9a/9b/9c, 10a/10b);
* :func:`population_for_utilization` — enough instances to hit a target
  cluster memory utilisation;
* :func:`complexity_population` — groups of LRAs linked by
  inter-application affinity/cardinality constraints involving up to X
  applications (the "complexity" axis of Fig. 9d).
"""

from __future__ import annotations

import random
from typing import Sequence

from ..cluster.resources import Resource
from ..cluster.topology import ClusterTopology
from ..core.constraints import PlacementConstraint, affinity, cardinality
from ..core.requests import ContainerRequest, LRARequest
from ..tags import app_id_tag
from ..apps.hbase import hbase_instance

__all__ = [
    "hbase_population",
    "population_for_utilization",
    "complexity_population",
]


def hbase_population(
    count: int,
    *,
    region_servers: int = 10,
    max_rs_per_node: int = 2,
    prefix: str = "hb",
) -> list[LRARequest]:
    """``count`` HBase instances with the §7.1 default constraints."""
    return [
        hbase_instance(
            f"{prefix}-{i:04d}",
            region_servers=region_servers,
            max_rs_per_node=max_rs_per_node,
        )
        for i in range(count)
    ]


def bulk_lra(app_id: str, *, workers: int = 6, memory_mb: int = 4096) -> LRARequest:
    """An unconstrained, memory-heavy LRA (cache / serving style).

    Production clusters host *tens* of LRA classes (§2.1); most carry no or
    trivial placement constraints.  Bulk LRAs stand in for that mass and
    let high-utilisation experiments stay *satisfiable*: the constrained
    HBase instances alone could not fill 90% of memory without their own
    cardinality caps making violations mathematically unavoidable for
    every scheduler.
    """
    containers = [
        ContainerRequest(f"{app_id}/b{i}", Resource(memory_mb, 1), frozenset({"bulk"}))
        for i in range(workers)
    ]
    return LRARequest(app_id, containers)


def population_for_utilization(
    topology: ClusterTopology,
    memory_fraction: float,
    *,
    region_servers: int = 10,
    max_rs_per_node: int = 2,
    prefix: str = "hb",
    constrained_memory_cap: float = 0.30,
) -> list[LRARequest]:
    """A mixed LRA population occupying ``memory_fraction`` of memory.

    Constrained HBase instances supply up to ``constrained_memory_cap`` of
    cluster memory (beyond which their own cardinality caps would make the
    workload unsatisfiable — see :func:`bulk_lra`); unconstrained bulk LRAs
    supply the rest.  The two classes are interleaved so every scheduling
    batch sees a realistic mix.
    """
    if not 0 < memory_fraction <= 1:
        raise ValueError("memory_fraction must be in (0, 1]")
    total_mb = topology.total_capacity().memory_mb
    sample = hbase_instance(
        "sizing-probe", region_servers=region_servers, max_rs_per_node=max_rs_per_node
    )
    per_hbase_mb = sample.total_resource().memory_mb
    hbase_fraction = min(memory_fraction, constrained_memory_cap)
    hbase_count = max(1, int(hbase_fraction * total_mb / per_hbase_mb))
    hbase = hbase_population(
        hbase_count,
        region_servers=region_servers,
        max_rs_per_node=max_rs_per_node,
        prefix=prefix,
    )
    remaining_mb = max(0.0, (memory_fraction - hbase_fraction) * total_mb)
    sample_bulk = bulk_lra("bulk-probe")
    per_bulk_mb = sample_bulk.total_resource().memory_mb
    bulk = [
        bulk_lra(f"{prefix}-bulk-{i:04d}")
        for i in range(int(remaining_mb / per_bulk_mb))
    ]
    # Interleave: constrained and bulk apps arrive mixed, not in phases.
    population: list[LRARequest] = []
    h, b = 0, 0
    while h < len(hbase) or b < len(bulk):
        if h < len(hbase):
            population.append(hbase[h])
            h += 1
        for _ in range(2):
            if b < len(bulk):
                population.append(bulk[b])
                b += 1
    return population


def complexity_population(
    groups: int,
    complexity: int,
    *,
    containers_per_lra: int = 10,
    resource: Resource = Resource(2048, 1),
    seed: int = 0,
    prefix: str = "cx",
) -> list[LRARequest]:
    """Groups of ``complexity`` LRAs tied together by inter-application
    constraints (Fig. 9d's complexity axis).

    Within each group, application *i* carries a constraint toward
    application *i+1*'s containers — alternating between rack affinity and
    node cardinality, chosen pseudo-randomly — so satisfying one LRA's
    constraints requires reasoning about up to ``complexity`` applications
    at once.
    """
    if complexity < 1:
        raise ValueError("complexity must be >= 1")
    rng = random.Random(seed)
    requests: list[LRARequest] = []
    for g in range(groups):
        group_apps = [f"{prefix}-{g:03d}-{i:02d}" for i in range(complexity)]
        for i, app_id in enumerate(group_apps):
            worker_tag = f"{prefix}w"
            containers = [
                ContainerRequest(
                    f"{app_id}/w{j}", resource, frozenset({worker_tag})
                )
                for j in range(containers_per_lra)
            ]
            constraints: list[PlacementConstraint] = [
                # Local interference cap, as in the HBase template.
                cardinality(worker_tag, worker_tag, 0, 1, "node"),
            ]
            if complexity > 1:
                target_app = group_apps[(i + 1) % complexity]
                target_expr = (app_id_tag(target_app), worker_tag)
                subject_expr = (app_id_tag(app_id), worker_tag)
                if rng.random() < 0.5:
                    constraints.append(
                        affinity(subject_expr, target_expr, "rack")
                    )
                else:
                    constraints.append(
                        cardinality(subject_expr, target_expr, 0, 2, "rack")
                    )
            requests.append(LRARequest(app_id, containers, constraints))
    return requests
