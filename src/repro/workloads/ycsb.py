"""YCSB workload definitions (A–F) driving the HBase performance model.

We do not execute a billion-record dataset; what matters for relative
throughput under interference is each workload's operation mix and its
baseline rate on an uncontended region server.  Baselines are loosely
anchored to the magnitudes in the paper's Fig. 2b (tens of Kops/s for 40
instances): heavier write/scan mixes have lower base rates and higher
sensitivity to I/O interference.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["YcsbWorkload", "YCSB_WORKLOADS", "workload"]


@dataclass(frozen=True)
class YcsbWorkload:
    """One YCSB core workload."""

    name: str
    read_fraction: float
    update_fraction: float
    scan_fraction: float
    insert_fraction: float
    #: Aggregate base throughput (Kops/s) for a full, interference-free
    #: deployment of one HBase instance.
    base_kops: float
    #: Relative sensitivity of this mix to collocation interference
    #: (scan/write-heavy mixes thrash disks harder).
    interference_sensitivity: float

    def __post_init__(self) -> None:
        total = (
            self.read_fraction
            + self.update_fraction
            + self.scan_fraction
            + self.insert_fraction
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"workload {self.name}: fractions sum to {total}")


#: The six core workloads (YCSB wiki definitions), with base rates.
YCSB_WORKLOADS: dict[str, YcsbWorkload] = {
    "A": YcsbWorkload("A", 0.50, 0.50, 0.0, 0.0, base_kops=62.0, interference_sensitivity=1.0),
    "B": YcsbWorkload("B", 0.95, 0.05, 0.0, 0.0, base_kops=75.0, interference_sensitivity=0.8),
    "C": YcsbWorkload("C", 1.00, 0.00, 0.0, 0.0, base_kops=82.0, interference_sensitivity=0.7),
    "D": YcsbWorkload("D", 0.95, 0.00, 0.0, 0.05, base_kops=70.0, interference_sensitivity=0.8),
    "E": YcsbWorkload("E", 0.00, 0.00, 0.95, 0.05, base_kops=28.0, interference_sensitivity=1.3),
    "F": YcsbWorkload("F", 0.50, 0.50, 0.0, 0.0, base_kops=55.0, interference_sensitivity=1.1),
}


def workload(name: str) -> YcsbWorkload:
    try:
        return YCSB_WORKLOADS[name.upper()]
    except KeyError:
        raise KeyError(f"unknown YCSB workload {name!r} (A–F)") from None
