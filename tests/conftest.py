"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import pytest

from repro import ClusterState, ConstraintManager, build_cluster


@pytest.fixture
def small_topology():
    """Ten nodes, two racks, 16 GB / 8 cores each."""
    return build_cluster(10, racks=2, memory_mb=16 * 1024, vcores=8)


@pytest.fixture
def state(small_topology):
    return ClusterState(small_topology)


@pytest.fixture
def manager(small_topology):
    return ConstraintManager(small_topology)
