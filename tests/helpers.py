"""Shared test builders (importable, unlike conftest)."""

from __future__ import annotations

import itertools

from repro import ClusterState, ContainerRequest, LRARequest, Resource

_counter = itertools.count(1)


def make_lra(
    app_id: str | None = None,
    *,
    containers: int = 3,
    tags: set[str] | None = None,
    constraints=(),
    compound=(),
    memory_mb: int = 1024,
    vcores: int = 1,
) -> LRARequest:
    """Terse LRA builder for tests."""
    if app_id is None:
        app_id = f"t-{next(_counter):04d}"
    tag_set = frozenset(tags or {"w"})
    reqs = [
        ContainerRequest(f"{app_id}/c{i}", Resource(memory_mb, vcores), tag_set)
        for i in range(containers)
    ]
    return LRARequest(app_id, reqs, constraints, compound)


def place_all(state: ClusterState, result) -> None:
    """Apply a PlacementResult onto the state (test convenience)."""
    for p in result.placements:
        state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
