"""Tests for the LRA application templates (§7.1)."""

from __future__ import annotations

import pytest

from repro import Resource, UNBOUNDED
from repro.apps import (
    HB_MASTER,
    HB_RS,
    HB_SECONDARY,
    HB_TAG,
    HB_THRIFT,
    MEMCACHED_TAG,
    STORM_SUPERVISOR,
    STORM_TAG,
    TF_CHIEF,
    TF_PS,
    TF_TAG,
    TF_WORKER,
    hbase_instance,
    max_collocated,
    memcached_instance,
    same_rack_group,
    storm_instance,
    tensorflow_instance,
    worker_containers,
)
from repro.tags import app_id_tag


class TestCommonHelpers:
    def test_worker_containers(self):
        cs = worker_containers("app", "w", "cls", 3, Resource(1024, 1))
        assert len(cs) == 3
        assert all({"cls", "w"} <= c.tags for c in cs)
        assert len({c.container_id for c in cs}) == 3

    def test_max_collocated_encoding(self):
        c = max_collocated("w", 2)
        tc = c.tag_constraints[0]
        assert (tc.cmin, tc.cmax) == (0, 1)  # self excluded
        assert c.node_group == "node"

    def test_max_collocated_one_means_anti_affinity(self):
        tc = max_collocated("w", 1).tag_constraints[0]
        assert tc.is_anti_affinity()

    def test_max_collocated_invalid(self):
        with pytest.raises(ValueError):
            max_collocated("w", 0)

    def test_same_rack_group_encoding(self):
        c = same_rack_group(("app", "w"), 5)
        tc = c.tag_constraints[0]
        assert tc.cmin == 4 and tc.cmax == UNBOUNDED
        assert c.node_group == "rack"

    def test_same_rack_group_invalid(self):
        with pytest.raises(ValueError):
            same_rack_group(("a",), 1)


class TestHBaseTemplate:
    def test_default_shape(self):
        req = hbase_instance("hb1")
        roles = {}
        for c in req.containers:
            for tag in (HB_RS, HB_MASTER, HB_THRIFT, HB_SECONDARY):
                if tag in c.tags:
                    roles[tag] = roles.get(tag, 0) + 1
        assert roles == {HB_RS: 10, HB_MASTER: 1, HB_THRIFT: 1, HB_SECONDARY: 1}
        assert len(req.containers) == 13

    def test_resources_match_paper(self):
        req = hbase_instance("hb1")
        for c in req.containers:
            if HB_RS in c.tags:
                assert c.resource == Resource(2048, 1)
            else:
                assert c.resource == Resource(1024, 1)

    def test_app_tag_attached(self):
        req = hbase_instance("hb1")
        assert all(app_id_tag("hb1") in c.tags for c in req.containers)
        assert all(HB_TAG in c.tags for c in req.containers)

    def test_default_constraints(self):
        req = hbase_instance("hb1")
        groups = sorted(c.node_group for c in req.constraints)
        # rack affinity + node cardinality + master/thrift + master/secondary
        assert groups == ["node", "node", "node", "rack"]

    def test_constraints_disabled(self):
        req = hbase_instance("hb1", constraints_enabled=False)
        assert req.constraints == ()

    def test_no_aux(self):
        req = hbase_instance("hb1", with_aux=False, region_servers=4)
        assert len(req.containers) == 4
        assert len(req.constraints) == 2  # rack + cardinality only

    def test_single_rs_no_rack_affinity(self):
        req = hbase_instance("hb1", region_servers=1, with_aux=False)
        assert all(c.node_group != "rack" for c in req.constraints)


class TestTensorFlowTemplate:
    def test_default_shape(self):
        req = tensorflow_instance("tf1")
        workers = [c for c in req.containers if TF_WORKER in c.tags]
        ps = [c for c in req.containers if TF_PS in c.tags]
        chief = [c for c in req.containers if TF_CHIEF in c.tags]
        assert (len(workers), len(ps), len(chief)) == (8, 2, 1)

    def test_chief_resource(self):
        req = tensorflow_instance("tf1")
        chief = next(c for c in req.containers if TF_CHIEF in c.tags)
        assert chief.resource == Resource(4096, 1)

    def test_cardinality_constraint(self):
        req = tensorflow_instance("tf1", max_workers_per_node=4)
        card = next(c for c in req.constraints if c.node_group == "node")
        assert card.tag_constraints[0].cmax == 3

    def test_tagging(self):
        req = tensorflow_instance("tf1")
        assert all(TF_TAG in c.tags for c in req.containers)


class TestStormTemplates:
    def test_placement_policies(self):
        none = storm_instance("s1", placement="none")
        intra = storm_instance("s2", placement="intra")
        inter = storm_instance("s3", placement="intra-inter")
        assert len(none.constraints) == 0
        assert len(intra.constraints) == 1
        assert len(inter.constraints) == 2

    def test_intra_requires_full_collocation(self):
        req = storm_instance("s1", supervisors=5, placement="intra")
        tc = req.constraints[0].tag_constraints[0]
        assert tc.cmin == 4

    def test_inter_matches_paper_example(self):
        """Caf = {storm, {mem, 1, inf}, node}."""
        req = storm_instance("s1", placement="intra-inter")
        inter = req.constraints[1]
        assert inter.subject.tags == {STORM_TAG}
        tc = inter.tag_constraints[0]
        assert tc.c_tag.tags == {MEMCACHED_TAG}
        assert tc.cmin == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            storm_instance("s1", placement="chaotic")

    def test_supervisor_count(self):
        req = storm_instance("s1", supervisors=3)
        assert sum(1 for c in req.containers if STORM_SUPERVISOR in c.tags) == 3

    def test_memcached_single_container(self):
        req = memcached_instance("mc1")
        assert len(req.containers) == 1
        assert MEMCACHED_TAG in req.containers[0].tags
