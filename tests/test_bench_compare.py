"""Tests for the perf-regression gate (``repro.obs.bench``).

Schema-2 stats computation (with the zero-observation guard), the
baseline/current comparison semantics — the committed-tolerance contract
that an injected 2× solver-latency regression *must* fail the gate while
within-noise drift must pass — schema-1 upgrades, skip handling for
benchmarks on only one side, and the ``repro bench-compare`` CLI exit
codes.  The benchmark harness's schema-2 writer is covered too.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.cli import main as cli_main
from repro.obs.bench import (
    DEFAULT_ABS_FLOOR_S,
    DEFAULT_RATIO,
    SCHEMA_VERSION,
    attach_stats,
    compare_bench,
    compare_bench_files,
    load_bench,
    render_comparison,
    series_stats,
)


def _document(latencies):
    return attach_stats({
        "benchmarks": {
            "fig11a:MEDEA-ILP": {
                "scheduler": "MEDEA-ILP",
                "nodes": 100,
                "apps": 8,
                "series": {
                    "solver_latency_s": {
                        "t": [50.0, 100.0, 200.0, 400.0],
                        "v": list(latencies),
                    },
                },
            },
        },
    })


BASE_LATENCIES = [0.2, 0.3, 0.4, 0.5]


class TestSeriesStats:
    def test_median_and_p95(self):
        stats = series_stats([1.0, 2.0, 3.0, 4.0])
        assert stats["count"] == 4
        assert stats["median"] == pytest.approx(2.5)
        assert stats["p95"] >= stats["median"]

    def test_zero_observations_returns_none(self):
        assert series_stats([]) is None

    def test_attach_stats_skips_empty_series(self):
        document = attach_stats({
            "benchmarks": {"x": {"series": {"empty": {"t": [], "v": []}}}},
        })
        assert document["schema"] == SCHEMA_VERSION
        assert document["benchmarks"]["x"]["stats"] == {}


class TestCompareBench:
    def test_identical_runs_pass(self):
        comparison = compare_bench(
            _document(BASE_LATENCIES), _document(BASE_LATENCIES)
        )
        assert comparison.ok
        assert len(comparison.checks) == 2  # median + p95
        assert comparison.skipped == []

    def test_small_drift_within_tolerance_passes(self):
        drifted = [v * 1.2 for v in BASE_LATENCIES]
        assert compare_bench(_document(BASE_LATENCIES), _document(drifted)).ok

    def test_injected_2x_regression_fails(self):
        doubled = [v * 2.0 for v in BASE_LATENCIES]
        comparison = compare_bench(
            _document(BASE_LATENCIES), _document(doubled)
        )
        assert not comparison.ok
        assert {c.stat for c in comparison.regressions} == {"median", "p95"}
        for check in comparison.regressions:
            assert check.current > check.baseline * DEFAULT_RATIO
            assert check.ratio == pytest.approx(2.0)

    def test_improvement_passes(self):
        halved = [v * 0.5 for v in BASE_LATENCIES]
        assert compare_bench(_document(BASE_LATENCIES), _document(halved)).ok

    def test_abs_floor_absorbs_sub_ms_noise(self):
        # Sub-floor medians: even a 10x blowup stays under the absolute
        # slack, so machine jitter on trivial solves never trips the gate.
        tiny = [0.001] * 4
        noisy = [0.01] * 4
        assert compare_bench(_document(tiny), _document(noisy)).ok
        assert not compare_bench(
            _document(tiny), _document(noisy), abs_floor_s=0.0
        ).ok

    def test_missing_sides_become_skips_not_failures(self):
        base = _document(BASE_LATENCIES)
        current = copy.deepcopy(base)
        current["benchmarks"]["brand-new"] = current["benchmarks"].pop(
            "fig11a:MEDEA-ILP"
        )
        comparison = compare_bench(base, current)
        assert comparison.ok
        assert comparison.checks == []
        reasons = {(label, reason) for label, _, reason in comparison.skipped}
        assert ("fig11a:MEDEA-ILP", "missing from current run") in reasons
        assert ("brand-new", "not in baseline (new benchmark)") in reasons

    def test_to_obj_round_trips_through_json(self):
        comparison = compare_bench(
            _document(BASE_LATENCIES),
            _document([v * 2.0 for v in BASE_LATENCIES]),
        )
        obj = json.loads(json.dumps(comparison.to_obj()))
        assert obj["ok"] is False
        assert obj["abs_floor_s"] == DEFAULT_ABS_FLOOR_S
        assert len(obj["checks"]) == 2

    def test_render_names_regressions(self):
        text = render_comparison(compare_bench(
            _document(BASE_LATENCIES),
            _document([v * 2.0 for v in BASE_LATENCIES]),
        ))
        assert "REGRESSED" in text
        assert "verdict: FAIL" in text
        ok_text = render_comparison(compare_bench(
            _document(BASE_LATENCIES), _document(BASE_LATENCIES)
        ))
        assert "verdict: PASS" in ok_text


class TestLoadBench:
    def _write(self, path, document):
        path.write_text(json.dumps(document))
        return str(path)

    def test_schema1_upgraded_on_load(self, tmp_path):
        document = _document(BASE_LATENCIES)
        for entry in document["benchmarks"].values():
            entry.pop("stats")
        document["schema"] = 1
        loaded = load_bench(self._write(tmp_path / "v1.json", document))
        assert loaded["schema"] == SCHEMA_VERSION
        stats = loaded["benchmarks"]["fig11a:MEDEA-ILP"]["stats"]
        assert stats["solver_latency_s"]["count"] == 4

    def test_newer_schema_rejected(self, tmp_path):
        document = _document(BASE_LATENCIES)
        document["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer than supported"):
            load_bench(self._write(tmp_path / "future.json", document))

    def test_non_bench_document_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="benchmarks"):
            load_bench(self._write(tmp_path / "junk.json", {"foo": 1}))

    def test_compare_bench_files(self, tmp_path):
        base = self._write(tmp_path / "base.json", _document(BASE_LATENCIES))
        cur = self._write(
            tmp_path / "cur.json",
            _document([v * 2.0 for v in BASE_LATENCIES]),
        )
        assert not compare_bench_files(base, cur).ok
        assert compare_bench_files(base, base).ok


class TestBenchCompareCli:
    def _files(self, tmp_path, factor):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(_document(BASE_LATENCIES)))
        cur.write_text(json.dumps(
            _document([v * factor for v in BASE_LATENCIES])
        ))
        return str(base), str(cur)

    def test_pass_exits_zero(self, tmp_path, capsys):
        base, cur = self._files(tmp_path, 1.0)
        assert cli_main(["bench-compare", base, cur]) == 0
        assert "verdict: PASS" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        base, cur = self._files(tmp_path, 2.0)
        assert cli_main(["bench-compare", base, cur]) == 3
        assert "verdict: FAIL" in capsys.readouterr().out

    def test_custom_tolerance_flags(self, tmp_path):
        base, cur = self._files(tmp_path, 2.0)
        assert cli_main([
            "bench-compare", base, cur, "--ratio", "3.0",
        ]) == 0
        assert cli_main([
            "bench-compare", base, cur, "--ratio", "1.1",
            "--abs-floor", "0.0",
        ]) == 3

    def test_missing_file_reports_error(self, tmp_path, capsys):
        base, _ = self._files(tmp_path, 1.0)
        assert cli_main([
            "bench-compare", base, str(tmp_path / "missing.json"),
        ]) == 1
        assert "bench-compare:" in capsys.readouterr().err


class TestHarnessSchema:
    def test_write_bench_timeline_emits_schema2(self, tmp_path, monkeypatch):
        from benchmarks import harness

        monkeypatch.setattr(harness, "BENCH_TIMELINES", {
            "unit": {
                "scheduler": "Serial",
                "nodes": 10,
                "apps": 4,
                "series": {
                    "solver_latency_s": {"t": [0.0, 1.0], "v": [0.1, 0.2]},
                    "empty": {"t": [], "v": []},
                },
            },
        })
        path = harness.write_bench_timeline(str(tmp_path / "BENCH.json"))
        document = json.loads(open(path, encoding="utf-8").read())
        assert document["schema"] == SCHEMA_VERSION
        stats = document["benchmarks"]["unit"]["stats"]
        assert stats["solver_latency_s"]["median"] == pytest.approx(0.15)
        assert "empty" not in stats  # zero observations → no stats entry
        # The written document is a valid bench-compare input against itself.
        assert compare_bench_files(path, path).ok

    def test_record_benchmark_dedupes_labels(self, monkeypatch):
        from benchmarks import harness

        monkeypatch.setattr(harness, "BENCH_TIMELINES", {})
        series = {"solver_latency_s": {"t": [0.0], "v": [0.1]}}
        first = harness.record_benchmark(
            "dup", scheduler="s", nodes=1, apps=1, series=series
        )
        second = harness.record_benchmark(
            "dup", scheduler="s", nodes=1, apps=1, series=series
        )
        assert first == "dup"
        assert second == "dup #2"
        assert set(harness.BENCH_TIMELINES) == {"dup", "dup #2"}
