"""Property tests for the incrementally-maintained candidate index.

The :class:`~repro.cluster.index.CandidateIndex` is updated through node
mutation hooks on every allocate / release / availability flip.  These
tests drive arbitrary interleavings of those operations (Hypothesis
generates the op sequences) and assert the one invariant everything else
rests on: the incremental index is always *identical* to an index rebuilt
from scratch over the same topology state — same tag counts, same
free-capacity buckets, same down set.

On top of the snapshot invariant, the query surface is cross-checked
against brute-force topology scans: ``fit_node_indices`` must equal the
legacy capacity scan (in the same order), and the tag queries must match
per-node tag recomputation.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Resource, build_cluster
from repro.cluster.index import CandidateIndex
from repro.cluster.state import ClusterState

NUM_NODES = 8
TAGS = ("hbase", "master", "web", "cache")

#: One mutation op: (kind, node index, tag index, size step).
_op = st.tuples(
    st.sampled_from(["alloc", "release", "down", "up"]),
    st.integers(min_value=0, max_value=NUM_NODES - 1),
    st.integers(min_value=0, max_value=len(TAGS) - 1),
    st.integers(min_value=1, max_value=4),
)


def _build_state() -> ClusterState:
    topology = build_cluster(NUM_NODES, racks=2, memory_mb=8 * 1024, vcores=8)
    return ClusterState(topology, backend="object", index_bucket_mb=1024)


def _interpret(state: ClusterState, ops) -> None:
    """Apply an op sequence; infeasible ops degrade to no-ops so every
    generated sequence is valid."""
    live: list[str] = []
    counter = 0
    nodes = list(state.topology)
    for kind, node_i, tag_i, step in ops:
        node = nodes[node_i]
        if kind == "alloc":
            resource = Resource(step * 512, 1)
            if node.available and node.can_fit(resource):
                counter += 1
                cid = f"c{counter}"
                state.allocate(
                    cid, node.node_id, resource,
                    (TAGS[tag_i], TAGS[(tag_i + step) % len(TAGS)]),
                    f"app-{tag_i}",
                )
                live.append(cid)
        elif kind == "release" and live:
            state.release(live.pop(node_i % len(live)))
        elif kind == "down":
            node.available = False
        elif kind == "up":
            node.available = True


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(_op, max_size=40))
def test_incremental_index_equals_rebuild(ops) -> None:
    state = _build_state()
    index = state.candidate_index()
    _interpret(state, ops)
    rebuilt = CandidateIndex.rebuilt(state.topology, bucket_mb=1024)
    assert index.snapshot() == rebuilt.snapshot()


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(_op, max_size=30),
    mem=st.integers(min_value=0, max_value=10 * 1024),
    vcores=st.integers(min_value=0, max_value=10),
)
def test_fit_query_matches_topology_scan(ops, mem: int, vcores: int) -> None:
    state = _build_state()
    index = state.candidate_index()
    _interpret(state, ops)
    demand = Resource(mem, vcores)
    brute = [
        i
        for i, node in enumerate(state.topology)
        if node.available and node.can_fit(demand)
    ]
    assert index.fit_node_indices(demand) == brute
    assert index.fit_node_ids(demand) == [
        node.node_id
        for node in state.topology
        if node.available and node.can_fit(demand)
    ]


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(_op, max_size=30))
def test_tag_queries_match_node_tags(ops) -> None:
    state = _build_state()
    index = state.candidate_index()
    _interpret(state, ops)
    for tag in TAGS:
        expected_dynamic = {
            node.node_id
            for node in state.topology
            if tag in node.dynamic_tags()
        }
        expected_all = {
            node.node_id
            for node in state.topology
            if tag in node.tag_multiset()
        }
        assert index.nodes_with_tag(tag, dynamic_only=True) == expected_dynamic
        assert index.nodes_with_tag(tag) == expected_all
        for node in state.topology:
            assert index.tag_count(tag, node.node_id) == (
                node.dynamic_tags().cardinality(tag)
            )


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(_op, max_size=25))
def test_index_consistent_after_release_all(ops) -> None:
    """Releasing every container returns the index to its pristine shape."""
    state = _build_state()
    index = state.candidate_index()
    _interpret(state, ops)
    for cid in list(state.containers):
        state.release(cid)
    pristine = CandidateIndex.rebuilt(state.topology, bucket_mb=1024)
    snap = index.snapshot()
    assert snap == pristine.snapshot()
    assert snap["tags"] == {}


def test_signatures_invalidate_on_new_group() -> None:
    state = _build_state()
    index = state.candidate_index()
    first = index.signatures(("rack",))
    assert index.signatures(("rack",)) is first  # cached
    state.topology.register_group(
        "halves",
        [
            [n.node_id for n in list(state.topology)[:4]],
            [n.node_id for n in list(state.topology)[4:]],
        ],
    )
    assert index.signatures(("rack",)) is not first
