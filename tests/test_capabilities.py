"""Tests for the Table 1 capability matrix — including checks that the
rows for systems implemented here match actual scheduler behaviour."""

from __future__ import annotations

import pytest

from repro.core.capabilities import (
    TABLE_1,
    Support,
    capabilities_of,
    render_table1,
)


class TestMatrix:
    def test_nine_systems(self):
        assert len(TABLE_1) == 9
        names = [c.system for c in TABLE_1]
        assert names[0] == "YARN" and names[-1] == "Medea"

    def test_medea_full_support(self):
        medea = capabilities_of("Medea")
        assert all(
            value is Support.FULL
            for value in (
                medea.affinity, medea.anti_affinity, medea.cardinality,
                medea.intra, medea.inter, medea.high_level,
                medea.global_objectives, medea.low_latency,
            )
        )

    def test_only_medea_has_full_global_objectives(self):
        full = [c.system for c in TABLE_1 if c.global_objectives is Support.FULL]
        assert full == ["Medea"]

    def test_kubernetes_lacks_cardinality(self):
        assert capabilities_of("Kubernetes").cardinality is Support.NONE

    def test_yarn_row(self):
        yarn = capabilities_of("YARN")
        assert yarn.affinity is Support.IMPLICIT
        assert yarn.low_latency is Support.FULL
        assert yarn.inter is Support.NONE

    def test_lookup_case_insensitive(self):
        assert capabilities_of("medea").system == "Medea"

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            capabilities_of("Windows Task Scheduler")

    def test_render_contains_all_rows(self):
        text = render_table1()
        for caps in TABLE_1:
            assert caps.system in text
        assert "cardinality" in text


class TestBehaviourMatchesMatrix:
    """The matrix rows for implemented systems are checked against code."""

    def test_jkube_matches_kubernetes_row(self):
        from repro import JKubeScheduler

        row = capabilities_of("Kubernetes")
        assert (row.cardinality is Support.NONE) == (
            not JKubeScheduler.supports_cardinality
        )

    def test_medea_schedulers_exist_for_claims(self):
        """Medea claims full support: the repo must provide cardinality
        constraints, inter-app constraints and global objectives."""
        from repro import IlpWeights, cardinality

        c = cardinality("a", "b", 2, 5, "rack")
        assert c.tag_constraints[0].cmin == 2
        weights = IlpWeights()
        assert weights.w2_violations > 0 and weights.w3_fragmentation > 0
